"""Experiment: Table II — reverse-engineered DRAM mappings on 9 machines.

For every machine preset, run DRAMDig against the simulated machine and
compare the recovered mapping to the ground truth: bank functions as a
GF(2) span, row and column bit sets exactly. The rendered table mirrors
the paper's columns (machine, microarchitecture, DRAM, Config., bank
address functions, row bits, column bits) plus a verification column the
paper implies by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import format_mask
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.mapping import _format_bit_ranges
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine

__all__ = ["Table2Row", "run_table2", "render_table2"]


@dataclass
class Table2Row:
    """One machine's reverse-engineering outcome."""

    machine: str
    microarchitecture: str
    dram: str
    config_quadruple: tuple[int, int, int, int]
    bank_functions: tuple[int, ...]
    row_bits: tuple[int, ...]
    column_bits: tuple[int, ...]
    matches_ground_truth: bool
    seconds: float


def run_table2(
    seed: int = 1,
    machines: tuple[str, ...] = TABLE2_ORDER,
    config: DramDigConfig | None = None,
) -> list[Table2Row]:
    """Run DRAMDig on every machine and score the recovered mappings."""
    rows = []
    for name in machines:
        machine_preset = preset(name)
        machine = SimulatedMachine.from_preset(machine_preset, seed=seed)
        result = DramDig(config).run(machine)
        geometry = machine_preset.geometry
        rows.append(
            Table2Row(
                machine=name,
                microarchitecture=machine_preset.microarchitecture,
                dram=(
                    f"{geometry.generation}, "
                    f"{geometry.total_bytes // 2**30}GiB"
                ),
                config_quadruple=geometry.config_quadruple,
                bank_functions=result.mapping.bank_functions,
                row_bits=result.mapping.row_bits,
                column_bits=result.mapping.column_bits,
                matches_ground_truth=result.mapping.equivalent_to(
                    machine_preset.mapping
                ),
                seconds=result.total_seconds,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Render in the paper's Table II layout."""
    headers = [
        "Machine",
        "Microarch.",
        "DRAM",
        "Config.",
        "Bank Address Functions",
        "Row Bits",
        "Column Bits",
        "Matches truth",
    ]
    body = []
    for row in rows:
        functions = ", ".join(format_mask(mask) for mask in row.bank_functions)
        body.append(
            [
                row.machine,
                row.microarchitecture,
                row.dram,
                str(row.config_quadruple),
                functions,
                _format_bit_ranges(row.row_bits),
                _format_bit_ranges(row.column_bits),
                "yes" if row.matches_ground_truth else "NO",
            ]
        )
    return render_table(headers, body)
