"""Determinism study: quantify Table I's third column.

The paper writes: "we ran [DRAMA's] code for numerous times and found that
it generated different DRAM mappings most of the time". This module turns
that sentence into a measurement: run a tool N times on one machine,
canonicalise each output (functions as a sorted reduced GF(2) basis, plus
the row-bit set), and report

* distinct outputs observed,
* how often the modal output occurred,
* how often the output was hammer-equivalent to ground truth.

DRAMDig's row reads 1 distinct / 100 % / 100 %; DRAMA's does not — and the
gap is the determinism claim, measured.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis import gf2
from repro.baselines.drama import DramaConfig, DramaTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.parallel import DEFAULT_START_METHOD, GridCell, resolve_jobs, run_cells

__all__ = ["DeterminismRow", "run_determinism", "render_determinism"]


@dataclass
class DeterminismRow:
    """One tool's repeated-run statistics on one machine.

    Attributes:
        tool: display name.
        machine: preset label.
        runs: attempts made.
        completed: runs that produced a mapping.
        distinct_outputs: canonicalised distinct mappings among completed.
        modal_fraction: share of completed runs producing the most common
            output.
        correct_fraction: share of completed runs hammer-equivalent to the
            ground truth.
    """

    tool: str
    machine: str
    runs: int
    completed: int = 0
    distinct_outputs: int = 0
    modal_fraction: float = 0.0
    correct_fraction: float = 0.0
    outputs: Counter = field(default_factory=Counter)


def _canonical(belief: BeliefMapping) -> tuple:
    basis = tuple(gf2.reduced_row_echelon(belief.bank_functions))
    return (basis, belief.row_bits)


def dramdig_run_cell(machine_name: str, seed: int) -> dict:
    """One DRAMDig run: canonical output + ground-truth equivalence."""
    truth = preset(machine_name).mapping
    machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed)
    result = DramDig().run(machine)
    belief = BeliefMapping.from_mapping(result.mapping)
    return {
        "canonical": _canonical(belief),
        "correct": bool(belief.hammer_equivalent(truth)),
    }


def drama_run_cell(machine_name: str, seed: int, tool_seed: int) -> dict | None:
    """One DRAMA run; ``None`` when the run times out without a belief."""
    truth = preset(machine_name).mapping
    machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed)
    result = DramaTool(None, seed=tool_seed).run(machine)
    if result.belief is None:
        return None
    return {
        "canonical": _canonical(result.belief),
        "correct": bool(result.belief.hammer_equivalent(truth)),
    }


def _fold_rows(tool: str, machine_name: str, runs: int, records) -> DeterminismRow:
    """Aggregate per-run records in run order (Counter insertion order and
    tie-breaking therefore match the original serial loop exactly)."""
    row = DeterminismRow(tool=tool, machine=machine_name, runs=runs)
    for record in records:
        if record is None:
            continue
        row.completed += 1
        row.outputs[record["canonical"]] += 1
        row.correct_fraction += record["correct"]
    if row.completed:
        row.distinct_outputs = len(row.outputs)
        row.modal_fraction = row.outputs.most_common(1)[0][1] / row.completed
        row.correct_fraction /= row.completed
    return row


def run_determinism(
    machine_name: str = "No.1",
    runs: int = 8,
    seed: int = 1,
    dramdig_config: DramDigConfig | None = None,
    drama_config: DramaConfig | None = None,
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
) -> list[DeterminismRow]:
    """Repeated-run study of DRAMDig and DRAMA on one machine.

    Each run uses a *different machine seed* (fresh noise, fresh buffer
    placement) for DRAMDig — its determinism must hold across machine
    randomness — and a different tool seed for DRAMA (its nondeterminism
    is internal). Fresh machine seed per run for both tools: a rerun on a
    real machine sees fresh noise; DRAMDig's output must survive that,
    DRAMA's does not.

    One grid cell per (tool, run); ``jobs`` > 1 fans them out to worker
    processes with bit-identical aggregation (records fold in run order).
    ``dramdig_config``/``drama_config`` must be ``None`` when ``jobs`` > 1
    (cells rebuild default configs; non-default configs are a serial-only
    convenience kept for the test-suite).
    """
    if jobs is not None and resolve_jobs(jobs) > 1 and (dramdig_config or drama_config):
        raise ValueError("custom tool configs are not supported with jobs > 1")
    if dramdig_config or drama_config:
        truth = preset(machine_name).mapping
        dramdig_records = []
        for run in range(runs):
            machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed + run)
            belief = BeliefMapping.from_mapping(DramDig(dramdig_config).run(machine).mapping)
            dramdig_records.append(
                {"canonical": _canonical(belief), "correct": bool(belief.hammer_equivalent(truth))}
            )
        drama_records = []
        for run in range(runs):
            machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed + run)
            result = DramaTool(drama_config, seed=seed * 1000 + run).run(machine)
            if result.belief is None:
                drama_records.append(None)
            else:
                drama_records.append(
                    {
                        "canonical": _canonical(result.belief),
                        "correct": bool(result.belief.hammer_equivalent(truth)),
                    }
                )
    else:
        cells = [
            GridCell(
                "repro.evalsuite.determinism:dramdig_run_cell",
                {"machine_name": machine_name, "seed": seed + run},
            )
            for run in range(runs)
        ] + [
            GridCell(
                "repro.evalsuite.determinism:drama_run_cell",
                {
                    "machine_name": machine_name,
                    "seed": seed + run,
                    "tool_seed": seed * 1000 + run,
                },
            )
            for run in range(runs)
        ]
        records = run_cells(cells, jobs=jobs, start_method=start_method)
        dramdig_records = records[:runs]
        drama_records = records[runs:]

    return [
        _fold_rows("DRAMDig", machine_name, runs, dramdig_records),
        _fold_rows("DRAMA", machine_name, runs, drama_records),
    ]


def render_determinism(rows: list[DeterminismRow]) -> str:
    """Render the study as a table."""
    headers = [
        "Tool",
        "Machine",
        "Completed",
        "Distinct outputs",
        "Modal output",
        "Correct",
    ]
    body = [
        [
            row.tool,
            row.machine,
            f"{row.completed}/{row.runs}",
            row.distinct_outputs,
            f"{row.modal_fraction:.0%}",
            f"{row.correct_fraction:.0%}",
        ]
        for row in rows
    ]
    return render_table(headers, body)
