"""Determinism study: quantify Table I's third column.

The paper writes: "we ran [DRAMA's] code for numerous times and found that
it generated different DRAM mappings most of the time". This module turns
that sentence into a measurement: run a tool N times on one machine,
canonicalise each output (functions as a sorted reduced GF(2) basis, plus
the row-bit set), and report

* distinct outputs observed,
* how often the modal output occurred,
* how often the output was hammer-equivalent to ground truth.

DRAMDig's row reads 1 distinct / 100 % / 100 %; DRAMA's does not — and the
gap is the determinism claim, measured.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis import gf2
from repro.baselines.drama import DramaConfig, DramaTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine

__all__ = ["DeterminismRow", "run_determinism", "render_determinism"]


@dataclass
class DeterminismRow:
    """One tool's repeated-run statistics on one machine.

    Attributes:
        tool: display name.
        machine: preset label.
        runs: attempts made.
        completed: runs that produced a mapping.
        distinct_outputs: canonicalised distinct mappings among completed.
        modal_fraction: share of completed runs producing the most common
            output.
        correct_fraction: share of completed runs hammer-equivalent to the
            ground truth.
    """

    tool: str
    machine: str
    runs: int
    completed: int = 0
    distinct_outputs: int = 0
    modal_fraction: float = 0.0
    correct_fraction: float = 0.0
    outputs: Counter = field(default_factory=Counter)


def _canonical(belief: BeliefMapping) -> tuple:
    basis = tuple(gf2.reduced_row_echelon(belief.bank_functions))
    return (basis, belief.row_bits)


def run_determinism(
    machine_name: str = "No.1",
    runs: int = 8,
    seed: int = 1,
    dramdig_config: DramDigConfig | None = None,
    drama_config: DramaConfig | None = None,
) -> list[DeterminismRow]:
    """Repeated-run study of DRAMDig and DRAMA on one machine.

    Each run uses a *different machine seed* (fresh noise, fresh buffer
    placement) for DRAMDig — its determinism must hold across machine
    randomness — and a different tool seed for DRAMA (its nondeterminism
    is internal).
    """
    truth = preset(machine_name).mapping

    dramdig_row = DeterminismRow(tool="DRAMDig", machine=machine_name, runs=runs)
    for run in range(runs):
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed + run)
        result = DramDig(dramdig_config).run(machine)
        belief = BeliefMapping.from_mapping(result.mapping)
        dramdig_row.completed += 1
        dramdig_row.outputs[_canonical(belief)] += 1
        dramdig_row.correct_fraction += belief.hammer_equivalent(truth)

    drama_row = DeterminismRow(tool="DRAMA", machine=machine_name, runs=runs)
    for run in range(runs):
        # Fresh machine seed per run for both tools: a rerun on a real
        # machine sees fresh noise. DRAMDig's output must survive that;
        # DRAMA's does not.
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed + run)
        result = DramaTool(drama_config, seed=seed * 1000 + run).run(machine)
        if result.belief is None:
            continue
        drama_row.completed += 1
        drama_row.outputs[_canonical(result.belief)] += 1
        drama_row.correct_fraction += result.belief.hammer_equivalent(truth)

    for row in (dramdig_row, drama_row):
        if row.completed:
            row.distinct_outputs = len(row.outputs)
            row.modal_fraction = row.outputs.most_common(1)[0][1] / row.completed
            row.correct_fraction /= row.completed
    return [dramdig_row, drama_row]


def render_determinism(rows: list[DeterminismRow]) -> str:
    """Render the study as a table."""
    headers = [
        "Tool",
        "Machine",
        "Completed",
        "Distinct outputs",
        "Modal output",
        "Correct",
    ]
    body = [
        [
            row.tool,
            row.machine,
            f"{row.completed}/{row.runs}",
            row.distinct_outputs,
            f"{row.modal_fraction:.0%}",
            f"{row.correct_fraction:.0%}",
        ]
        for row in rows
    ]
    return render_table(headers, body)
