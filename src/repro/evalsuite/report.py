"""One-shot evaluation report: every paper artefact in a single document.

``dramdig report`` (or :func:`generate_report`) runs Table I, Table II,
Figure 2, Table III and the determinism study and renders them into one
markdown document — the reproduction's equivalent of the paper's Section
IV, regenerated from scratch on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.baselines.drama import DramaConfig
from repro.core.dramdig import DramDigConfig
from repro.dram.presets import TABLE2_ORDER
from repro.evalsuite.determinism import render_determinism, run_determinism
from repro.evalsuite.figure2 import render_figure2, run_figure2
from repro.evalsuite.table1 import render_table1, run_table1
from repro.evalsuite.table2 import render_table2, run_table2
from repro.evalsuite.table3 import TABLE3_MACHINES, render_table3, run_table3
from repro.ioutil import atomic_write
from repro.parallel import CheckpointJournal, GridPolicy
from repro.rowhammer.hammer import HammerConfig

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Scope knobs for a report run (defaults = the paper's full scale).

    Attributes:
        seed: machine seed for every experiment.
        machines: panel for Tables I/II and Figure 2.
        hammer_machines: panel for Table III.
        hammer_tests: timed tests per machine in Table III.
        determinism_runs: repeated runs in the determinism study.
        determinism_machine: machine for the determinism study.
        dramdig / drama / hammer: tool configs (None = defaults).
        jobs: worker processes for each experiment grid (None/1 = serial;
            results are bit-identical either way).
        supervision: crash-safe grid policy for the experiment grids
            (None = seed fail-fast behaviour). Failed cells render as
            ``FAILED(reason)`` entries instead of aborting the report.
        journal: checkpoint journal (instance or path) shared by the
            experiment grids; completed cells are skipped on ``--resume``.
        batch_cells: consecutive grid cells bundled per worker task
            (None/1 = one cell per task; results stay bit-identical).
        pool_mode: ``persistent`` reuses a warmed worker pool across the
            report's grids, ``fresh`` builds and tears one down per grid.
    """

    seed: int = 1
    machines: tuple[str, ...] = TABLE2_ORDER
    hammer_machines: tuple[str, ...] = TABLE3_MACHINES
    hammer_tests: int = 5
    determinism_runs: int = 8
    determinism_machine: str = "No.1"
    dramdig: DramDigConfig | None = None
    drama: DramaConfig | None = None
    hammer: HammerConfig | None = None
    jobs: int | None = None
    supervision: GridPolicy | None = None
    journal: CheckpointJournal | str | None = None
    batch_cells: int | None = None
    pool_mode: str = "persistent"


def generate_report(
    config: ReportConfig | None = None, path: str | Path | None = None
) -> str:
    """Run every experiment and render the combined markdown report.

    Args:
        config: scope configuration (defaults to full paper scale).
        path: when given, the report is also written there.
    """
    config = config if config is not None else ReportConfig()
    # One journal instance shared across the experiment grids: the runs
    # are sequential and fingerprints are task-qualified, so a single
    # file checkpoints the whole report.
    journal = config.journal
    if isinstance(journal, (str, Path)):
        journal = CheckpointJournal(journal)
    sections = ["# DRAMDig reproduction — full evaluation report", ""]

    sections += [
        "## Table I — tool comparison (measured)",
        "",
        "```",
        render_table1(
            run_table1(
                seed=config.seed,
                machines=config.machines,
                drama_config=config.drama,
                jobs=config.jobs,
                supervision=config.supervision,
                journal=journal,
                batch_cells=config.batch_cells,
                pool_mode=config.pool_mode,
            )
        ),
        "```",
        "",
    ]

    sections += [
        "## Table II — uncovered mappings",
        "",
        "```",
        render_table2(
            run_table2(
                seed=config.seed, machines=config.machines, config=config.dramdig
            )
        ),
        "```",
        "",
    ]

    sections += [
        "## Figure 2 — time costs",
        "",
        "```",
        render_figure2(
            run_figure2(
                seed=config.seed,
                machines=config.machines,
                dramdig_config=config.dramdig,
                drama_config=config.drama,
                jobs=config.jobs,
                supervision=config.supervision,
                journal=journal,
                batch_cells=config.batch_cells,
                pool_mode=config.pool_mode,
            )
        ),
        "```",
        "",
    ]

    sections += [
        "## Table III — double-sided rowhammer",
        "",
        "```",
        render_table3(
            run_table3(
                seed=config.seed,
                tests=config.hammer_tests,
                machines=config.hammer_machines,
                hammer_config=config.hammer,
                dramdig_config=config.dramdig,
                drama_config=config.drama,
                jobs=config.jobs,
                supervision=config.supervision,
                journal=journal,
                batch_cells=config.batch_cells,
                pool_mode=config.pool_mode,
            )
        ),
        "```",
        "",
    ]

    sections += [
        "## Determinism study",
        "",
        "```",
        render_determinism(
            run_determinism(
                machine_name=config.determinism_machine,
                runs=config.determinism_runs,
                seed=config.seed,
                dramdig_config=config.dramdig,
                drama_config=config.drama,
                jobs=config.jobs,
            )
        ),
        "```",
        "",
    ]

    report = "\n".join(sections)
    if path is not None:
        atomic_write(path, report)
    return report
