"""Shared grid dispatch for the experiment modules.

Every experiment (`table1`, `figure2`, `table3`, the determinism study)
builds a list of :class:`~repro.parallel.GridCell` and hands it here.
Without supervision options this is exactly the fail-fast
:func:`~repro.parallel.run_cells` path — the seed behaviour, byte for
byte. With a :class:`~repro.parallel.GridPolicy` and/or a checkpoint
journal, the cells run under the supervised engine instead: completed
cells are checkpointed as they finish, failed cells come back as
:class:`~repro.parallel.CellFailure` markers *in their result slots*,
and the experiment renderers print them as ``FAILED(reason)`` cells
plus a failure manifest instead of crashing the whole artefact.

When a tracer is active (``--trace``), this is also the seam where
cross-process tracing happens: each cell gets a private span-file
destination injected into its payload, the grid runs under a
``grid:<experiment>`` span, and afterwards the per-cell files are
stitched into the parent trace in submission order — including
``cached`` spans for journal-resumed cells and ``failed`` spans for
cells that exhausted their attempts. Untraced runs take the exact
pre-existing code path.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.obs import telemetry
from repro.obs import tracing as obs
from repro.parallel import (
    DEFAULT_START_METHOD,
    CheckpointJournal,
    GridCell,
    GridPolicy,
    run_cells,
    run_cells_supervised,
)

__all__ = ["execute_grid"]


def _experiment_name(cells: Sequence[GridCell]) -> str:
    """Short experiment label from the first cell's task module."""
    if not cells:
        return "empty"
    module = cells[0].task.partition(":")[0]
    return module.rsplit(".", 1)[-1]


def _dispatch(
    cells: Sequence[GridCell],
    jobs: int | None,
    start_method: str,
    supervision: GridPolicy | None,
    journal,
    batch_cells: int | None,
    pool_mode: str,
):
    """Run the cells; returns (results, outcome-or-None)."""
    if supervision is None and journal is None:
        results = run_cells(
            cells,
            jobs=jobs,
            start_method=start_method,
            batch_cells=batch_cells,
            pool_mode=pool_mode,
        )
        return results, None
    outcome = run_cells_supervised(
        cells,
        jobs=jobs,
        start_method=start_method,
        policy=supervision,
        journal=journal,
        batch_cells=batch_cells,
        pool_mode=pool_mode,
    )
    return outcome.results, outcome


def execute_grid(
    cells: Sequence[GridCell],
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | Path | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> list:
    """Run an experiment's cells, fail-fast or supervised.

    Returns per-cell results in submission order. Under supervision a
    failed cell's slot holds its :class:`~repro.parallel.CellFailure`
    instead of a result; the fail-fast path raises on the first error,
    exactly as the seed engine did. ``batch_cells`` bundles consecutive
    cells per pool task and ``pool_mode`` selects persistent (warmed,
    reused) or fresh worker pools — both change only how work is
    shipped, never the bytes of any artefact.
    """
    bus = telemetry.current_bus()
    dispatched = list(cells)
    if bus is not None and dispatched:
        # Thread the live stream into the cells so worker-side hooks
        # (pipeline phases, campaign trials) append to the same file,
        # and mark the grid's start in the stream.
        telemetry.emit(
            "grid",
            experiment=_experiment_name(dispatched),
            cells=len(dispatched),
        )
        dispatched = telemetry.telemetry_cells(dispatched, bus.path)

    tracer = obs.current_tracer()
    if tracer is None or not cells:
        results, _ = _dispatch(
            dispatched, jobs, start_method, supervision, journal, batch_cells,
            pool_mode,
        )
        return results

    from repro.obs.gridtrace import stitch_cell_traces, traced_cells

    cells = list(cells)
    with TemporaryDirectory(prefix="dramdig-trace-") as trace_dir:
        traced = traced_cells(dispatched, trace_dir)
        with tracer.span(f"grid:{_experiment_name(cells)}") as grid_scope:
            results, outcome = _dispatch(
                traced, jobs, start_method, supervision, journal,
                batch_cells, pool_mode,
            )
            tally = stitch_cell_traces(
                tracer, grid_scope.record, cells, results, trace_dir
            )
            grid_scope.set("cells", len(cells))
            grid_scope.set("cached", tally["cached"])
            if outcome is not None:
                grid_scope.set("failed", len(outcome.failures))
        return results
