"""Shared grid dispatch for the experiment modules.

Every experiment (`table1`, `figure2`, `table3`, the determinism study)
builds a list of :class:`~repro.parallel.GridCell` and hands it here.
Without supervision options this is exactly the fail-fast
:func:`~repro.parallel.run_cells` path — the seed behaviour, byte for
byte. With a :class:`~repro.parallel.GridPolicy` and/or a checkpoint
journal, the cells run under the supervised engine instead: completed
cells are checkpointed as they finish, failed cells come back as
:class:`~repro.parallel.CellFailure` markers *in their result slots*,
and the experiment renderers print them as ``FAILED(reason)`` cells
plus a failure manifest instead of crashing the whole artefact.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.parallel import (
    DEFAULT_START_METHOD,
    CheckpointJournal,
    GridCell,
    GridPolicy,
    run_cells,
    run_cells_supervised,
)

__all__ = ["execute_grid"]


def execute_grid(
    cells: Sequence[GridCell],
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | Path | None = None,
) -> list:
    """Run an experiment's cells, fail-fast or supervised.

    Returns per-cell results in submission order. Under supervision a
    failed cell's slot holds its :class:`~repro.parallel.CellFailure`
    instead of a result; the fail-fast path raises on the first error,
    exactly as the seed engine did.
    """
    if supervision is None and journal is None:
        return run_cells(cells, jobs=jobs, start_method=start_method)
    outcome = run_cells_supervised(
        cells,
        jobs=jobs,
        start_method=start_method,
        policy=supervision,
        journal=journal,
    )
    return outcome.results
