"""Experiment: Table I — qualitative comparison of the uncovering tools.

The paper's opening table assigns each tool three properties:

* **generic**     — works on every machine setting;
* **efficient**   — finishes within minutes, not hours;
* **deterministic** — repeated runs produce the same mapping.

Here the properties are *measured*, not asserted: every tool runs on a
panel of machines (and, for determinism, several times with different
internal randomness), and the verdicts are derived from the outcomes.
Seaborn et al.'s blind-rowhammer approach is scored analytically from its
published behaviour (hours of blind testing, Sandy-Bridge-specific,
deterministic when it works); implementing a faithful multi-hour blind
search adds nothing the fault model does not already show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.drama import DramaConfig, DramaTool
from repro.baselines.xiao import XiaoTool
from repro.core.dramdig import DramDig
from repro.dram.errors import ReproError
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine

__all__ = ["ToolVerdict", "run_table1", "render_table1"]

EFFICIENT_CUTOFF_SECONDS = 30 * 60.0


@dataclass
class ToolVerdict:
    """Measured properties of one tool.

    Attributes:
        tool: display name.
        generic: succeeded on every panel machine.
        efficient: every successful run finished within 30 minutes.
        deterministic: identical mapping across repeated runs.
        successes: machines solved.
        panel_size: machines attempted.
        median_seconds: median simulated cost of successful runs.
        notes: free-form detail (which machines failed, etc.).
    """

    tool: str
    generic: bool
    efficient: bool
    deterministic: bool
    successes: int
    panel_size: int
    median_seconds: float
    notes: str = ""
    details: dict[str, str] = field(default_factory=dict)


def run_table1(
    seed: int = 1,
    machines: tuple[str, ...] = TABLE2_ORDER,
    determinism_runs: int = 3,
    drama_config: DramaConfig | None = None,
) -> list[ToolVerdict]:
    """Measure Table I's properties for all four tools."""
    verdicts = [
        _seaborn_verdict(machines),
        _xiao_verdict(seed, machines),
        _drama_verdict(seed, machines, determinism_runs, drama_config),
        _dramdig_verdict(seed, machines, determinism_runs),
    ]
    return verdicts


def _median(values: list[float]) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def _dramdig_verdict(seed, machines, determinism_runs) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    deterministic = True
    for name in machines:
        outcomes = set()
        solved = True
        for run in range(determinism_runs):
            machine = SimulatedMachine.from_preset(preset(name), seed=seed + run)
            try:
                result = DramDig().run(machine)
            except ReproError:
                solved = False
                break
            outcomes.add(
                (
                    tuple(sorted(result.mapping.bank_functions)),
                    result.mapping.row_bits,
                    result.mapping.column_bits,
                )
            )
            if run == 0:
                times.append(result.total_seconds)
        if solved:
            successes += 1
            details[name] = "ok"
            if len(outcomes) > 1:
                deterministic = False
                details[name] = "nondeterministic"
        else:
            details[name] = "failed"
    return ToolVerdict(
        tool="DRAMDig",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=deterministic,
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        details=details,
    )


def _drama_verdict(seed, machines, determinism_runs, drama_config) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    deterministic = True
    failures = []
    for name in machines:
        outcomes = set()
        solved = True
        for run in range(determinism_runs):
            machine = SimulatedMachine.from_preset(preset(name), seed=seed + run)
            result = DramaTool(drama_config, seed=seed * 31 + run * 7).run(machine)
            if result.belief is None:
                solved = False
                break
            outcomes.add(
                (
                    tuple(sorted(result.belief.bank_functions)),
                    result.belief.row_bits,
                )
            )
            if run == 0:
                times.append(result.seconds)
        if solved:
            successes += 1
            details[name] = "ok" if len(outcomes) == 1 else "nondeterministic"
            if len(outcomes) > 1:
                deterministic = False
        else:
            failures.append(name)
            details[name] = "timeout"
    return ToolVerdict(
        tool="DRAMA",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=deterministic,
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        notes=f"timed out on {', '.join(failures)}" if failures else "",
        details=details,
    )


def _xiao_verdict(seed, machines) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    failures = []
    for name in machines:
        machine = SimulatedMachine.from_preset(preset(name), seed=seed)
        try:
            result = XiaoTool().run(machine)
        except ReproError as error:
            failures.append(name)
            details[name] = type(error).__name__
            continue
        successes += 1
        times.append(result.seconds)
        details[name] = "ok"
    return ToolVerdict(
        tool="Xiao et al.",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=True,  # fixed-seed tool; identical output when it works
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        notes=f"stuck on {', '.join(failures)}" if failures else "",
        details=details,
    )


def _seaborn_verdict(machines) -> ToolVerdict:
    """Analytic scoring of the blind-rowhammer approach (see module doc)."""
    sandy = [name for name in machines if preset(name).microarchitecture == "Sandy Bridge"]
    return ToolVerdict(
        tool="Seaborn et al.",
        generic=False,
        efficient=False,
        deterministic=True,
        successes=len(sandy),
        panel_size=len(machines),
        median_seconds=2.5 * 3600.0,
        notes="blind rowhammer testing; Sandy Bridge only, hours per machine",
        details={name: ("ok" if name in sandy else "unsupported") for name in machines},
    )


def render_table1(verdicts: list[ToolVerdict]) -> str:
    """Render in the paper's Table I layout."""
    headers = ["Uncovering Tool", "Generic", "Efficient", "Deterministic", "Solved", "Median time"]
    rows = []
    for verdict in verdicts:
        rows.append(
            [
                verdict.tool,
                "yes" if verdict.generic else "x",
                "yes (minutes)" if verdict.efficient else "x (hours)",
                "yes" if verdict.deterministic else "x",
                f"{verdict.successes}/{verdict.panel_size}",
                (
                    f"{verdict.median_seconds / 60:.1f} min"
                    if verdict.median_seconds == verdict.median_seconds
                    else "-"
                ),
            ]
        )
    table = render_table(headers, rows)
    notes = [f"  {v.tool}: {v.notes}" for v in verdicts if v.notes]
    return table + ("\n" + "\n".join(notes) if notes else "")
