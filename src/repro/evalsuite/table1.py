"""Experiment: Table I — qualitative comparison of the uncovering tools.

The paper's opening table assigns each tool three properties:

* **generic**     — works on every machine setting;
* **efficient**   — finishes within minutes, not hours;
* **deterministic** — repeated runs produce the same mapping.

Here the properties are *measured*, not asserted: every tool runs on a
panel of machines (and, for determinism, several times with different
internal randomness), and the verdicts are derived from the outcomes.
Seaborn et al.'s blind-rowhammer approach is scored analytically from its
published behaviour (hours of blind testing, Sandy-Bridge-specific,
deterministic when it works); implementing a faithful multi-hour blind
search adds nothing the fault model does not already show.

The measurement grid is one independent cell per (tool, machine): each
cell builds fresh machines from explicit seeds, so the cells can run
serially (``jobs=1``, the default) or fan out across worker processes
(``jobs=N`` via :mod:`repro.parallel`) with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.drama import DramaConfig, DramaTool
from repro.baselines.xiao import XiaoTool
from repro.core.dramdig import DramDig
from repro.dram.errors import ReproError
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.gridrun import execute_grid
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.parallel import (
    DEFAULT_START_METHOD,
    CellFailure,
    CheckpointJournal,
    GridCell,
    GridPolicy,
)

__all__ = ["ToolVerdict", "run_table1", "render_table1"]

EFFICIENT_CUTOFF_SECONDS = 30 * 60.0


@dataclass
class ToolVerdict:
    """Measured properties of one tool.

    Attributes:
        tool: display name.
        generic: succeeded on every panel machine.
        efficient: every successful run finished within 30 minutes.
        deterministic: identical mapping across repeated runs.
        successes: machines solved.
        panel_size: machines attempted.
        median_seconds: median simulated cost of successful runs.
        notes: free-form detail (which machines failed, etc.).
    """

    tool: str
    generic: bool
    efficient: bool
    deterministic: bool
    successes: int
    panel_size: int
    median_seconds: float
    notes: str = ""
    details: dict[str, str] = field(default_factory=dict)
    grid_failed: tuple[str, ...] = ()


def run_table1(
    seed: int = 1,
    machines: tuple[str, ...] = TABLE2_ORDER,
    determinism_runs: int = 3,
    drama_config: DramaConfig | None = None,
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> list[ToolVerdict]:
    """Measure Table I's properties for all four tools.

    ``jobs`` > 1 distributes the (tool, machine) cells over worker
    processes; output is bit-identical to the serial run. With
    ``supervision`` and/or ``journal`` the cells run under the
    crash-safe engine: completed cells checkpoint to the journal,
    failed cells fold into their verdicts as ``FAILED(reason)`` details
    instead of aborting the table.
    """
    cells = []
    for name in machines:
        cells.append(
            GridCell(
                "repro.evalsuite.table1:xiao_machine_cell",
                {"name": name, "seed": seed},
            )
        )
    for name in machines:
        cells.append(
            GridCell(
                "repro.evalsuite.table1:drama_machine_cell",
                {
                    "name": name,
                    "seed": seed,
                    "determinism_runs": determinism_runs,
                    "drama_config": drama_config,
                },
            )
        )
    for name in machines:
        cells.append(
            GridCell(
                "repro.evalsuite.table1:dramdig_machine_cell",
                {"name": name, "seed": seed, "determinism_runs": determinism_runs},
            )
        )
    results = execute_grid(
        cells, jobs=jobs, start_method=start_method,
        supervision=supervision, journal=journal,
        batch_cells=batch_cells, pool_mode=pool_mode,
    )
    panel = len(machines)
    xiao_records = results[:panel]
    drama_records = results[panel : 2 * panel]
    dramdig_records = results[2 * panel :]
    return [
        _seaborn_verdict(machines),
        _xiao_verdict(machines, xiao_records),
        _drama_verdict(machines, drama_records),
        _dramdig_verdict(machines, dramdig_records),
    ]


def _median(values: list[float]) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


# --------------------------------------------------------------- grid cells
#
# One cell = one tool on one machine, a pure function of its arguments
# (fresh SimulatedMachine per run, every seed explicit) returning a small
# picklable record. The per-tool verdict builders below fold the records
# back together in machine order.


def dramdig_machine_cell(name: str, seed: int, determinism_runs: int) -> dict:
    """DRAMDig on one machine, ``determinism_runs`` times."""
    outcomes = set()
    time_seconds = None
    for run in range(determinism_runs):
        machine = SimulatedMachine.from_preset(preset(name), seed=seed + run)
        try:
            result = DramDig().run(machine)
        except ReproError:
            # A run-0 time already recorded stays recorded, exactly as the
            # original serial loop left it in its ``times`` list.
            return {"solved": False, "time": time_seconds, "nondeterministic": False}
        outcomes.add(
            (
                tuple(sorted(result.mapping.bank_functions)),
                result.mapping.row_bits,
                result.mapping.column_bits,
            )
        )
        if run == 0:
            time_seconds = result.total_seconds
    return {
        "solved": True,
        "time": time_seconds,
        "nondeterministic": len(outcomes) > 1,
    }


def drama_machine_cell(
    name: str, seed: int, determinism_runs: int, drama_config: DramaConfig | None
) -> dict:
    """DRAMA on one machine, ``determinism_runs`` times."""
    outcomes = set()
    time_seconds = None
    for run in range(determinism_runs):
        machine = SimulatedMachine.from_preset(preset(name), seed=seed + run)
        result = DramaTool(drama_config, seed=seed * 31 + run * 7).run(machine)
        if result.belief is None:
            return {"solved": False, "time": time_seconds, "nondeterministic": False}
        outcomes.add(
            (
                tuple(sorted(result.belief.bank_functions)),
                result.belief.row_bits,
            )
        )
        if run == 0:
            time_seconds = result.seconds
    return {
        "solved": True,
        "time": time_seconds,
        "nondeterministic": len(outcomes) > 1,
    }


def xiao_machine_cell(name: str, seed: int) -> dict:
    """Xiao et al. on one machine (fixed-seed tool: one run suffices)."""
    machine = SimulatedMachine.from_preset(preset(name), seed=seed)
    try:
        result = XiaoTool().run(machine)
    except ReproError as error:
        return {"solved": False, "time": None, "error": type(error).__name__}
    return {"solved": True, "time": result.seconds, "error": ""}


# ---------------------------------------------------------- verdict folding


def _grid_failure_notes(grid_failed: list[str], notes: str) -> str:
    """Append a partial-grid manifest to a verdict's notes line."""
    if not grid_failed:
        return notes
    manifest = "grid FAILED: " + ", ".join(grid_failed)
    return f"{notes}; {manifest}" if notes else manifest


def _dramdig_verdict(machines, records) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    deterministic = True
    grid_failed = []
    for name, record in zip(machines, records):
        if isinstance(record, CellFailure):
            details[name] = f"FAILED({record.reason})"
            grid_failed.append(name)
            continue
        if record["time"] is not None:
            times.append(record["time"])
        if record["solved"]:
            successes += 1
            details[name] = "ok"
            if record["nondeterministic"]:
                deterministic = False
                details[name] = "nondeterministic"
        else:
            details[name] = "failed"
    return ToolVerdict(
        tool="DRAMDig",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=deterministic,
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        notes=_grid_failure_notes(grid_failed, ""),
        details=details,
        grid_failed=tuple(grid_failed),
    )


def _drama_verdict(machines, records) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    deterministic = True
    failures = []
    grid_failed = []
    for name, record in zip(machines, records):
        if isinstance(record, CellFailure):
            details[name] = f"FAILED({record.reason})"
            grid_failed.append(name)
            continue
        if record["time"] is not None:
            times.append(record["time"])
        if record["solved"]:
            successes += 1
            details[name] = "nondeterministic" if record["nondeterministic"] else "ok"
            if record["nondeterministic"]:
                deterministic = False
        else:
            failures.append(name)
            details[name] = "timeout"
    return ToolVerdict(
        tool="DRAMA",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=deterministic,
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        notes=_grid_failure_notes(
            grid_failed, f"timed out on {', '.join(failures)}" if failures else ""
        ),
        details=details,
        grid_failed=tuple(grid_failed),
    )


def _xiao_verdict(machines, records) -> ToolVerdict:
    times, details = [], {}
    successes = 0
    failures = []
    grid_failed = []
    for name, record in zip(machines, records):
        if isinstance(record, CellFailure):
            details[name] = f"FAILED({record.reason})"
            grid_failed.append(name)
            continue
        if record["solved"]:
            successes += 1
            times.append(record["time"])
            details[name] = "ok"
        else:
            failures.append(name)
            details[name] = record["error"]
    return ToolVerdict(
        tool="Xiao et al.",
        generic=successes == len(machines),
        efficient=bool(times) and max(times) <= EFFICIENT_CUTOFF_SECONDS,
        deterministic=True,  # fixed-seed tool; identical output when it works
        successes=successes,
        panel_size=len(machines),
        median_seconds=_median(times),
        notes=_grid_failure_notes(
            grid_failed, f"stuck on {', '.join(failures)}" if failures else ""
        ),
        details=details,
        grid_failed=tuple(grid_failed),
    )


def _seaborn_verdict(machines) -> ToolVerdict:
    """Analytic scoring of the blind-rowhammer approach (see module doc)."""
    sandy = [name for name in machines if preset(name).microarchitecture == "Sandy Bridge"]
    return ToolVerdict(
        tool="Seaborn et al.",
        generic=False,
        efficient=False,
        deterministic=True,
        successes=len(sandy),
        panel_size=len(machines),
        median_seconds=2.5 * 3600.0,
        notes="blind rowhammer testing; Sandy Bridge only, hours per machine",
        details={name: ("ok" if name in sandy else "unsupported") for name in machines},
    )


def render_table1(verdicts: list[ToolVerdict]) -> str:
    """Render in the paper's Table I layout."""
    headers = ["Uncovering Tool", "Generic", "Efficient", "Deterministic", "Solved", "Median time"]
    rows = []
    for verdict in verdicts:
        rows.append(
            [
                verdict.tool,
                "yes" if verdict.generic else "x",
                "yes (minutes)" if verdict.efficient else "x (hours)",
                "yes" if verdict.deterministic else "x",
                f"{verdict.successes}/{verdict.panel_size}",
                (
                    f"{verdict.median_seconds / 60:.1f} min"
                    if verdict.median_seconds == verdict.median_seconds
                    else "-"
                ),
            ]
        )
    table = render_table(headers, rows)
    notes = [f"  {v.tool}: {v.notes}" for v in verdicts if v.notes]
    return table + ("\n" + "\n".join(notes) if notes else "")
