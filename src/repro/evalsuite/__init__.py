"""Evaluation harness: one module per paper table/figure."""

from repro.evalsuite.determinism import (
    DeterminismRow,
    render_determinism,
    run_determinism,
)
from repro.evalsuite.figure2 import Figure2Point, render_figure2, run_figure2
from repro.evalsuite.report import ReportConfig, generate_report
from repro.evalsuite.reporting import format_seconds, render_series, render_table
from repro.evalsuite.table1 import ToolVerdict, render_table1, run_table1
from repro.evalsuite.table2 import Table2Row, render_table2, run_table2
from repro.evalsuite.table3 import TABLE3_MACHINES, Table3Row, render_table3, run_table3

__all__ = [
    "DeterminismRow",
    "render_determinism",
    "run_determinism",
    "Figure2Point",
    "render_figure2",
    "run_figure2",
    "ReportConfig",
    "generate_report",
    "format_seconds",
    "render_series",
    "render_table",
    "ToolVerdict",
    "render_table1",
    "run_table1",
    "Table2Row",
    "render_table2",
    "run_table2",
    "TABLE3_MACHINES",
    "Table3Row",
    "render_table3",
    "run_table3",
]
