"""Experiment: Table III — double-sided rowhammer, DRAMDig vs DRAMA.

For machines No.1, No.2 and No.5: five timed tests per tool. Before each
test the tool re-derives its mapping (DRAMA's per-test nondeterminism is
the point of the comparison), then the attack driver aims with the
recovered belief and the fault model counts flips. Rendered in the
paper's ``DRAMDig/DRAMA`` per-test layout with a Total column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.drama import DramaConfig, DramaTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.evalsuite.gridrun import execute_grid
from repro.evalsuite.reporting import render_failure_manifest, render_table
from repro.machine.machine import SimulatedMachine
from repro.parallel import (
    DEFAULT_START_METHOD,
    CellFailure,
    CheckpointJournal,
    GridCell,
    GridPolicy,
)
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig

__all__ = ["Table3Row", "run_table3", "render_table3", "TABLE3_MACHINES"]

TABLE3_MACHINES: tuple[str, ...] = ("No.1", "No.2", "No.5")


@dataclass
class Table3Row:
    """Per-machine flip counts for both tools."""

    machine: str
    dramdig_flips: list[int] = field(default_factory=list)
    drama_flips: list[int] = field(default_factory=list)

    @property
    def dramdig_total(self) -> int:
        return sum(self.dramdig_flips)

    @property
    def drama_total(self) -> int:
        return sum(self.drama_flips)


def table3_machine_cell(
    name: str,
    seed: int,
    tests: int,
    hammer_config: HammerConfig | None,
    dramdig_config: DramDigConfig | None,
    drama_config: DramaConfig | None,
) -> Table3Row:
    """Both tools' five-test comparison on one machine.

    DRAMDig's mapping is derived once (it is deterministic — re-running
    changes nothing); DRAMA re-runs before every test, as its
    nondeterminism demands. A DRAMA timeout contributes a zero-flip test
    (no mapping, no aim). Every seed is derived from the arguments, so the
    cell is grid-safe.
    """
    machine_preset = preset(name)
    row = Table3Row(machine=name)

    dramdig_machine = SimulatedMachine.from_preset(machine_preset, seed=seed)
    dramdig_result = DramDig(dramdig_config).run(dramdig_machine)
    dramdig_belief = BeliefMapping.from_mapping(dramdig_result.mapping)
    attack = DoubleSidedAttack(
        dramdig_machine,
        config=hammer_config,
        vulnerability=machine_preset.hammer_vulnerability,
    )
    for test in range(tests):
        report = attack.run(dramdig_belief, seed=seed * 1000 + test)
        row.dramdig_flips.append(report.flips)

    for test in range(tests):
        drama_machine = SimulatedMachine.from_preset(machine_preset, seed=seed)
        drama_result = DramaTool(drama_config, seed=seed * 100 + test * 17).run(
            drama_machine
        )
        if drama_result.belief is None:
            row.drama_flips.append(0)
            continue
        drama_attack = DoubleSidedAttack(
            drama_machine,
            config=hammer_config,
            vulnerability=machine_preset.hammer_vulnerability,
        )
        report = drama_attack.run(
            drama_result.belief, seed=seed * 2000 + test
        )
        row.drama_flips.append(report.flips)
    return row


def run_table3(
    seed: int = 1,
    tests: int = 5,
    machines: tuple[str, ...] = TABLE3_MACHINES,
    hammer_config: HammerConfig | None = None,
    dramdig_config: DramDigConfig | None = None,
    drama_config: DramaConfig | None = None,
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> list[Table3Row | CellFailure]:
    """Run the paper's rowhammer comparison.

    One grid cell per machine; ``jobs`` > 1 fans the cells out to worker
    processes with bit-identical results (ordered reassembly). With
    ``supervision``/``journal`` the cells run crash-safe: a failed
    machine's slot holds its :class:`~repro.parallel.CellFailure` and
    the renderer prints it as a ``FAILED(reason)`` row.
    """
    cells = [
        GridCell(
            "repro.evalsuite.table3:table3_machine_cell",
            {
                "name": name,
                "seed": seed,
                "tests": tests,
                "hammer_config": hammer_config,
                "dramdig_config": dramdig_config,
                "drama_config": drama_config,
            },
        )
        for name in machines
    ]
    return execute_grid(
        cells, jobs=jobs, start_method=start_method,
        supervision=supervision, journal=journal,
        batch_cells=batch_cells, pool_mode=pool_mode,
    )


def render_table3(rows: list[Table3Row | CellFailure]) -> str:
    """Render in the paper's T1-T5 DRAMDig/DRAMA layout.

    Supervised runs may substitute :class:`~repro.parallel.CellFailure`
    markers for rows; those render as explicit ``FAILED`` lines and a
    failure manifest is appended.
    """
    completed = [row for row in rows if not isinstance(row, CellFailure)]
    failures = [row for row in rows if isinstance(row, CellFailure)]
    tests = max((len(row.dramdig_flips) for row in completed), default=0)
    headers = ["Machine"] + [f"T{i + 1}" for i in range(tests)] + ["Total"]
    body = []
    for row in rows:
        if isinstance(row, CellFailure):
            body.append([row.label] + ["-"] * tests + [f"FAILED({row.reason})"])
            continue
        cells = [row.machine]
        for index in range(tests):
            dramdig = row.dramdig_flips[index] if index < len(row.dramdig_flips) else 0
            drama = row.drama_flips[index] if index < len(row.drama_flips) else 0
            cells.append(f"{dramdig}/{drama}")
        cells.append(f"{row.dramdig_total}/{row.drama_total}")
        body.append(cells)
    table = render_table(headers, body)
    table += (
        "\n\n(values are DRAMDig/DRAMA bit flips per 5-minute test; "
        "paper totals: No.1 2051/1098, No.2 4863/1875, No.5 57/7)"
    )
    if failures:
        table += "\n\n" + render_failure_manifest(failures)
    return table
