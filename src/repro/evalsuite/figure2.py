"""Experiment: Figure 2 — time costs of DRAMDig vs DRAMA on 9 machines.

Simulated wall-clock seconds for both tools on every machine. The paper's
claims this reproduces:

* DRAMDig finishes everywhere, 69 s (best) to 17 min (worst), 7.8 min
  average; the cost is dominated by Algorithm 2 and scales with the
  Algorithm-1 pool size (~16,000 addresses on No.6/No.9, smallest on the
  single-DIMM machines);
* DRAMA takes ~500 s to 2 h and is killed after two fruitless hours on
  No.3 and No.7.

Our absolute seconds come from the shared measurement cost model, so the
*shape* (ordering, ratios, timeouts) is the reproduction target, not the
absolute values; EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.drama import DramaConfig, DramaTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.gridrun import execute_grid
from repro.evalsuite.reporting import format_seconds, render_failure_manifest, render_table
from repro.machine.machine import SimulatedMachine
from repro.parallel import (
    DEFAULT_START_METHOD,
    CellFailure,
    CheckpointJournal,
    GridCell,
    GridPolicy,
)

__all__ = ["Figure2Point", "run_figure2", "render_figure2"]


@dataclass
class Figure2Point:
    """One machine's time costs."""

    machine: str
    dramdig_seconds: float
    drama_seconds: float
    drama_timed_out: bool
    dramdig_pool_size: int


def figure2_machine_cell(
    name: str,
    seed: int,
    dramdig_config: DramDigConfig | None,
    drama_config: DramaConfig | None,
) -> Figure2Point:
    """Both tools on one machine; each gets a fresh machine (fresh clock)
    so costs do not mix. Pure function of its arguments — grid-safe."""
    machine_preset = preset(name)

    dramdig_machine = SimulatedMachine.from_preset(machine_preset, seed=seed)
    dramdig_result = DramDig(dramdig_config).run(dramdig_machine)

    drama_machine = SimulatedMachine.from_preset(machine_preset, seed=seed)
    drama_result = DramaTool(drama_config, seed=seed).run(drama_machine)

    return Figure2Point(
        machine=name,
        dramdig_seconds=dramdig_result.total_seconds,
        drama_seconds=drama_result.seconds,
        drama_timed_out=drama_result.timed_out,
        dramdig_pool_size=dramdig_result.pool_size,
    )


def run_figure2(
    seed: int = 1,
    machines: tuple[str, ...] = TABLE2_ORDER,
    dramdig_config: DramDigConfig | None = None,
    drama_config: DramaConfig | None = None,
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> list[Figure2Point | CellFailure]:
    """Measure both tools' simulated time cost on every machine.

    One grid cell per machine; ``jobs`` > 1 fans the cells out to worker
    processes with bit-identical results (ordered reassembly). With
    ``supervision``/``journal`` the cells run crash-safe: a failed
    machine's slot holds its :class:`~repro.parallel.CellFailure` and
    the renderer prints it as a ``FAILED(reason)`` row.
    """
    cells = [
        GridCell(
            "repro.evalsuite.figure2:figure2_machine_cell",
            {
                "name": name,
                "seed": seed,
                "dramdig_config": dramdig_config,
                "drama_config": drama_config,
            },
        )
        for name in machines
    ]
    return execute_grid(
        cells, jobs=jobs, start_method=start_method,
        supervision=supervision, journal=journal,
        batch_cells=batch_cells, pool_mode=pool_mode,
    )


def render_figure2(points: list[Figure2Point | CellFailure]) -> str:
    """Render the comparison as the paper's grouped bars, in text.

    Supervised runs may hand over :class:`~repro.parallel.CellFailure`
    markers in place of points; those render as explicit ``FAILED``
    rows, the averages cover completed machines only, and a failure
    manifest is appended.
    """
    headers = ["Machine", "DRAMDig", "DRAMA", "DRAMA outcome", "DRAMDig pool"]
    rows = []
    failures = []
    completed = []
    for point in points:
        if isinstance(point, CellFailure):
            failures.append(point)
            rows.append([point.label, f"FAILED({point.reason})", "-", "-", "-"])
            continue
        completed.append(point)
        rows.append(
            [
                point.machine,
                format_seconds(point.dramdig_seconds),
                format_seconds(point.drama_seconds),
                "killed (timeout)" if point.drama_timed_out else "finished",
                point.dramdig_pool_size,
            ]
        )
    table = render_table(headers, rows)
    lines = [table, ""]
    finished = [p for p in completed if not p.drama_timed_out]
    if completed:
        average_dramdig = sum(p.dramdig_seconds for p in completed) / len(completed)
        lines.append(
            f"DRAMDig average: {format_seconds(average_dramdig)} "
            f"(paper: 7.8 min average, 69 s best, 17 min worst)"
        )
    if finished:
        average_drama = sum(p.drama_seconds for p in finished) / len(finished)
        lines.append(
            f"DRAMA average over finished runs: {format_seconds(average_drama)} "
            f"(paper: ~500 s to 2 h; killed at ~2 h on No.3, No.7)"
        )
    if failures:
        lines += ["", render_failure_manifest(failures)]
    return "\n".join(lines)
