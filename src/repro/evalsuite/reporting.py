"""Plain-text rendering helpers shared by the evaluation harness.

Every experiment module renders its result the way the paper prints it —
an ASCII table or series — so benchmark logs and CLI output can be
eyeballed against the original tables.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "render_table",
    "render_series",
    "render_failure_manifest",
    "format_seconds",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def render_series(label: str, points: Sequence[tuple[str, float]], unit: str = "s") -> str:
    """Render a labelled series with a proportional ASCII bar chart."""
    if not points:
        return f"{label}: (empty)"
    peak = max(value for _, value in points) or 1.0
    lines = [label]
    for name, value in points:
        bar = "#" * max(1, int(40 * value / peak)) if value > 0 else ""
        lines.append(f"  {name:>6}  {value:>9.1f}{unit}  {bar}")
    return "\n".join(lines)


def render_failure_manifest(failures: Sequence) -> str:
    """Render a supervised grid's failed cells as an explicit manifest.

    A partial artefact must say loudly *which* cells are missing and
    why; a table with silently absent rows reads as a complete run.
    Takes :class:`~repro.parallel.CellFailure` records (anything with a
    ``describe()`` method works).
    """
    lines = [f"grid failures ({len(failures)} cell(s) unrecovered):"]
    lines += [f"  {failure.describe()}" for failure in failures]
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-friendly duration: '69 s', '7.8 min', '2.0 h'."""
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.1f} h"
