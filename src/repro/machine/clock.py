"""Simulated wall clock and measurement cost model.

The paper's Figure 2 compares *wall-clock* cost of the tools. Our tools run
against a simulator, so real seconds are meaningless; instead every timing
measurement charges the clock with what it would have cost on hardware:

    cost = setup_overhead + rounds x (latency_a + latency_b)

where setup covers virtual-to-physical translation, cache-flush
instructions and loop bookkeeping. The cost model is shared by DRAMDig and
the baselines, so relative time costs (the shape of Figure 2) are a direct
consequence of how many measurements each algorithm performs and at what
rounds setting — exactly the quantity the paper's Section IV-B discusses
("the more selected addresses require more access latency measurements and
thus the partition costs more time").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock", "MeasurementCost"]


@dataclass(frozen=True)
class MeasurementCost:
    """Cost model for one pair-latency measurement.

    Attributes:
        setup_ns: fixed per-measurement overhead (address translation via
            pagemap, flush setup, loop warm-up).
        per_round_ns: additional bookkeeping per loop round (two clflushes,
            two mfences, loop control) beyond the raw access latencies.
    """

    setup_ns: float = 4_000.0
    per_round_ns: float = 30.0

    def measurement_ns(self, rounds: int, mean_pair_latency_ns: float) -> float:
        """Wall time of one measurement of ``rounds`` alternating accesses."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        return self.setup_ns + rounds * (self.per_round_ns + mean_pair_latency_ns)


@dataclass
class SimClock:
    """Monotonic simulated clock (nanoseconds).

    Attributes:
        elapsed_ns: simulated nanoseconds since construction.
        charges: number of charge() calls (for introspection in tests).
    """

    elapsed_ns: float = 0.0
    charges: int = field(default=0)

    def charge(self, duration_ns: float) -> None:
        """Advance the clock."""
        if duration_ns < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed_ns += duration_ns
        self.charges += 1

    @property
    def elapsed_seconds(self) -> float:
        """Simulated seconds elapsed."""
        return self.elapsed_ns / 1e9

    @property
    def elapsed_minutes(self) -> float:
        """Simulated minutes elapsed."""
        return self.elapsed_ns / 60e9

    def checkpoint(self) -> float:
        """Current elapsed_ns, for measuring a span: ``t0 = clock.checkpoint();
        ...; span = clock.since(t0)``."""
        return self.elapsed_ns

    def since(self, checkpoint_ns: float) -> float:
        """Nanoseconds charged since ``checkpoint_ns``."""
        return self.elapsed_ns - checkpoint_ns
