"""The simulated machine: what a reverse-engineering tool is allowed to see.

On real hardware a tool gets (1) memory it allocated, (2) a way to time a
pair of addresses, (3) system commands like dmidecode. Nothing else — it
must *not* read the memory controller's wiring. :class:`SimulatedMachine`
enforces the same contract: tools interact only through

* :meth:`allocate` / allocator variants — get physical pages,
* :meth:`measure_latency` / :meth:`measure_latency_batch` — the timing
  primitive (paper Section III-B), which charges the simulated clock,
* :meth:`sysinfo` / :meth:`dmidecode_text` — system information.

The ground-truth mapping lives in ``_controller`` (underscore = private by
convention); the test-suite and the evaluation harness use it to *verify*
recovered mappings, never to recover them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.dram.mapping import AddressMapping
from repro.dram.presets import MachinePreset
from repro.machine.allocator import PageAllocator, PhysPages
from repro.machine.clock import MeasurementCost, SimClock
from repro.machine.sysinfo import SystemInfo, render_decode_dimms, render_dmidecode
from repro.memctrl.controller import MemoryController
from repro.memctrl.timing import AccessClass, LatencyModel, NoiseParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

__all__ = ["SimulatedMachine", "MachineStats"]

DEFAULT_ROUNDS = 1000


@dataclass
class MachineStats:
    """Counters a tool's run accumulates on a machine."""

    measurements: int = 0
    accesses_timed: int = 0
    allocations: int = 0


class SimulatedMachine:
    """A machine under reverse engineering.

    Construct from a preset (:meth:`from_preset`) or any ground-truth
    mapping. A ``seed`` controls all stochastic behaviour (noise, allocation
    placement); two machines with the same preset and seed behave
    identically, which is how the test-suite checks tool *determinism*
    separately from machine randomness.
    """

    def __init__(
        self,
        mapping: AddressMapping,
        seed: int = 0,
        noise: NoiseParams | None = None,
        measurement_cost: MeasurementCost | None = None,
        microarchitecture: str = "Unknown",
        faults: FaultInjector | None = None,
    ):
        self.microarchitecture = microarchitecture
        # Optional fault layer; it owns its own RNG stream, so attaching
        # one never perturbs the machine-noise or tool RNG sequences.
        self.faults = faults
        self._mapping = mapping
        self._controller = MemoryController(mapping=mapping)
        self._latency_model = LatencyModel.for_generation(
            mapping.geometry.generation,
            noise=noise,
        )
        self._allocator = PageAllocator(total_bytes=mapping.geometry.total_bytes)
        self._cost = measurement_cost if measurement_cost is not None else MeasurementCost()
        self.clock = SimClock()
        self.stats = MachineStats()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_preset(
        cls,
        preset: MachinePreset,
        seed: int = 0,
        noise: NoiseParams | None = None,
        faults: FaultInjector | None = None,
    ) -> "SimulatedMachine":
        """Build the simulated version of one of the paper's machines.

        The preset's own noise profile applies unless ``noise`` overrides it
        (No.3 and No.7 are noisier than the rest; see presets). ``faults``
        optionally layers a fault-injection profile on top.
        """
        return cls(
            mapping=preset.mapping,
            seed=seed,
            noise=noise if noise is not None else preset.noise_profile,
            microarchitecture=preset.microarchitecture,
            faults=faults,
        )

    # ------------------------------------------------------------- allocation

    @property
    def total_bytes(self) -> int:
        """Physical memory size (a tool may read this from /proc too)."""
        return self._mapping.geometry.total_bytes

    def allocate(self, request_bytes: int, strategy: str = "contiguous") -> PhysPages:
        """Allocate physical pages.

        Strategies: ``contiguous`` (boot-reserved buffer / 1 GiB hugepage),
        ``fragmented`` (default userspace buddy allocation), ``sparse``
        (loaded machine), ``hugepages`` (2 MiB THP).
        """
        if self.faults is not None:
            request_bytes = self.faults.on_allocate(
                request_bytes, self.stats.allocations
            )
        self.stats.allocations += 1
        rng = self._rng
        if strategy == "contiguous":
            return self._allocator.allocate_contiguous(request_bytes, rng)
        if strategy == "fragmented":
            return self._allocator.allocate_fragmented(request_bytes, rng)
        if strategy == "sparse":
            return self._allocator.allocate_sparse(request_bytes, rng)
        if strategy == "hugepages":
            return self._allocator.allocate_hugepages(request_bytes, rng)
        raise ValueError(f"unknown allocation strategy {strategy!r}")

    # ---------------------------------------------------------------- timing

    def measure_latency(self, addr_a: int, addr_b: int, rounds: int = DEFAULT_ROUNDS) -> float:
        """Median latency (ns) of an alternating access loop over a pair.

        This is the paper's timing primitive: flush both addresses from the
        cache, access them alternately ``rounds`` times, return the median
        per-access latency. Charges the simulated clock with the hardware
        cost of doing so.
        """
        access_class = self._controller.classify_pair(addr_a, addr_b)
        is_conflict = access_class is AccessClass.ROW_CONFLICT
        latency = float(self._latency_model.sample_pair_ns(is_conflict, self._rng))
        if self.faults is not None:
            latency = self.faults.perturb_one(
                latency, is_conflict, addr_a, addr_b, self.clock.elapsed_ns
            )
        self._charge_one(latency, rounds)
        return latency

    def measure_latency_batch(
        self, base: int, others: np.ndarray, rounds: int = DEFAULT_ROUNDS
    ) -> np.ndarray:
        """Vectorized :meth:`measure_latency` of ``base`` against many
        addresses — what a real tool does when it partitions an address pool
        (one translation + flush setup per pair, so costs are identical to
        the scalar loop, just computed in bulk here for simulator speed)."""
        conflicts = self._controller.classify_pairs(base, others)
        latencies = self._latency_model.sample_batch_ns(conflicts, self._rng)
        if self.faults is not None:
            latencies = self.faults.perturb(
                latencies,
                conflicts,
                np.uint64(base),
                np.asarray(others, dtype=np.uint64),
                self.clock.elapsed_ns,
            )
        self._charge_measurements(latencies, rounds)
        return latencies

    def measure_latency_sweeps(
        self,
        base: int,
        others: np.ndarray,
        rounds: int = DEFAULT_ROUNDS,
        sweeps: int = 1,
    ) -> np.ndarray:
        """Element-wise minimum of ``sweeps`` batch measurements of ``base``
        against ``others`` — the campaign form of the repeat-and-take-the-
        minimum idiom every noise-suppressing scan uses.

        Bit-identical (latency values, noise-RNG stream, fault
        perturbations, clock charge and stats counters) to ``sweeps``
        consecutive :meth:`measure_latency_batch` calls reduced with
        ``np.minimum``: classification is a pure decode with no RNG, so
        hoisting it out of the sweep loop is a simulator-speed
        transformation only. Pinned by ``tests/machine/test_machine.py``.
        """
        if sweeps <= 0:
            raise ValueError("sweeps must be positive")
        others = np.asarray(others, dtype=np.uint64)
        conflicts = self._controller.classify_pairs(base, others)
        base_u64 = np.uint64(base)
        minimum: np.ndarray | None = None
        for _ in range(sweeps):
            latencies = self._latency_model.sample_batch_ns(conflicts, self._rng)
            if self.faults is not None:
                latencies = self.faults.perturb(
                    latencies, conflicts, base_u64, others, self.clock.elapsed_ns
                )
            self._charge_measurements(latencies, rounds)
            minimum = (
                latencies if minimum is None else np.minimum(minimum, latencies)
            )
        return minimum

    def measure_latency_pairs(
        self, bases: np.ndarray, partners: np.ndarray, rounds: int = DEFAULT_ROUNDS
    ) -> np.ndarray:
        """Measure ``(bases[i], partners[i])`` pairs with distinct bases.

        Classification is vectorized (one decode pass over each array);
        noise sampling and clock charging then proceed pair by pair in the
        same order a scalar :meth:`measure_latency` loop would, so the
        returned latencies, the simulated-clock charge, and the stats
        counters are all bit-identical to that loop — it is purely a
        simulator-speed transformation. Baseline tools use it to replace
        their calibration/row-scan loops.
        """
        bases = np.asarray(bases, dtype=np.uint64)
        partners = np.asarray(partners, dtype=np.uint64)
        if bases.shape != partners.shape:
            raise ValueError("bases and partners must have matching shapes")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        conflicts = self._controller.classify_pairwise(bases, partners)
        count = int(bases.size)
        latencies = np.empty(bases.shape, dtype=np.float64)
        rng = self._rng
        faults = self.faults
        clock = self.clock
        # Hot loop: the per-pair RNG and clock order is pinned, so the only
        # legal speedups are hoists. The charge expression must stay exactly
        # _charge_one's — float addition order is observable in the clock.
        sample = self._latency_model.sample_pair_ns
        charge = clock.charge
        setup_ns = self._cost.setup_ns
        per_round_ns = self._cost.per_round_ns
        flags = conflicts.tolist()
        base_ints = bases.tolist() if faults is not None else None
        partner_ints = partners.tolist() if faults is not None else None
        for index in range(count):
            latency = float(sample(flags[index], rng))
            if faults is not None:
                latency = faults.perturb_one(
                    latency,
                    flags[index],
                    base_ints[index],
                    partner_ints[index],
                    clock.elapsed_ns,
                )
            charge(setup_ns + rounds * (per_round_ns + 2.0 * latency))
            latencies[index] = latency
        self.stats.measurements += count
        self.stats.accesses_timed += 2 * rounds * count
        return latencies

    def _charge_one(self, latency: float, rounds: int) -> None:
        """Scalar clock/stats charge — exactly one pair measurement.

        Matches :meth:`_charge_measurements` for a single-element batch,
        term for term (``count`` = 1), so scalar and batch paths account
        identically; pinned by ``tests/machine/test_machine.py``.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        total = self._cost.setup_ns + rounds * (
            self._cost.per_round_ns + 2.0 * latency
        )
        self.clock.charge(total)
        self.stats.measurements += 1
        self.stats.accesses_timed += 2 * rounds

    def _charge_measurements(self, latencies: np.ndarray, rounds: int) -> None:
        # Accounting audit (two counters, two units — not a double count):
        # ``measurements`` counts pair measurements (one per latency summary
        # returned to the tool); ``accesses_timed`` counts individual timed
        # DRAM accesses (2 addresses x ``rounds`` alternations per pair).
        # Each increments exactly once per charge.
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        count = latencies.size
        pair_sum = 2.0 * float(latencies.sum())  # both addresses accessed per round
        total = count * self._cost.setup_ns + rounds * (
            count * self._cost.per_round_ns + pair_sum
        )
        self.clock.charge(total)
        self.stats.measurements += count
        self.stats.accesses_timed += 2 * rounds * count

    def charge_analysis(self, duration_ns: float) -> None:
        """Charge non-measurement work (sorting pools, GF(2) solving). Tools
        call this so Figure 2 accounts CPU-side cost too."""
        self.clock.charge(duration_ns)

    # ------------------------------------------------------------ system info

    def sysinfo(self) -> SystemInfo:
        """Parsed system information (dmidecode/decode-dimms equivalent)."""
        return SystemInfo.from_geometry(self._mapping.geometry)

    def dmidecode_text(self) -> str:
        """Raw dmidecode-style text, for tools that parse it themselves."""
        return render_dmidecode(self._mapping.geometry)

    def decode_dimms_text(self) -> str:
        """Raw decode-dimms-style SPD text (the paper's other command)."""
        return render_decode_dimms(self._mapping.geometry)

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock seconds consumed so far."""
        return self.clock.elapsed_seconds

    # ----------------------------------------------------- ground-truth oracle

    @property
    def ground_truth(self) -> AddressMapping:
        """The true mapping — for *verification only*.

        Tools must not touch this; the evaluation harness uses it to score
        recovered mappings, and the rowhammer simulator uses it to find true
        row adjacency.
        """
        return self._mapping

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model (exposed for probes to reason about scale)."""
        return self._latency_model
