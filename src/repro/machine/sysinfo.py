"""Simulated system-information sources.

The paper's second domain-knowledge group: "the total number of banks,
physical memory size, and whether DRAM chips support ECC protection ...
obtained from the output of system commands such as decode-dimms and
dmidecode" (Section III-A).

We model both the *structured facts* (:class:`SystemInfo`) and the *text
pipeline*: :func:`render_dmidecode` produces dmidecode-style output from a
geometry and :func:`parse_dmidecode` recovers the facts from such text, so
the knowledge-extraction step DRAMDig performs on a real machine is real,
tested code here rather than an assumed input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.dram.geometry import DramGeometry
from repro.dram.spec import DdrGeneration

__all__ = [
    "SystemInfo",
    "render_dmidecode",
    "parse_dmidecode",
    "render_decode_dimms",
    "parse_decode_dimms",
    "gather_system_info",
]


@dataclass(frozen=True)
class SystemInfo:
    """The facts DRAMDig extracts from dmidecode / decode-dimms.

    Attributes:
        generation: DDR3 or DDR4 (from the DIMM "Type" field).
        total_bytes: installed memory (sum of DIMM sizes).
        channels: populated channels (from locator strings).
        dimms_per_channel: DIMMs per channel.
        ranks_per_dimm: ranks ("Rank" attribute of decode-dimms).
        banks_per_rank: banks (from the SPD bank-bits field).
        ecc: whether the DIMMs are ECC parts.
    """

    generation: DdrGeneration
    total_bytes: int
    channels: int
    dimms_per_channel: int
    ranks_per_dimm: int
    banks_per_rank: int
    ecc: bool = False

    @property
    def total_banks(self) -> int:
        """Total banks across the machine — the ``#bank`` of Algorithm 2."""
        return self.channels * self.dimms_per_channel * self.ranks_per_dimm * self.banks_per_rank

    @classmethod
    def from_geometry(cls, geometry: DramGeometry) -> "SystemInfo":
        """The info a correctly-parsed dmidecode would yield for a machine."""
        return cls(
            generation=geometry.generation,
            total_bytes=geometry.total_bytes,
            channels=geometry.channels,
            dimms_per_channel=geometry.dimms_per_channel,
            ranks_per_dimm=geometry.ranks_per_dimm,
            banks_per_rank=geometry.banks_per_rank,
            ecc=geometry.ecc,
        )


_DMIDECODE_TEMPLATE = """\
# dmidecode 3.2 (simulated)
Getting SMBIOS data from sysfs.

Handle 0x003{index}, DMI type 17, 40 bytes
Memory Device
\tSize: {size_mib} MB
\tForm Factor: DIMM
\tLocator: ChannelA-DIMM{channel}-{slot}
\tType: {ddr_type}
\tType Detail: Synchronous
\tSpeed: {speed} MT/s
\tRank: {ranks}
\tBank Bits: {bank_bits}
\tError Correction Type: {ecc_type}
"""


def render_dmidecode(geometry: DramGeometry, speed_mts: int = 2400) -> str:
    """Render dmidecode-style "Memory Device" records for a geometry."""
    dimm_count = geometry.channels * geometry.dimms_per_channel
    dimm_bytes = geometry.total_bytes // dimm_count
    records = []
    index = 0
    for channel in range(geometry.channels):
        for slot in range(geometry.dimms_per_channel):
            records.append(
                _DMIDECODE_TEMPLATE.format(
                    index=index,
                    size_mib=dimm_bytes // 2**20,
                    channel=channel,
                    slot=slot,
                    ddr_type=str(geometry.generation),
                    speed=speed_mts,
                    ranks=geometry.ranks_per_dimm,
                    bank_bits=geometry.banks_per_rank.bit_length() - 1,
                    ecc_type="Single-bit ECC" if geometry.ecc else "None",
                )
            )
            index += 1
    return "\n".join(records)


def parse_dmidecode(text: str) -> SystemInfo:
    """Parse simulated dmidecode output back into :class:`SystemInfo`.

    Raises:
        ValueError: when no memory devices are found or records disagree.
    """
    devices = re.findall(
        r"Memory Device\n(.*?)(?=\n\n|\nHandle|\Z)", text, flags=re.DOTALL
    )
    parsed = []
    for body in devices:
        fields = dict(
            re.findall(r"^\t([A-Za-z ]+): (.+)$", body, flags=re.MULTILINE)
        )
        if fields.get("Size", "No Module Installed") == "No Module Installed":
            continue
        parsed.append(fields)
    if not parsed:
        raise ValueError("no populated memory devices in dmidecode output")

    sizes = {int(f["Size"].split()[0]) for f in parsed}
    types = {f["Type"] for f in parsed}
    ranks = {int(f["Rank"]) for f in parsed}
    bank_bits = {int(f["Bank Bits"]) for f in parsed}
    eccs = {f["Error Correction Type"] != "None" for f in parsed}
    for name, values in [
        ("Size", sizes),
        ("Type", types),
        ("Rank", ranks),
        ("Bank Bits", bank_bits),
        ("ECC", eccs),
    ]:
        if len(values) != 1:
            raise ValueError(f"DIMMs disagree on {name}: {sorted(map(str, values))}")

    channels = {f["Locator"].split("-")[1] for f in parsed}
    slots = {f["Locator"].split("-")[2] for f in parsed}
    generation = DdrGeneration(types.pop())
    return SystemInfo(
        generation=generation,
        total_bytes=sizes.pop() * 2**20 * len(parsed),
        channels=len(channels),
        dimms_per_channel=len(slots),
        ranks_per_dimm=ranks.pop(),
        banks_per_rank=1 << bank_bits.pop(),
        ecc=eccs.pop(),
    )


_DECODE_DIMMS_TEMPLATE = """\
Decoding EEPROM: /sys/bus/i2c/drivers/eeprom/0-00{slot:02x}
Guessing DIMM is in                              bank {index}
---=== SPD EEPROM Information ===---
Fundamental Memory type                          {ddr_type} SDRAM
---=== Memory Characteristics ===---
Size                                             {size_mib} MB
Banks x Rows x Columns x Bits                    {banks} x {row_bits} x 10 x 64
Ranks                                            {ranks}
Module Configuration Type                        {ecc_type}
"""


def render_decode_dimms(geometry: DramGeometry) -> str:
    """Render decode-dimms-style SPD output for every DIMM."""
    dimm_count = geometry.channels * geometry.dimms_per_channel
    dimm_bytes = geometry.total_bytes // dimm_count
    rank_bytes = dimm_bytes // geometry.ranks_per_dimm
    rows_per_bank = rank_bytes // (geometry.banks_per_rank * geometry.row_bytes)
    records = []
    for index in range(dimm_count):
        records.append(
            _DECODE_DIMMS_TEMPLATE.format(
                slot=0x50 + index,
                index=index,
                ddr_type=str(geometry.generation),
                size_mib=dimm_bytes // 2**20,
                banks=geometry.banks_per_rank,
                row_bits=rows_per_bank.bit_length() - 1,
                ranks=geometry.ranks_per_dimm,
                ecc_type="ECC" if geometry.ecc else "No Parity",
            )
        )
    return "\n".join(records)


def parse_decode_dimms(text: str) -> dict:
    """Parse decode-dimms output into the facts it can provide.

    decode-dimms reads the DIMMs' SPD EEPROMs, so it knows per-DIMM size,
    type, banks and ranks — but *not* the channel topology (that is the
    memory controller's business, visible only through dmidecode
    locators). Returns a dict with ``generation``, ``dimm_count``,
    ``dimm_bytes``, ``banks_per_rank``, ``ranks_per_dimm``, ``ecc``.
    """
    blocks = re.findall(
        r"Decoding EEPROM.*?(?=\nDecoding EEPROM|\Z)", text, flags=re.DOTALL
    )
    if not blocks:
        raise ValueError("no SPD records in decode-dimms output")
    types, sizes, banks, ranks, eccs = set(), set(), set(), set(), set()
    for block in blocks:
        type_match = re.search(r"Fundamental Memory type\s+(\S+) SDRAM", block)
        size_match = re.search(r"^Size\s+(\d+) MB", block, flags=re.MULTILINE)
        organisation = re.search(
            r"Banks x Rows x Columns x Bits\s+(\d+) x", block
        )
        rank_match = re.search(r"^Ranks\s+(\d+)", block, flags=re.MULTILINE)
        ecc_match = re.search(r"Module Configuration Type\s+(.+)$", block, flags=re.MULTILINE)
        if not all((type_match, size_match, organisation, rank_match, ecc_match)):
            raise ValueError("malformed SPD record")
        types.add(type_match.group(1))
        sizes.add(int(size_match.group(1)))
        banks.add(int(organisation.group(1)))
        ranks.add(int(rank_match.group(1)))
        eccs.add("ECC" in ecc_match.group(1))
    for name, values in [("type", types), ("size", sizes), ("banks", banks),
                         ("ranks", ranks), ("ECC", eccs)]:
        if len(values) != 1:
            raise ValueError(f"DIMMs disagree on {name}")
    return {
        "generation": DdrGeneration(types.pop()),
        "dimm_count": len(blocks),
        "dimm_bytes": sizes.pop() * 2**20,
        "banks_per_rank": banks.pop(),
        "ranks_per_dimm": ranks.pop(),
        "ecc": eccs.pop(),
    }


def gather_system_info(dmidecode_text: str, decode_dimms_text: str) -> SystemInfo:
    """Combine and cross-validate both commands' output, as DRAMDig does.

    dmidecode supplies the channel topology; decode-dimms supplies the
    SPD ground truth for sizes, banks and ranks. Disagreement between the
    two means a parsing or hardware-reporting problem and is a hard error.
    """
    info = parse_dmidecode(dmidecode_text)
    spd = parse_decode_dimms(decode_dimms_text)
    expected_dimms = info.channels * info.dimms_per_channel
    mismatches = []
    if spd["generation"] != info.generation:
        mismatches.append("memory type")
    if spd["dimm_count"] != expected_dimms:
        mismatches.append("DIMM count")
    if spd["dimm_bytes"] * spd["dimm_count"] != info.total_bytes:
        mismatches.append("total size")
    if spd["banks_per_rank"] != info.banks_per_rank:
        mismatches.append("bank count")
    if spd["ranks_per_dimm"] != info.ranks_per_dimm:
        mismatches.append("rank count")
    if spd["ecc"] != info.ecc:
        mismatches.append("ECC")
    if mismatches:
        raise ValueError(
            f"dmidecode and decode-dimms disagree on: {', '.join(mismatches)}"
        )
    return info
