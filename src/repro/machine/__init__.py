"""Simulated machine: allocator, sysinfo, clock, and the machine facade."""

from repro.machine.allocator import PAGE_SHIFT, PAGE_SIZE, PageAllocator, PhysPages
from repro.machine.clock import MeasurementCost, SimClock
from repro.machine.machine import DEFAULT_ROUNDS, MachineStats, SimulatedMachine
from repro.machine.sysinfo import (
    SystemInfo,
    gather_system_info,
    parse_decode_dimms,
    parse_dmidecode,
    render_decode_dimms,
    render_dmidecode,
)
from repro.machine.virtual import PAGEMAP_ENTRY_NS, VirtualBuffer

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageAllocator",
    "PhysPages",
    "MeasurementCost",
    "SimClock",
    "DEFAULT_ROUNDS",
    "MachineStats",
    "SimulatedMachine",
    "SystemInfo",
    "parse_dmidecode",
    "render_dmidecode",
    "render_decode_dimms",
    "parse_decode_dimms",
    "gather_system_info",
    "PAGEMAP_ENTRY_NS",
    "VirtualBuffer",
]
