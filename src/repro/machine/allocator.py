"""Simulated OS physical-page allocation.

Reverse-engineering tools work on whatever physical pages the OS hands
them. The paper's Algorithm 1 explicitly copes with *missing* pages
(``page_miss`` / retry): a userspace buffer is virtually contiguous but its
physical pages can be scattered. We model three allocation behaviours:

* ``contiguous``  — one physically contiguous block (what a 1 GiB hugepage
  or a boot-time reservation gives you); the easy case.
* ``fragmented``  — buddy-allocator style: high-order blocks mixed with
  scattered 4 KiB pages and holes; exercises Algorithm 1's retry path.
* ``sparse``      — uniformly random pages covering a fraction of memory;
  what DRAMA's unprivileged allocation looks like on a loaded machine.

A :class:`PhysPages` result supports O(1) membership tests and vectorized
queries, because Algorithm 1 probes millions of candidate addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.arrays import sorted_unique
from repro.dram.errors import AllocationError

__all__ = ["PAGE_SIZE", "PAGE_SHIFT", "PhysPages", "PageAllocator"]

PAGE_SIZE = 4096
PAGE_SHIFT = 12


@dataclass(frozen=True)
class PhysPages:
    """A set of allocated physical pages.

    Attributes:
        page_numbers: sorted unique physical frame numbers (addr >> 12).
        total_bytes: size of the machine's physical memory (for bounds).
    """

    page_numbers: np.ndarray
    total_bytes: int

    def __post_init__(self) -> None:
        pages = np.asarray(self.page_numbers, dtype=np.uint64)
        # np.unique's hash path is very slow on multi-million uint64 arrays;
        # every allocator already produces sorted unique frames, so only pay
        # for deduplication when the input actually needs it.
        if pages.size > 1 and not bool(np.all(pages[1:] > pages[:-1])):
            pages = sorted_unique(pages)
        object.__setattr__(self, "page_numbers", pages)

    def __len__(self) -> int:
        return int(self.page_numbers.size)

    @property
    def byte_count(self) -> int:
        """Total bytes covered by the allocated pages."""
        return len(self) * PAGE_SIZE

    def has_page(self, phys_addr: int) -> bool:
        """True when the page containing ``phys_addr`` is allocated."""
        frame = phys_addr >> PAGE_SHIFT
        index = int(np.searchsorted(self.page_numbers, frame))
        return index < self.page_numbers.size and int(self.page_numbers[index]) == frame

    def has_pages(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_page` (binary search on the sorted frames)."""
        frames = np.asarray(phys_addrs, dtype=np.uint64) >> np.uint64(PAGE_SHIFT)
        if self.page_numbers.size == 0:
            return np.zeros(frames.shape, dtype=bool)
        indices = np.searchsorted(self.page_numbers, frames)
        indices = np.minimum(indices, self.page_numbers.size - 1)
        return self.page_numbers[indices] == frames

    def has_range(self, start: int, end: int) -> bool:
        """True when every page of [start, end) is allocated — Algorithm 1's
        ``!page_miss(phys_pages, P_start, P_end)`` check."""
        first = start >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        index = np.searchsorted(self.page_numbers, first)
        count = last - first + 1
        if index + count > self.page_numbers.size:
            return False
        window = self.page_numbers[index : index + count]
        return bool(
            window.size == count
            and window[0] == first
            and window[-1] == last
        )

    def addresses(self) -> np.ndarray:
        """Base physical address of every allocated page."""
        return self.page_numbers << np.uint64(PAGE_SHIFT)

    def sample_addresses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Random addresses inside allocated pages (cache-line aligned), the
        raw material of DRAMA-style random pools."""
        if count <= 0:
            raise AllocationError("sample count must be positive")
        frames = rng.choice(self.page_numbers, size=count, replace=True)
        line_offsets = rng.integers(0, PAGE_SIZE // 64, size=count, dtype=np.uint64)
        return (frames << np.uint64(PAGE_SHIFT)) | (line_offsets << np.uint64(6))


@dataclass(frozen=True)
class PageAllocator:
    """Simulated OS allocator over ``total_bytes`` of physical memory.

    Attributes:
        total_bytes: physical memory size.
        reserved_low_bytes: memory below this is kernel/firmware reserved
            and never handed to userspace (models the real low-memory
            holes).
    """

    total_bytes: int
    reserved_low_bytes: int = 1 << 24  # 16 MiB

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.total_bytes % PAGE_SIZE:
            raise AllocationError("total_bytes must be a positive page multiple")
        if not 0 <= self.reserved_low_bytes < self.total_bytes:
            raise AllocationError("reserved_low_bytes out of range")

    @property
    def _frame_range(self) -> tuple[int, int]:
        return self.reserved_low_bytes >> PAGE_SHIFT, self.total_bytes >> PAGE_SHIFT

    def _check_request(self, request_bytes: int) -> int:
        if request_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        frames = (request_bytes + PAGE_SIZE - 1) >> PAGE_SHIFT
        low, high = self._frame_range
        if frames > high - low:
            raise AllocationError(
                f"cannot allocate {request_bytes} bytes from "
                f"{(high - low) * PAGE_SIZE} available"
            )
        return frames

    def allocate_contiguous(
        self, request_bytes: int, rng: np.random.Generator
    ) -> PhysPages:
        """One physically contiguous block at a random aligned position."""
        frames = self._check_request(request_bytes)
        low, high = self._frame_range
        start = int(rng.integers(low, high - frames + 1))
        pages = np.arange(start, start + frames, dtype=np.uint64)
        return PhysPages(page_numbers=pages, total_bytes=self.total_bytes)

    def allocate_fragmented(
        self,
        request_bytes: int,
        rng: np.random.Generator,
        max_order: int = 10,
        hole_fraction: float = 0.03,
    ) -> PhysPages:
        """Buddy-style allocation: random high-order blocks plus holes.

        ``max_order`` caps block size at ``2**max_order`` pages (order 10 =
        4 MiB, the Linux buddy maximum). ``hole_fraction`` of the pages
        inside chosen blocks are withheld, modelling pages the OS kept.
        """
        frames_needed = self._check_request(request_bytes)
        low, high = self._frame_range
        chunks: list[np.ndarray] = []
        collected = 0
        attempts = 0
        while collected < frames_needed:
            attempts += 1
            if attempts > 10_000:
                raise AllocationError("fragmented allocation did not converge")
            order = int(rng.integers(max_order // 2, max_order + 1))
            size = 1 << order
            start = int(rng.integers(low, max(low + 1, high - size)))
            start &= ~(size - 1)  # buddy blocks are order-aligned
            if start < low:
                continue
            block = np.arange(start, min(start + size, high), dtype=np.uint64)
            if hole_fraction > 0:
                keep = rng.random(block.size) >= hole_fraction
                block = block[keep]
            chunks.append(block)
            collected += block.size
        pages = sorted_unique(np.concatenate(chunks))
        return PhysPages(page_numbers=pages, total_bytes=self.total_bytes)

    def allocate_sparse(
        self, request_bytes: int, rng: np.random.Generator
    ) -> PhysPages:
        """Uniformly random pages, no contiguity guarantee at all."""
        frames_needed = self._check_request(request_bytes)
        low, high = self._frame_range
        pages = rng.choice(
            np.arange(low, high, dtype=np.uint64),
            size=min(frames_needed, high - low),
            replace=False,
        )
        return PhysPages(page_numbers=np.sort(pages), total_bytes=self.total_bytes)

    def allocate_hugepages(
        self, request_bytes: int, rng: np.random.Generator, huge_bytes: int = 1 << 21
    ) -> PhysPages:
        """2 MiB-hugepage-backed allocation: contiguous huge_bytes blocks at
        random aligned positions (how rowhammer attacks usually allocate)."""
        frames_needed = self._check_request(request_bytes)
        frames_per_huge = huge_bytes >> PAGE_SHIFT
        low, high = self._frame_range
        chunks: list[np.ndarray] = []
        used_starts: set[int] = set()
        collected = 0
        attempts = 0
        while collected < frames_needed:
            attempts += 1
            if attempts > 10_000:
                raise AllocationError("hugepage allocation did not converge")
            start = int(rng.integers(low, high - frames_per_huge + 1))
            start &= ~(frames_per_huge - 1)
            if start < low or start in used_starts:
                continue
            used_starts.add(start)
            chunks.append(np.arange(start, start + frames_per_huge, dtype=np.uint64))
            collected += frames_per_huge
        pages = sorted_unique(np.concatenate(chunks))
        return PhysPages(page_numbers=pages, total_bytes=self.total_bytes)
