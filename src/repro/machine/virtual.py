"""Virtual memory: the address space a real tool actually starts from.

Userspace tools never see physical addresses directly. They allocate a
virtual buffer, then read ``/proc/self/pagemap`` to learn each virtual
page's physical frame. This module models that layer:

* :class:`VirtualBuffer` — a contiguous virtual range whose pages map to
  the (possibly scattered) physical pages the simulated OS handed out;
* :meth:`VirtualBuffer.translate` — VA -> PA, the per-access translation;
* :meth:`VirtualBuffer.read_pagemap` — the bulk pagemap scan every tool
  performs once at startup, charged to the simulated clock at a realistic
  per-entry cost;
* :meth:`VirtualBuffer.phys_pages` — the :class:`PhysPages` view the rest
  of the library consumes, so the reverse-engineering pipeline composes
  with this layer unchanged.

The pipeline's algorithms operate on physical addresses (as the paper's
do, after translation); this layer exists so the library also models the
*cost* and *mechanics* of obtaining them, and so examples can show the
full VA-to-DRAM journey.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.errors import AllocationError
from repro.machine.allocator import PAGE_SHIFT, PAGE_SIZE, PhysPages

__all__ = ["VirtualBuffer", "PAGEMAP_ENTRY_NS"]

# Cost of one pagemap entry read (seek + 8-byte read through procfs).
PAGEMAP_ENTRY_NS = 600.0


@dataclass(frozen=True)
class VirtualBuffer:
    """A virtually contiguous buffer backed by simulated physical pages.

    Attributes:
        va_base: virtual base address (page aligned).
        frames: physical frame number of each virtual page, in order.
        total_bytes: size of the machine's physical memory.
    """

    va_base: int
    frames: np.ndarray
    total_bytes: int

    def __post_init__(self) -> None:
        if self.va_base % PAGE_SIZE:
            raise AllocationError("va_base must be page aligned")
        frames = np.asarray(self.frames, dtype=np.uint64)
        object.__setattr__(self, "frames", frames)
        if frames.size == 0:
            raise AllocationError("virtual buffer needs at least one page")

    @classmethod
    def from_phys_pages(
        cls, pages: PhysPages, rng: np.random.Generator, va_base: int = 0x7F0000000000
    ) -> "VirtualBuffer":
        """Map allocated physical pages into a contiguous virtual range.

        The OS hands out physical pages in no particular order relative to
        the virtual layout, so the frame order is shuffled — the reason
        tools cannot assume virtual contiguity means physical contiguity.
        """
        frames = pages.page_numbers.copy()
        rng.shuffle(frames)
        return cls(va_base=va_base, frames=frames, total_bytes=pages.total_bytes)

    # -------------------------------------------------------------- geometry

    @property
    def size_bytes(self) -> int:
        """Virtual extent of the buffer."""
        return int(self.frames.size) * PAGE_SIZE

    @property
    def va_end(self) -> int:
        """One past the last mapped virtual address."""
        return self.va_base + self.size_bytes

    def contains(self, virtual_addr: int) -> bool:
        """True when the virtual address lies inside the buffer."""
        return self.va_base <= virtual_addr < self.va_end

    # ------------------------------------------------------------ translation

    def translate(self, virtual_addr: int) -> int:
        """VA -> PA for one address."""
        if not self.contains(virtual_addr):
            raise AllocationError(
                f"virtual address {virtual_addr:#x} outside the buffer "
                f"[{self.va_base:#x}, {self.va_end:#x})"
            )
        offset = virtual_addr - self.va_base
        frame = int(self.frames[offset >> PAGE_SHIFT])
        return (frame << PAGE_SHIFT) | (offset & (PAGE_SIZE - 1))

    def translate_batch(self, virtual_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate`."""
        addrs = np.asarray(virtual_addrs, dtype=np.uint64)
        offsets = addrs - np.uint64(self.va_base)
        indices = offsets >> np.uint64(PAGE_SHIFT)
        if (addrs < self.va_base).any() or (indices >= self.frames.size).any():
            raise AllocationError("virtual address outside the buffer")
        return (self.frames[indices] << np.uint64(PAGE_SHIFT)) | (
            offsets & np.uint64(PAGE_SIZE - 1)
        )

    def reverse_translate(self, phys_addr: int) -> int | None:
        """PA -> VA when the physical page is mapped here, else None."""
        frame = phys_addr >> PAGE_SHIFT
        matches = np.flatnonzero(self.frames == np.uint64(frame))
        if matches.size == 0:
            return None
        return (
            self.va_base
            + int(matches[0]) * PAGE_SIZE
            + (phys_addr & (PAGE_SIZE - 1))
        )

    # ---------------------------------------------------------------- pagemap

    def read_pagemap(self, machine=None) -> np.ndarray:
        """The startup pagemap scan: frame numbers for every virtual page.

        When ``machine`` is given, the scan's procfs cost is charged to its
        clock (one entry per page), as every tool pays it once.
        """
        if machine is not None:
            machine.charge_analysis(self.frames.size * PAGEMAP_ENTRY_NS)
        return self.frames.copy()

    def phys_pages(self) -> PhysPages:
        """The physical-page view the reverse-engineering pipeline uses."""
        return PhysPages(page_numbers=np.sort(self.frames), total_bytes=self.total_bytes)
