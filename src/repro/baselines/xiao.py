"""Xiao et al. baseline (USENIX Security 2016), reimplemented.

Xiao et al.'s tool is fast but *not generic* (paper Table I); DRAMDig's
authors ran the shared code and found it failed on machine settings No.2
and No.6-9, e.g. hanging on No.6 after resolving three two-bit functions
(Section IV-A). The reimplementation reproduces the method and therefore
the failure modes:

1. **Row scan** — same single-bit-flip timing scan as everyone else.
2. **Row-partner search** — for every *hidden* row bit ``r`` (a bit just
   below the detected row range that reads fast when flipped alone,
   because it also feeds a bank function), search for the single partner
   bit ``lo`` such that flipping ``{lo, r}`` reads slow. Each hit is a
   two-bit bank function. This is exactly where the tool gets stuck on
   machines whose hidden row bits feed *two* functions (bit 19 on No.6
   feeds (15,19) and the wide channel hash): no single partner restores
   the bank, every probe reads fast, and the search loops until its
   budget dies.
3. **Channel templates** — functions containing no row bit (the channel /
   rank hashes) cannot be found by row-partnering; the tool carries
   hard-coded templates for the platforms its authors owned: the
   single-bit channel select of dual-channel Sandy Bridge and the wide
   DDR3 dual-channel hash of their Haswell testbed. On anything else
   (Ivy Bridge dual-channel, every DDR4 part) the needed template is
   missing and the final self-verification never passes.
4. **Self-verification** — predict same-bank-different-row for random
   pairs from the assembled mapping and compare against measurements;
   below-threshold agreement means the tool keeps searching until its
   attempt budget is exhausted (:class:`ToolStuckError`, carrying the
   partial function list, as the paper describes).

The DDR3 geometry assumptions (8 banks per rank, spec row counts) are the
tool's own; on DDR4 they are simply wrong, which is the structural reason
for the No.6-9 failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bits import bit, bits_of_mask, format_mask
from repro.analysis.repair import kernel_repair
from repro.analysis.stats import calibrate_threshold
from repro.dram.belief import BeliefMapping
from repro.dram.errors import CalibrationError, ToolStuckError
from repro.machine.machine import SimulatedMachine

__all__ = ["XiaoConfig", "XiaoResult", "XiaoTool", "CHANNEL_TEMPLATES"]

# Hard-coded channel/rank-hash templates, keyed by (microarchitecture,
# channel count). These mirror the published mappings of the platforms the
# Xiao et al. paper evaluated on (Sandy Bridge desktops and the dual-channel
# DDR3 Haswell/Ivy-Bridge-EP cloud machines), which their tool carried as
# built-in knowledge.
CHANNEL_TEMPLATES: dict[tuple[str, int], tuple[tuple[int, ...], ...]] = {
    ("Sandy Bridge", 2): ((6,),),
    ("Haswell", 2): ((7, 8, 9, 12, 13, 18, 19),),
}


@dataclass(frozen=True)
class XiaoConfig:
    """Tool tuning.

    Attributes:
        rounds: accesses per measurement.
        measure_repeats: measurements per pair; the minimum is kept
            (refresh spikes only inflate latency).
        calibration_pairs: random pairs for threshold calibration; must be
            large enough that 64-bank machines still contribute a visible
            slow population (~1/#banks of the sample).
        alloc_fraction: buffer size as a fraction of memory.
        partner_search_low: lowest bit tried as a partner.
        verify_pairs: random pairs for the final self-verification.
        verify_agreement: required prediction/measurement agreement.
        stuck_budget_seconds: simulated time burned in the retry loop
            before the tool is declared stuck (it has no timeout of its
            own; the budget models the operator killing it).
    """

    rounds: int = 4000
    measure_repeats: int = 4
    calibration_pairs: int = 512
    alloc_fraction: float = 0.8
    partner_search_low: int = 6
    verify_pairs: int = 256
    verify_agreement: float = 0.97
    stuck_budget_seconds: float = 1800.0


@dataclass
class XiaoResult:
    """Outcome of a successful Xiao run."""

    belief: BeliefMapping
    seconds: float
    measurements: int


class XiaoTool:
    """Xiao et al.'s row-partner reverse-engineering method."""

    def __init__(self, config: XiaoConfig | None = None, seed: int = 7):
        self.config = config if config is not None else XiaoConfig()
        self._rng = np.random.default_rng(seed)

    def run(self, machine: SimulatedMachine) -> XiaoResult:
        """Run the tool; raises :class:`ToolStuckError` on its documented
        failure settings."""
        config = self.config
        clock = machine.clock
        start_ns = clock.checkpoint()
        pages = machine.allocate(
            int(machine.total_bytes * config.alloc_fraction), "contiguous"
        )
        machine.charge_analysis(pages.byte_count * 0.33)
        address_bits = machine.total_bytes.bit_length() - 1
        info = machine.sysinfo()

        threshold = self._calibrate(machine, pages)

        # Step 1: single-bit row scan.
        pure_rows = self._scan_rows(machine, pages, threshold, address_bits)
        if not pure_rows:
            raise ToolStuckError("no row bits detected; timing loop broken")

        # Step 2: channel/rank hash templates for the authors' platforms
        # (applied first so the partner search can compensate against them).
        functions: list[int] = []
        key = (machine.microarchitecture, info.channels)
        for template in CHANNEL_TEMPLATES.get(key, ()):
            mask = 0
            for position in template:
                mask |= bit(position)
            functions.append(mask)

        # Step 3: row-partner search for hidden row bits under the range.
        hidden_rows: list[int] = []
        cursor = min(pure_rows) - 1
        consecutive_failures = 0
        while cursor > config.partner_search_low and consecutive_failures < 3:
            partner = self._find_partner(machine, pages, threshold, cursor, functions)
            if partner is None:
                consecutive_failures += 1
            else:
                consecutive_failures = 0
                functions.append(bit(cursor) | bit(partner))
                hidden_rows.append(cursor)
            cursor -= 1

        row_bits = tuple(sorted(set(pure_rows) | set(hidden_rows)))
        column_bits = tuple(
            position
            for position in range(address_bits)
            if position not in row_bits
            and all(not bit(position) & f for f in functions)
        )
        belief = BeliefMapping(
            address_bits=address_bits,
            bank_functions=tuple(functions),
            row_bits=row_bits,
            column_bits=column_bits,
        )

        # Step 4: self-verification; loop (i.e. burn the budget) on failure.
        if not self._verify(machine, pages, threshold, belief):
            machine.charge_analysis(config.stuck_budget_seconds * 1e9)
            resolved = ", ".join(format_mask(f) for f in functions)
            raise ToolStuckError(
                f"stuck after resolving {resolved or 'no functions'} "
                f"(verification never converged)",
                partial_result=tuple(functions),
            )
        return XiaoResult(
            belief=belief,
            seconds=clock.since(start_ns) / 1e9,
            measurements=machine.stats.measurements,
        )

    # -------------------------------------------------------------- internals

    def _calibrate(self, machine, pages):
        """Reference-anchored calibration (same-page pairs are never
        row conflicts), as the original tool calibrated against known
        same-row accesses. Batched via measure_latency_pairs —
        bit-identical to the original per-pair loop."""
        count = self.config.calibration_pairs
        bases = pages.sample_addresses(64, self._rng)
        references = self._min_latency_pairs(machine, bases, bases ^ np.uint64(0x80))
        bases = pages.sample_addresses(count, self._rng)
        partners = pages.sample_addresses(count, self._rng)
        samples = self._min_latency_pairs(machine, bases, partners)
        try:
            return calibrate_threshold(references, samples)
        except ValueError as error:
            raise CalibrationError(str(error)) from error

    def _min_latency(self, machine, addr_a: int, addr_b: int) -> float:
        return min(
            machine.measure_latency(addr_a, addr_b, self.config.rounds)
            for _ in range(self.config.measure_repeats)
        )

    def _min_latency_pairs(
        self, machine, bases: np.ndarray, partners: np.ndarray
    ) -> np.ndarray:
        """Vectorized min-of-repeats over many pairs.

        Repeats are interleaved per pair (pair 0's repeats, then pair 1's,
        ...), matching the measurement order — and therefore the machine's
        noise-RNG stream — of a scalar :meth:`_min_latency` loop exactly.
        """
        repeats = self.config.measure_repeats
        rep_bases = np.repeat(np.asarray(bases, dtype=np.uint64), repeats)
        rep_partners = np.repeat(np.asarray(partners, dtype=np.uint64), repeats)
        latencies = machine.measure_latency_pairs(
            rep_bases, rep_partners, self.config.rounds
        )
        return latencies.reshape(-1, repeats).min(axis=1)

    def _measure(self, machine, pages, threshold, mask: int) -> bool:
        """Min-of-two measurement of a pair differing by ``mask``."""
        samples = pages.sample_addresses(64, self._rng)
        partners = samples ^ np.uint64(mask)
        valid = (partners < pages.total_bytes) & pages.has_pages(partners)
        hits = np.flatnonzero(valid)
        if hits.size == 0:
            return False
        base = int(samples[hits[0]])
        return threshold.is_slow(self._min_latency(machine, base, base ^ mask))

    def _scan_rows(self, machine, pages, threshold, address_bits: int) -> tuple[int, ...]:
        return tuple(
            position
            for position in range(address_bits)
            if self._measure(machine, pages, threshold, bit(position))
        )

    def _find_partner(
        self, machine, pages, threshold, row_bit: int, known_functions: list[int]
    ) -> int | None:
        """Search the single low partner making {lo, row_bit} read slow.

        Each candidate probe is compensated against the *known* functions
        (the templates and previously found pairs) by XORing in their
        lowest non-row member bits — the tool's built-in knowledge of its
        platforms' channel hashes is what lets it handle row bits that feed
        two functions (bit 18/19 on the authors' Haswell machines). With no
        matching template the compensation is unsolvable and the probe
        always reads fast: the documented "stuck" behaviour.
        """
        for partner in range(self.config.partner_search_low, row_bit):
            candidate = bit(row_bit) | bit(partner)
            repair = self._compensate(candidate, known_functions, row_bit)
            if repair is None:
                continue
            if self._measure(machine, pages, threshold, candidate | repair):
                return partner
        return None

    def _compensate(
        self, candidate: int, known_functions: list[int], row_bit: int
    ) -> int | None:
        """Bits restoring every known function's parity, or None."""
        if not known_functions:
            return 0
        forbidden = set(bits_of_mask(candidate)) | {row_bit}
        available = sorted(
            {
                position
                for g in known_functions
                for position in bits_of_mask(g)
                if position not in forbidden and position < row_bit
            }
        )
        return kernel_repair(candidate, known_functions, available)

    def _verify(self, machine, pages, threshold, belief: BeliefMapping) -> bool:
        """Predict conflicts from the belief, compare with measurements."""
        config = self.config
        bases = pages.sample_addresses(config.verify_pairs, self._rng)
        partners = pages.sample_addresses(config.verify_pairs, self._rng)
        measured = threshold.classify(self._min_latency_pairs(machine, bases, partners))
        agreements = 0
        for base, partner, is_slow in zip(bases, partners, measured):
            base, partner = int(base), int(partner)
            predicted = (
                belief.bank_of(base) == belief.bank_of(partner)
                and belief.row_of(base) != belief.row_of(partner)
            )
            agreements += predicted == bool(is_slow)
        return agreements / config.verify_pairs >= config.verify_agreement
