"""DRAMA baseline (Pessl et al., USENIX Security 2016), reimplemented.

DRAMA is the generic brute-force comparator of the paper's evaluation. It
uses **no domain knowledge**:

* it does not know the bank count — it guesses from the number of
  same-bank sets it can cluster;
* it samples a *random* address pool instead of Algorithm-1-style targeted
  selection, so the pool is ~10,000 scattered addresses (blindness needs
  coverage) and every set scan measures all of them at twice the rounds a
  knowledge-assisted tool needs;
* its measurements are single-shot (no repeated-minimum noise
  suppression), so refresh spikes land in the sets as false members and in
  the single-bit row scan as phantom row bits;
* after clustering it brute-forces XOR functions over all address bits
  (we charge the enumeration cost and compute the surviving candidates
  with the equivalent nullspace algebra), keeps those consistent with at
  least ``consistency_threshold`` of every set, and self-checks that
  ``2^#functions`` matches the set count — retrying the whole pipeline
  from scratch on mismatch.

Those retries are DRAMA's published failure mode: the DRAMDig paper ran it
"for numerous times and found that it generated different DRAM mappings
most of the time", measured 500 s - 2 h of runtime, and killed it after
two fruitless hours on machines No.3 and No.7 (our noisy-laptop presets:
their contamination rate starves the subsample search of clean draws).

Row bits come from a single-shot single-bit scan plus the standard
extension heuristic (grow the row range downwards through two-bit
functions whose high bit adjoins it). A single phantom row bit from a
noise spike silently corrupts the believed row field — which is exactly
why DRAMA-aimed double-sided rowhammer sometimes induces zero flips
(paper Table III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis import gf2
from repro.analysis.arrays import sorted_unique
from repro.analysis.bits import bit, bits_of_mask, deposit_bits, popcount
from repro.analysis.stats import find_threshold
from repro.dram.belief import BeliefMapping
from repro.dram.errors import CalibrationError, ToolTimeoutError
from repro.machine.machine import SimulatedMachine

__all__ = ["DramaConfig", "DramaResult", "DramaTool"]


@dataclass(frozen=True)
class DramaConfig:
    """DRAMA tuning.

    Attributes:
        pool_size: random addresses per attempt.
        rounds: accesses per (single-shot) measurement.
        alloc_fraction: memory fraction allocated (unprivileged buffer).
        alloc_strategy: allocation behaviour.
        min_set_size: smallest accepted same-bank set.
        max_set_rounds: base draws per attempt before giving up clustering.
        cluster_repeats: measurement sweeps per set scan, minimum taken —
            the upstream DRAMA code re-verifies set members the same way.
            The *row scan* stays single-shot, as in the original, which is
            where phantom row bits (and Table III's zero-flip runs) come
            from.
        subsample_size: addresses per set used for one function-search draw.
        subsample_draws: independent draws per set.
        consistency_threshold: fraction of a set a candidate function must
            be constant on to survive verification.
        max_function_bits: brute-force enumeration width (7 covers the widest Intel hash).
        search_low_bit: lowest physical bit brute-forced (cache-line bits
            below 6 can never be bank bits).
        brute_force_check_ns: charged CPU time per enumerated candidate.
        timeout_seconds: wall-clock budget before the run is declared dead
            (the paper killed DRAMA at roughly two hours).
        batch_probes: issue each set scan's repeat sweeps as one vectorized
            measurement campaign instead of stepwise batch calls. Both
            paths are bit-identical in every measured value and charge —
            the flag only exists so the perf harness can price stepwise
            measurement issue.
    """

    pool_size: int = 10000
    rounds: int = 8000
    alloc_fraction: float = 0.6
    alloc_strategy: str = "fragmented"
    min_set_size: int = 16
    max_set_rounds: int = 256
    cluster_repeats: int = 2
    subsample_size: int = 20
    subsample_draws: int = 5
    consistency_threshold: float = 0.9
    max_function_bits: int = 7
    search_low_bit: int = 6
    brute_force_check_ns: float = 20_000.0
    timeout_seconds: float = 7200.0
    batch_probes: bool = True


@dataclass
class DramaResult:
    """Outcome of one DRAMA run.

    Attributes:
        belief: the mapping DRAMA claims (None when it timed out).
        seconds: simulated wall-clock cost.
        attempts: full pipeline attempts (clustering + search + self-check).
        timed_out: whether the run hit the timeout before self-consistency.
        sets_found: same-bank sets in the final (or last) attempt.
        measurements: total pair measurements performed.
    """

    belief: BeliefMapping | None
    seconds: float
    attempts: int
    timed_out: bool
    sets_found: int = 0
    measurements: int = 0


class DramaTool:
    """The DRAMA reverse-engineering pipeline."""

    def __init__(self, config: DramaConfig | None = None, seed: int | None = None):
        """``seed`` feeds DRAMA's internal randomness; *unlike DRAMDig there
        is no fixed default* — each run draws fresh pools and bases, which
        is precisely why its output is nondeterministic run to run."""
        self.config = config if config is not None else DramaConfig()
        self._rng = np.random.default_rng(seed)

    def run(self, machine: SimulatedMachine) -> DramaResult:
        """Reverse-engineer ``machine`` the DRAMA way."""
        config = self.config
        clock = machine.clock
        start_ns = clock.checkpoint()
        pages = machine.allocate(
            int(machine.total_bytes * config.alloc_fraction), config.alloc_strategy
        )
        machine.charge_analysis(pages.byte_count * 0.33)
        address_bits = machine.total_bytes.bit_length() - 1

        attempts = 0
        sets_found = 0
        while clock.since(start_ns) / 1e9 < config.timeout_seconds:
            attempts += 1
            try:
                threshold = self._calibrate(machine, pages)
            except CalibrationError:
                continue
            sets = self._cluster_sets(machine, pages, threshold)
            sets_found = len(sets)
            if len(sets) < 2:
                continue
            functions = self._search_functions(machine, sets, address_bits)
            if not functions:
                continue
            # Self-check: k functions should explain ~2^k observed sets.
            if not _power_of_two_match(len(sets), len(functions)):
                continue
            row_bits = self._detect_rows(machine, pages, threshold, address_bits)
            row_bits = _extend_rows_through_functions(row_bits, functions)
            column_bits = tuple(
                position
                for position in range(address_bits)
                if position not in row_bits
                and all(not bit(position) & f for f in functions)
            )
            belief = BeliefMapping(
                address_bits=address_bits,
                bank_functions=tuple(functions),
                row_bits=row_bits,
                column_bits=column_bits,
            )
            return DramaResult(
                belief=belief,
                seconds=clock.since(start_ns) / 1e9,
                attempts=attempts,
                timed_out=False,
                sets_found=sets_found,
                measurements=machine.stats.measurements,
            )
        return DramaResult(
            belief=None,
            seconds=clock.since(start_ns) / 1e9,
            attempts=attempts,
            timed_out=True,
            sets_found=sets_found,
            measurements=machine.stats.measurements,
        )

    def run_or_raise(self, machine: SimulatedMachine) -> DramaResult:
        """Like :meth:`run` but raising :class:`ToolTimeoutError` on timeout."""
        result = self.run(machine)
        if result.timed_out:
            raise ToolTimeoutError(
                f"DRAMA produced no mapping within "
                f"{self.config.timeout_seconds:.0f} simulated seconds",
                elapsed_seconds=result.seconds,
            )
        return result

    # ------------------------------------------------------------- clustering

    def _calibrate(self, machine: SimulatedMachine, pages):
        # Batched form of the original per-pair loop; measure_latency_pairs
        # guarantees bit-identical latencies, clock charges and stats.
        count = 256
        bases = pages.sample_addresses(count, self._rng)
        partners = pages.sample_addresses(count, self._rng)
        samples = machine.measure_latency_pairs(bases, partners, self.config.rounds)
        try:
            return find_threshold(samples)
        except ValueError as error:
            raise CalibrationError(str(error)) from error

    def _cluster_sets(self, machine: SimulatedMachine, pages, threshold) -> list[np.ndarray]:
        config = self.config
        pool = sorted_unique(pages.sample_addresses(config.pool_size, self._rng))
        remaining = pool
        sets: list[np.ndarray] = []
        for _ in range(config.max_set_rounds):
            if remaining.size < config.min_set_size:
                break
            base_index = int(self._rng.integers(remaining.size))
            base = int(remaining[base_index])
            others = np.delete(remaining, base_index)
            if config.batch_probes:
                # Campaign form: one decode per scan, bit-identical to the
                # stepwise loop below.
                latencies = machine.measure_latency_sweeps(
                    base, others, config.rounds, config.cluster_repeats
                )
            else:
                latencies = machine.measure_latency_batch(
                    base, others, config.rounds
                )
                for _ in range(config.cluster_repeats - 1):
                    latencies = np.minimum(
                        latencies,
                        machine.measure_latency_batch(base, others, config.rounds),
                    )
            members = others[threshold.classify(latencies)]
            if members.size >= config.min_set_size:
                sets.append(np.concatenate([[np.uint64(base)], members]))
                # ``members`` is a mask-filtered subset of the sorted
                # ``remaining``: knock out its binary-searched positions
                # rather than membership-testing the whole pool.
                keep = np.ones(remaining.shape, dtype=bool)
                keep[np.searchsorted(remaining, members)] = False
                keep[base_index] = False
                remaining = remaining[keep]
            if remaining.size < 0.15 * pool.size:
                break
        return sets

    # -------------------------------------------------------- function search

    def _search_functions(
        self, machine: SimulatedMachine, sets: list[np.ndarray], address_bits: int
    ) -> list[int]:
        config = self.config
        # Charge the brute-force enumeration DRAMA actually performs.
        enumerated = sum(
            math.comb(address_bits - config.search_low_bit, k)
            for k in range(1, config.max_function_bits + 1)
        )
        machine.charge_analysis(enumerated * config.brute_force_check_ns)

        positions = tuple(range(config.search_low_bit, address_bits))
        width = len(positions)
        candidates: set[int] | None = None
        for members in sets:
            set_candidates: set[int] = set()
            for _ in range(config.subsample_draws):
                size = min(config.subsample_size, members.size)
                sample = self._rng.choice(members, size=size, replace=False)
                diffs = sample.astype(np.uint64) ^ np.uint64(sample[0])
                projected = [
                    _project(int(diff), positions) for diff in diffs if int(diff)
                ]
                null = gf2.nullspace_basis(gf2.row_echelon(projected), width)
                for element in gf2.span(null):
                    if popcount(element) <= config.max_function_bits:
                        set_candidates.add(element)
            candidates = (
                set_candidates if candidates is None else candidates & set_candidates
            )
            if not candidates:
                return []
        assert candidates is not None

        verified = [
            deposit_bits(candidate, positions)
            for candidate in sorted(candidates)
            if self._consistent_on_sets(candidate, positions, sets)
        ]
        verified.sort(key=lambda mask: (popcount(mask), mask))
        return gf2.reduce_to_basis(verified)

    def _consistent_on_sets(
        self, compact_mask: int, positions: tuple[int, ...], sets: list[np.ndarray]
    ) -> bool:
        mask = np.uint64(deposit_bits(compact_mask, positions))
        for members in sets:
            parities = np.bitwise_count(members & mask) & np.uint64(1)
            agreement = max(parities.mean(), 1.0 - parities.mean())
            if agreement < self.config.consistency_threshold:
                return False
        return True

    # ------------------------------------------------------------------- rows

    def _detect_rows(
        self, machine: SimulatedMachine, pages, threshold, address_bits: int
    ) -> tuple[int, ...]:
        """Single-shot single-bit scan — no votes, hence phantom row bits
        under noise."""
        # Pair discovery (tool RNG) and measurement (machine RNG) draw from
        # independent generators, so gathering every per-bit pair first and
        # measuring them in one measure_latency_pairs call preserves both
        # streams exactly — same probes, same latencies as the scalar loop.
        positions = []
        bases = []
        partners = []
        for position in range(address_bits):
            pair = self._find_pair(pages, bit(position))
            if pair is None:
                continue
            positions.append(position)
            bases.append(pair[0])
            partners.append(pair[1])
        if not positions:
            return ()
        latencies = machine.measure_latency_pairs(
            np.array(bases, dtype=np.uint64),
            np.array(partners, dtype=np.uint64),
            self.config.rounds,
        )
        slow = threshold.classify(latencies)
        return tuple(
            position for position, is_slow in zip(positions, slow) if is_slow
        )

    def _find_pair(self, pages, mask: int) -> tuple[int, int] | None:
        samples = pages.sample_addresses(64, self._rng)
        partners = samples ^ np.uint64(mask)
        valid = (partners < pages.total_bytes) & pages.has_pages(partners)
        hits = np.flatnonzero(valid)
        if hits.size == 0:
            return None
        base = int(samples[hits[0]])
        return base, base ^ mask


def _project(mask: int, positions: tuple[int, ...]) -> int:
    compact = 0
    for index, position in enumerate(positions):
        compact |= ((mask >> position) & 1) << index
    return compact


def _power_of_two_match(observed_sets: int, function_count: int, tolerance: float = 0.3) -> bool:
    """DRAMA's self-check: 2^k functions should explain the set count."""
    expected = 1 << function_count
    return abs(observed_sets - expected) <= tolerance * expected


def _extend_rows_through_functions(
    rows: tuple[int, ...], functions: list[int]
) -> tuple[int, ...]:
    """Grow the row range downward through two-bit functions whose high bit
    adjoins it (how DRAMA-based hammer tools complete the row index)."""
    row_set = set(rows)
    if not row_set:
        return rows
    grown = True
    while grown:
        grown = False
        lowest = min(row_set)
        for function in functions:
            positions = bits_of_mask(function)
            if len(positions) == 2 and positions[1] == lowest - 1:
                row_set.add(positions[1])
                grown = True
    return tuple(sorted(row_set))
