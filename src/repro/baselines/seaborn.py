"""Seaborn & Dullien baseline: blind rowhammer probing.

The 2015 approach that predates timing-channel tools: pick a candidate
stride, hammer address pairs ``(x, x + stride)``, and look for bit flips.
A stride "works" when it tends to land the pair in the same bank but
different rows — only then is the row buffer bypassed and only then do the
aggressors disturb their neighbour rows. Seaborn collected the working
strides/offsets on his Sandy Bridge machines and *manually* derived the
published mapping from them; the derivation step is human analysis, which
is why the paper's Table I scores the approach as not generic (the
analysis was redone per machine) and not efficient (each stride probe is a
multi-second hammer run, a sweep is hours).

This implementation automates exactly what the tool automated — the blind
stride sweep and flip counting — and leaves the mapping derivation out,
as the original did. It demonstrates the two failure axes the paper
assigns to the approach:

* **solid DIMMs**: no flips ever, nothing to analyse (machine No.5);
* **blindness is slow**: the sweep burns simulated hours even when it
  works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.errors import ToolStuckError
from repro.dram.presets import MachinePreset
from repro.machine.machine import SimulatedMachine

__all__ = ["SeabornConfig", "SeabornResult", "SeabornTool"]

# Expected flips per hammered SBDR pair, per unit weak-cell density:
# both aggressors stay open alternately for a whole refresh window, so
# their four neighbour rows each receive single-sided disturbance.
_FLIPS_PER_PAIR_FACTOR = 0.3


@dataclass(frozen=True)
class SeabornConfig:
    """Blind-sweep parameters.

    Attributes:
        stride_exponents: candidate power-of-two strides to probe.
        pairs_per_stride: hammer attempts per candidate stride.
        seconds_per_pair: simulated cost of one attempt (hammer one refresh
            window, then scan the buffer for flips).
        min_flips: flips needed to call a stride "working".
        buffer_fraction: attacker buffer size.
    """

    stride_exponents: tuple[int, ...] = tuple(range(13, 27))
    pairs_per_stride: int = 128
    seconds_per_pair: float = 2.5
    min_flips: int = 2
    buffer_fraction: float = 0.4


@dataclass
class SeabornResult:
    """Outcome of the blind sweep.

    Attributes:
        working_strides: strides that induced at least ``min_flips``.
        flips_observed: total flips across the sweep.
        sbdr_rates: per-stride fraction of probed pairs that were truly
            same-bank-different-row (the quantity a human analyst would
            reverse the mapping from).
        seconds: simulated time burned (hours even on success).
    """

    working_strides: list[int] = field(default_factory=list)
    flips_observed: int = 0
    sbdr_rates: dict[int, float] = field(default_factory=dict)
    seconds: float = 0.0


class SeabornTool:
    """The blind rowhammer stride sweep."""

    def __init__(self, config: SeabornConfig | None = None, seed: int = 5):
        self.config = config if config is not None else SeabornConfig()
        self._rng = np.random.default_rng(seed)

    def run(self, machine: SimulatedMachine, preset: MachinePreset) -> SeabornResult:
        """Sweep strides on ``machine``; the preset supplies the DIMMs'
        weak-cell density (the tool itself knows nothing about the machine
        and observes only flips).

        Raises:
            ToolStuckError: when no stride flips anything — solid DIMMs or
                a budget-exhausted sweep; there is nothing to analyse.
        """
        config = self.config
        clock = machine.clock
        start_ns = clock.checkpoint()
        truth = machine.ground_truth
        pages = machine.allocate(
            int(machine.total_bytes * config.buffer_fraction), "hugepages"
        )

        result = SeabornResult()
        for exponent in config.stride_exponents:
            stride = 1 << exponent
            if stride * 2 >= machine.total_bytes:
                continue
            flips, sbdr_rate = self._try_stride(
                machine, pages, truth, preset.hammer_vulnerability, stride
            )
            machine.charge_analysis(
                config.pairs_per_stride * config.seconds_per_pair * 1e9
            )
            result.flips_observed += flips
            result.sbdr_rates[stride] = sbdr_rate
            if flips >= config.min_flips:
                result.working_strides.append(stride)
        result.seconds = clock.since(start_ns) / 1e9
        if not result.working_strides:
            raise ToolStuckError(
                f"blind sweep found no flipping stride after "
                f"{result.seconds / 3600:.1f} simulated hours",
                partial_result=result,
            )
        return result

    # -------------------------------------------------------------- internals

    def _try_stride(
        self, machine, pages, truth, vulnerability: float, stride: int
    ) -> tuple[int, float]:
        """Hammer pairs at this stride; flips arise only from pairs the
        ground truth says are same-bank-different-row."""
        config = self.config
        flips = 0
        sbdr = 0
        attempted = 0
        bases = pages.sample_addresses(config.pairs_per_stride, self._rng)
        for index in range(config.pairs_per_stride):
            base = int(bases[index])
            partner = base + stride
            if partner >= machine.total_bytes or not pages.has_page(partner):
                continue
            attempted += 1
            if not truth.is_row_conflict(base, partner):
                continue  # row buffer not bypassed: harmless accesses
            sbdr += 1
            expectation = vulnerability * _FLIPS_PER_PAIR_FACTOR
            flips += int(self._rng.poisson(expectation))
        rate = sbdr / attempted if attempted else 0.0
        return flips, rate
