"""Baseline reverse-engineering tools: DRAMA, Xiao et al., Seaborn."""

from repro.baselines.drama import DramaConfig, DramaResult, DramaTool
from repro.baselines.seaborn import SeabornConfig, SeabornResult, SeabornTool
from repro.baselines.xiao import CHANNEL_TEMPLATES, XiaoConfig, XiaoResult, XiaoTool

__all__ = [
    "SeabornConfig",
    "SeabornResult",
    "SeabornTool",
    "DramaConfig",
    "DramaResult",
    "DramaTool",
    "CHANNEL_TEMPLATES",
    "XiaoConfig",
    "XiaoResult",
    "XiaoTool",
]
