"""Persistent in-process phys↔DRAM translation service.

The blacksmith production pattern, made a service: once a machine's
mapping is recovered (or loaded from disk), it is compiled into the
GF(2) matrix pair (:class:`~repro.dram.compiled.CompiledMapping`) exactly
once, cached under a content fingerprint, and every subsequent query —
single address, million-address batch, "give me N same-bank addresses",
"give me aggressor sets" — is answered from the compiled form.

Keying reuses the checkpoint journal's content-fingerprint scheme
(:func:`repro.parallel.grid.fingerprint_payload`): a mapping is keyed by
its serialised content, a machine by its :class:`~repro.machine.sysinfo.SystemInfo`
facts. Two identical machines in a simulated fleet therefore share one
cache entry, which is what makes the fleet-prior work cheap: the first
machine pays the compile, lookalikes hit.

Accounting is double-booked deliberately: the service keeps its own
monotonic counters (``stats()``, always available, exact per instance)
*and* mirrors service behaviour into :mod:`repro.obs` metrics so traced
runs fold it into the same snapshot the rest of the pipeline uses. The
obs mirror is restricted to counters that are deterministic functions of
the workload regardless of process layout: the query stream
(``translation.phys_to_dram`` / ``translation.dram_to_phys``), explicit
``register``/``compiled_for`` cache events, and pipeline registrations
(``translation.registrations`` via :meth:`TranslationService.publish`).
A *pipeline* registration's hit-vs-miss split depends on which worker's
process-local cache happened to serve it — jobs=1 and jobs=N would
disagree — so :meth:`~TranslationService.publish` books hit/miss in
``stats()`` only, preserving the grid trace-determinism contract.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING

import numpy as np

from repro.dram.compiled import CompiledMapping
from repro.dram.mapping import AddressMapping, DramAddress
from repro.obs import tracing as obs
from repro.parallel.grid import fingerprint_payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.sysinfo import SystemInfo

__all__ = [
    "TranslationService",
    "default_service",
    "mapping_fingerprint",
    "reset_default_service",
    "system_fingerprint",
]


def mapping_fingerprint(mapping: AddressMapping) -> str:
    """Content fingerprint of a mapping (the journal scheme).

    Serialisation-stable: two mapping objects with equal geometry,
    functions and bit sets fingerprint identically regardless of how they
    were constructed.
    """
    from repro.dram.serialization import mapping_to_dict

    return fingerprint_payload("repro.service:mapping", mapping_to_dict(mapping))


def system_fingerprint(info: "SystemInfo") -> str:
    """Content fingerprint of a machine's ``SystemInfo`` facts."""
    return fingerprint_payload("repro.service:system", asdict(info))


class TranslationService:
    """Caches compiled mappings and answers translation queries.

    One instance is meant to live as long as the process (see
    :func:`default_service`); workers in a grid each hold their own,
    and their :mod:`repro.obs` metric snapshots merge deterministically.
    """

    def __init__(self) -> None:
        self._cache: dict[str, CompiledMapping] = {}
        self.hits = 0
        self.misses = 0
        self.translations = 0
        self.encodes = 0

    # ------------------------------------------------------------ cache plane

    def __len__(self) -> int:
        return len(self._cache)

    def keys(self) -> tuple[str, ...]:
        """Fingerprints currently cached, insertion-ordered."""
        return tuple(self._cache)

    def register(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> str:
        """Compile ``mapping`` (cache-aware) and return its cache key.

        Keyed by the machine's ``SystemInfo`` fingerprint when given —
        the fleet-sharing key — and by the mapping's own content
        fingerprint otherwise. Registering an already-cached key is a
        hit: the existing compiled form is kept and no recompile happens.
        """
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        self._get_or_compile(key, mapping)
        return key

    def publish(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> str:
        """Pipeline-facing :meth:`register`: identical caching and
        ``stats()`` accounting, but the only counter mirrored into
        :mod:`repro.obs` is ``translation.registrations``.

        A registration's hit-vs-miss split is a property of the serving
        process's cache history, not of the workload — serial and
        multi-worker grid runs would disagree — so traced pipeline runs
        record just the layout-deterministic fact that a mapping was
        published.
        """
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        self._get_or_compile(key, mapping, traced=False)
        obs.inc("translation.registrations")
        return key

    def compiled_for(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> CompiledMapping:
        """The compiled form of ``mapping``, from cache when possible."""
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        return self._get_or_compile(key, mapping)

    def compiled(self, key: str) -> CompiledMapping:
        """The cached compiled mapping under ``key``.

        Raises:
            KeyError: when nothing is registered under ``key``.
        """
        try:
            return self._cache[key]
        except KeyError:
            raise KeyError(
                f"no compiled mapping registered under {key[:12]}…; "
                "call register() first"
            ) from None

    def _get_or_compile(
        self, key: str, mapping: AddressMapping, traced: bool = True
    ) -> CompiledMapping:
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            if traced:
                obs.inc("translation.cache_hits")
            return cached
        self.misses += 1
        if traced:
            obs.inc("translation.cache_misses")
        compiled = mapping.compiled
        self._cache[key] = compiled
        if traced:
            obs.inc("translation.compiles")
        return compiled

    # ------------------------------------------------------------ query plane

    def translate(self, key: str, phys_addrs: np.ndarray):
        """Batched phys → (bank, row, column) under the cached mapping."""
        compiled = self.compiled(key)
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        self.translations += int(addrs.size)
        obs.inc("translation.phys_to_dram", int(addrs.size))
        return compiled.translate(addrs)

    def translate_one(self, key: str, phys_addr: int) -> DramAddress:
        """Single phys → DRAM translation."""
        compiled = self.compiled(key)
        self.translations += 1
        obs.inc("translation.phys_to_dram")
        return compiled.translate_one(phys_addr)

    def encode(
        self,
        key: str,
        banks: np.ndarray,
        rows: np.ndarray,
        columns: np.ndarray,
    ) -> np.ndarray:
        """Batched (bank, row, column) → phys under the cached mapping."""
        compiled = self.compiled(key)
        banks = np.asarray(banks, dtype=np.uint64)
        self.encodes += int(banks.size)
        obs.inc("translation.dram_to_phys", int(banks.size))
        return compiled.encode(banks, rows, columns)

    def encode_one(self, key: str, address: DramAddress) -> int:
        """Single DRAM → phys translation."""
        compiled = self.compiled(key)
        self.encodes += 1
        obs.inc("translation.dram_to_phys")
        return compiled.encode_one(address)

    def same_bank_addresses(
        self, key: str, bank: int, count: int, column: int = 0
    ) -> np.ndarray:
        """``count`` same-bank physical addresses (see
        :meth:`CompiledMapping.same_bank_addresses`)."""
        addresses = self.compiled(key).same_bank_addresses(bank, count, column)
        self.encodes += int(addresses.size)
        obs.inc("translation.dram_to_phys", int(addresses.size))
        return addresses

    def adjacent_row_sets(
        self, key: str, bank: int, count: int, column: int = 0, stride: int = 3
    ):
        """``count`` double-sided aggressor sets (see
        :meth:`CompiledMapping.adjacent_row_sets`)."""
        sets = self.compiled(key).adjacent_row_sets(bank, count, column, stride)
        emitted = int(sum(part.size for part in sets))
        self.encodes += emitted
        obs.inc("translation.dram_to_phys", emitted)
        return sets

    # ------------------------------------------------------------- accounting

    def stats(self) -> dict:
        """Deterministic counter snapshot (JSON-ready)."""
        return {
            "cached_mappings": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "translations": self.translations,
            "encodes": self.encodes,
        }


_DEFAULT: TranslationService | None = None


def default_service() -> TranslationService:
    """The process-wide long-lived service instance (created lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TranslationService()
    return _DEFAULT


def reset_default_service() -> None:
    """Drop the process-wide instance (tests; fresh-state subprocesses)."""
    global _DEFAULT
    _DEFAULT = None
