"""Persistent in-process phys↔DRAM translation service.

The blacksmith production pattern, made a service: once a machine's
mapping is recovered (or loaded from disk), it is compiled into the
GF(2) matrix pair (:class:`~repro.dram.compiled.CompiledMapping`) exactly
once, cached under a content fingerprint, and every subsequent query —
single address, million-address batch, "give me N same-bank addresses",
"give me aggressor sets" — is answered from the compiled form.

Keying reuses the checkpoint journal's content-fingerprint scheme
(:func:`repro.parallel.grid.fingerprint_payload`): a mapping is keyed by
its serialised content, a machine by its :class:`~repro.machine.sysinfo.SystemInfo`
facts. Two identical machines in a simulated fleet therefore share one
cache entry, which is what makes the fleet-prior work cheap: the first
machine pays the compile, lookalikes hit.

Accounting is double-booked deliberately: the service keeps its own
monotonic counters (``stats()``, always available, exact per instance)
*and* mirrors service behaviour into :mod:`repro.obs` metrics so traced
runs fold it into the same snapshot the rest of the pipeline uses. The
obs mirror is restricted to counters that are deterministic functions of
the workload regardless of process layout: the query stream
(``translation.phys_to_dram`` / ``translation.dram_to_phys``), explicit
``register``/``compiled_for`` cache events, and pipeline registrations
(``translation.registrations`` via :meth:`TranslationService.publish`).
A *pipeline* registration's hit-vs-miss split depends on which worker's
process-local cache happened to serve it — jobs=1 and jobs=N would
disagree — so :meth:`~TranslationService.publish` books hit/miss in
``stats()`` only, preserving the grid trace-determinism contract.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.bits import bit
from repro.dram.compiled import CompiledMapping
from repro.dram.errors import MappingError
from repro.dram.mapping import AddressMapping, DramAddress
from repro.logutil import get_logger
from repro.obs import tracing as obs
from repro.parallel.grid import fingerprint_payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.sysinfo import SystemInfo

_LOG = get_logger("repro.service.translation")

__all__ = [
    "TranslationService",
    "default_service",
    "mapping_fingerprint",
    "reset_default_service",
    "system_fingerprint",
]


def mapping_fingerprint(mapping: AddressMapping) -> str:
    """Content fingerprint of a mapping (the journal scheme).

    Serialisation-stable: two mapping objects with equal geometry,
    functions and bit sets fingerprint identically regardless of how they
    were constructed.
    """
    from repro.dram.serialization import mapping_to_dict

    return fingerprint_payload("repro.service:mapping", mapping_to_dict(mapping))


def system_fingerprint(info: "SystemInfo") -> str:
    """Content fingerprint of a machine's ``SystemInfo`` facts."""
    return fingerprint_payload("repro.service:system", asdict(info))


class TranslationService:
    """Caches compiled mappings and answers translation queries.

    One instance is meant to live as long as the process (see
    :func:`default_service`); workers in a grid each hold their own,
    and their :mod:`repro.obs` metric snapshots merge deterministically.
    """

    def __init__(self) -> None:
        self._cache: dict[str, CompiledMapping] = {}
        self.hits = 0
        self.misses = 0
        self.translations = 0
        self.encodes = 0
        self.persisted_recoveries = 0

    # ------------------------------------------------------------ cache plane

    def __len__(self) -> int:
        return len(self._cache)

    def keys(self) -> tuple[str, ...]:
        """Fingerprints currently cached, insertion-ordered."""
        return tuple(self._cache)

    def register(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> str:
        """Compile ``mapping`` (cache-aware) and return its cache key.

        Keyed by the machine's ``SystemInfo`` fingerprint when given —
        the fleet-sharing key — and by the mapping's own content
        fingerprint otherwise. Registering an already-cached key is a
        hit: the existing compiled form is kept and no recompile happens.
        """
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        self._get_or_compile(key, mapping)
        return key

    def publish(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> str:
        """Pipeline-facing :meth:`register`: identical caching and
        ``stats()`` accounting, but the only counter mirrored into
        :mod:`repro.obs` is ``translation.registrations``.

        A registration's hit-vs-miss split is a property of the serving
        process's cache history, not of the workload — serial and
        multi-worker grid runs would disagree — so traced pipeline runs
        record just the layout-deterministic fact that a mapping was
        published.
        """
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        self._get_or_compile(key, mapping, traced=False)
        obs.inc("translation.registrations")
        return key

    def register_serialized(
        self,
        mapping: AddressMapping,
        compiled_data: dict | None,
        system: "SystemInfo | None" = None,
    ) -> str:
        """Register ``mapping`` with a pre-compiled ``dramdig-compiled-v1``
        payload, healing a corrupt payload by recompiling.

        The payload is an *untrusted input* (a knowledge-store record, a
        file another machine produced): it is revalidated by
        :func:`repro.dram.serialization.compiled_from_dict` and then
        cross-checked against ``mapping``'s own forward matrix. Any
        failure — bad JSON structure, a non-inverting ``addr_mtx``, a
        matrix that belongs to some *other* mapping — is logged, counted
        in ``stats()['persisted_recoveries']``, and recovered by
        compiling from the (already validated) mapping. The returned key
        always ends up holding a correct compiled form.

        Like :meth:`publish`, no hit/miss obs metrics are mirrored:
        which process-local cache serves the call is a layout accident.
        """
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return key
        self.misses += 1
        self._cache[key] = self._adopt_compiled(
            mapping, compiled_data, detail="serialized payload"
        )
        return key

    def register_persisted(
        self,
        mapping: AddressMapping,
        path: "str | Path",
        system: "SystemInfo | None" = None,
    ) -> str:
        """Register ``mapping`` from a persisted ``dramdig-compiled-v1``
        file, recompiling when the file is unreadable or fails
        revalidation (see :meth:`register_serialized`)."""
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return key
        self.misses += 1
        try:
            compiled_data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as error:
            self.persisted_recoveries += 1
            _LOG.warning(
                "persisted compiled mapping %s unreadable (%s); "
                "recompiling from mapping",
                path,
                error,
            )
            self._cache[key] = mapping.compiled
            return key
        self._cache[key] = self._adopt_compiled(
            mapping, compiled_data, detail=str(path)
        )
        return key

    def _adopt_compiled(
        self,
        mapping: AddressMapping,
        compiled_data: dict | None,
        detail: str,
    ) -> CompiledMapping:
        """Revalidate an untrusted compiled payload against ``mapping``;
        on any defect, log + count the recovery and recompile."""
        from repro.dram.serialization import compiled_from_dict

        try:
            if not isinstance(compiled_data, dict):
                raise MappingError("compiled payload is not an object")
            compiled = compiled_from_dict(compiled_data)
            self._check_compiled_matches(mapping, compiled)
            return compiled
        except Exception as error:
            self.persisted_recoveries += 1
            _LOG.warning(
                "compiled payload rejected (%s): %s; recompiling from mapping",
                detail,
                error,
            )
            return mapping.compiled

    @staticmethod
    def _check_compiled_matches(
        mapping: AddressMapping, compiled: CompiledMapping
    ) -> None:
        """A structurally valid compiled form may still belong to a
        *different* mapping; demand the forward matrix is exactly the one
        ``mapping`` would compile to (columns, rows, then bank functions
        — the :meth:`CompiledMapping.from_mapping` row order)."""
        expected = (
            tuple(bit(position) for position in mapping.column_bits)
            + tuple(bit(position) for position in mapping.row_bits)
            + tuple(mapping.bank_functions)
        )
        if (
            compiled.address_bits != mapping.geometry.address_bits
            or compiled.dram_mtx != expected
            or compiled.addr_mtx is None
        ):
            raise MappingError(
                "compiled payload does not correspond to the mapping"
            )

    def compiled_for(
        self,
        mapping: AddressMapping,
        system: "SystemInfo | None" = None,
    ) -> CompiledMapping:
        """The compiled form of ``mapping``, from cache when possible."""
        key = (
            system_fingerprint(system)
            if system is not None
            else mapping_fingerprint(mapping)
        )
        return self._get_or_compile(key, mapping)

    def compiled(self, key: str) -> CompiledMapping:
        """The cached compiled mapping under ``key``.

        Raises:
            KeyError: when nothing is registered under ``key``.
        """
        try:
            return self._cache[key]
        except KeyError:
            raise KeyError(
                f"no compiled mapping registered under {key[:12]}…; "
                "call register() first"
            ) from None

    def _get_or_compile(
        self, key: str, mapping: AddressMapping, traced: bool = True
    ) -> CompiledMapping:
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            if traced:
                obs.inc("translation.cache_hits")
            return cached
        self.misses += 1
        if traced:
            obs.inc("translation.cache_misses")
        compiled = mapping.compiled
        self._cache[key] = compiled
        if traced:
            obs.inc("translation.compiles")
        return compiled

    # ------------------------------------------------------------ query plane

    def translate(self, key: str, phys_addrs: np.ndarray):
        """Batched phys → (bank, row, column) under the cached mapping."""
        compiled = self.compiled(key)
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        self.translations += int(addrs.size)
        obs.inc("translation.phys_to_dram", int(addrs.size))
        return compiled.translate(addrs)

    def translate_one(self, key: str, phys_addr: int) -> DramAddress:
        """Single phys → DRAM translation."""
        compiled = self.compiled(key)
        self.translations += 1
        obs.inc("translation.phys_to_dram")
        return compiled.translate_one(phys_addr)

    def encode(
        self,
        key: str,
        banks: np.ndarray,
        rows: np.ndarray,
        columns: np.ndarray,
    ) -> np.ndarray:
        """Batched (bank, row, column) → phys under the cached mapping."""
        compiled = self.compiled(key)
        banks = np.asarray(banks, dtype=np.uint64)
        self.encodes += int(banks.size)
        obs.inc("translation.dram_to_phys", int(banks.size))
        return compiled.encode(banks, rows, columns)

    def encode_one(self, key: str, address: DramAddress) -> int:
        """Single DRAM → phys translation."""
        compiled = self.compiled(key)
        self.encodes += 1
        obs.inc("translation.dram_to_phys")
        return compiled.encode_one(address)

    def same_bank_addresses(
        self, key: str, bank: int, count: int, column: int = 0
    ) -> np.ndarray:
        """``count`` same-bank physical addresses (see
        :meth:`CompiledMapping.same_bank_addresses`)."""
        addresses = self.compiled(key).same_bank_addresses(bank, count, column)
        self.encodes += int(addresses.size)
        obs.inc("translation.dram_to_phys", int(addresses.size))
        return addresses

    def adjacent_row_sets(
        self, key: str, bank: int, count: int, column: int = 0, stride: int = 3
    ):
        """``count`` double-sided aggressor sets (see
        :meth:`CompiledMapping.adjacent_row_sets`)."""
        sets = self.compiled(key).adjacent_row_sets(bank, count, column, stride)
        emitted = int(sum(part.size for part in sets))
        self.encodes += emitted
        obs.inc("translation.dram_to_phys", emitted)
        return sets

    # ------------------------------------------------------------- accounting

    def stats(self) -> dict:
        """Deterministic counter snapshot (JSON-ready)."""
        return {
            "cached_mappings": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "translations": self.translations,
            "encodes": self.encodes,
            "persisted_recoveries": self.persisted_recoveries,
        }


_DEFAULT: TranslationService | None = None


def default_service() -> TranslationService:
    """The process-wide long-lived service instance (created lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TranslationService()
    return _DEFAULT


def reset_default_service() -> None:
    """Drop the process-wide instance (tests; fresh-state subprocesses)."""
    global _DEFAULT
    _DEFAULT = None
