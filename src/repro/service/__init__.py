"""Long-lived in-process services built on the recovered mappings.

The reverse-engineering pipeline produces a mapping once; production
consumers — fleet orchestrators, rowhammer campaign fuzzers, verification
sweeps — then query it millions of times. This package holds the
persistent service layer those consumers call into:

* :mod:`repro.service.translation` — a phys↔DRAM translation service
  caching compiled GF(2) mappings keyed by machine/``SystemInfo``
  fingerprint, with batch lookup kernels and hit/miss accounting through
  :mod:`repro.obs`.
"""

from repro.service.translation import (
    TranslationService,
    default_service,
    mapping_fingerprint,
    reset_default_service,
    system_fingerprint,
)

__all__ = [
    "TranslationService",
    "default_service",
    "mapping_fingerprint",
    "reset_default_service",
    "system_fingerprint",
]
