"""Grid-worker fault tasks: cells that kill, hang, or fail their worker.

The timing pipeline's fault layer (:mod:`repro.faults.profiles`)
injects noise *inside* a simulated machine; this module injects faults
one level up, into the **evaluation grid itself**, so the supervised
runner (:mod:`repro.parallel.supervisor`) can be tested against real
process death rather than polite exceptions:

* :func:`poison_cell` / :func:`poison_once_cell` — terminate the worker
  process with ``os._exit`` (no exception, no cleanup: the closest a
  pure-python cell gets to a segfault or an OOM kill). The executor
  sees a dead worker and raises ``BrokenProcessPool`` — exactly the
  failure the supervisor must absorb.
* :func:`hang_cell` — sleep past any reasonable deadline, simulating a
  wedged measurement loop; only a per-cell timeout recovers the slot.
* :func:`flaky_cell` — raise for the first N attempts then succeed,
  exercising per-cell retry with backoff.
* :func:`counting_cell` — a benign cell that records each invocation,
  for asserting that resumed runs *skip* journalled cells.

Cross-process attempt counting uses one file per ``(scratch, key)``
pair — a byte is appended per invocation — because the attempts of a
cell that kills its process cannot be counted in that process's memory.

These are grid *cells* (addressable as ``"repro.faults.gridfaults:<fn>"``
payloads), deliberately inside the ``repro`` package so `GridCell`'s
task allow-list admits them.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = [
    "GridFaultError",
    "counting_cell",
    "echo_cell",
    "flaky_cell",
    "hang_cell",
    "invocations",
    "poison_cell",
    "poison_once_cell",
]

# Exit code mirroring a SIGSEGV-terminated process (128 + 11), purely
# cosmetic: any _exit kills the worker the same way.
_SEGFAULT_EXIT_CODE = 139


class GridFaultError(RuntimeError):
    """The error :func:`flaky_cell` raises on its scripted failures."""


def _counter_path(scratch: str, key: str) -> Path:
    return Path(scratch) / f"gridfault-{key}.count"


def _bump(scratch: str, key: str) -> int:
    """Append one byte to the counter file; return the new count."""
    path = _counter_path(scratch, key)
    with open(path, "ab") as handle:
        handle.write(b".")
        handle.flush()
        os.fsync(handle.fileno())
    return path.stat().st_size


def invocations(scratch: str, key: str) -> int:
    """How many times a counted cell has executed (0 if never)."""
    path = _counter_path(scratch, key)
    return path.stat().st_size if path.exists() else 0


def echo_cell(value=None):
    """The benign cell: returns its payload value."""
    return value


def counting_cell(scratch: str, key: str, value=None):
    """Benign cell that durably records each invocation, then echoes."""
    _bump(scratch, key)
    return value


def poison_cell(exit_code: int = _SEGFAULT_EXIT_CODE):
    """Kill the worker process outright (simulated segfault / OOM kill).

    ``os._exit`` skips exception propagation and interpreter cleanup, so
    the parent's executor observes a silently dead worker. Never call on
    the serial path — it would kill the evaluating process itself.
    """
    os._exit(exit_code)


def poison_once_cell(scratch: str, key: str, value=None,
                     exit_code: int = _SEGFAULT_EXIT_CODE):
    """Kill the worker on the first attempt, succeed on any later one.

    Models the transient worker death (OOM on a briefly-loaded host)
    that per-cell retry exists for.
    """
    if _bump(scratch, key) == 1:
        os._exit(exit_code)
    return value


def hang_cell(seconds: float = 3600.0, value=None):
    """Sleep well past any deadline (wedged measurement loop)."""
    time.sleep(seconds)
    return value


def flaky_cell(scratch: str, key: str, fail_times: int = 1, value=None):
    """Raise :class:`GridFaultError` for the first ``fail_times`` attempts."""
    attempt = _bump(scratch, key)
    if attempt <= fail_times:
        raise GridFaultError(
            f"scripted failure {attempt}/{fail_times} for grid cell {key!r}"
        )
    return value
