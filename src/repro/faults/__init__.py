"""Fault injection and adaptive recovery for the timing pipeline.

Real reverse-engineering runs fail in stereotyped ways: refresh storms
pollute calibration, thermal drift invalidates a once-good threshold,
transient mis-reads inflate Algorithm 2's piles, and memory pressure
shrinks the address pool. This package models those failure modes as
composable :class:`FaultProfile` layers a :class:`SimulatedMachine`
draws from (:class:`FaultInjector`), and supplies the recovery policy
(:class:`RecoveryPolicy`) plus the structured degradation record
(:class:`DegradationEvent`) the pipeline reports when it survives them.

Everything here is seeded-RNG deterministic: a machine with the same
preset, seed and profile injects the identical fault sequence on every
run, so the paper's determinism claims hold bit-for-bit with faults on.

One level above the machine, :mod:`repro.faults.gridfaults` supplies
fault *cells* for the evaluation grid itself — tasks that kill their
worker process, hang past a deadline, or fail a scripted number of
times — used to test the supervised grid runner against real process
death.
"""

from repro.faults.gridfaults import GridFaultError
from repro.faults.injector import FaultInjector
from repro.faults.profiles import FaultProfile, get_profile, profile_names
from repro.faults.recovery import DegradationEvent, RecoveryPolicy

__all__ = [
    "FaultInjector",
    "FaultProfile",
    "get_profile",
    "profile_names",
    "DegradationEvent",
    "GridFaultError",
    "RecoveryPolicy",
]
