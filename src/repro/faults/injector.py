"""The fault injector: applies a noise profile to a machine's measurements.

The injector owns its *own* seeded RNG stream, separate from both the
machine's noise RNG and the tool's RNG, so attaching a profile never
perturbs either stream: a ``quiet`` profile is bit-transparent, and two
runs with the same (preset, seed, profile) inject the identical fault
sequence. Mis-reads consume no RNG at all — they are a pure hash of
(pair, stickiness-window, seed), which is what makes them *sticky*:
re-measuring the same pair inside the same window repeats the mis-read,
defeating min-of-repeats the way a real prefetcher artefact does.

Timestamps come from the machine's simulated clock, so drift and storm
windows advance with the simulated workload, not the host's wall clock.
"""

from __future__ import annotations

import numpy as np

from repro.faults.profiles import FaultProfile
from repro.obs import tracing as obs

__all__ = ["FaultInjector"]

# Decorrelates the injector stream from the machine seed it derives from.
_STREAM_SALT = 0xFA017
# Page granularity of allocator-pressure grants (mirrors the allocator).
_PAGE_SIZE = 4096

_U64 = np.uint64


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized over uint64 arrays."""
    x = np.asarray(values, dtype=np.uint64)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _hash_uniform(keys: np.ndarray) -> np.ndarray:
    """Map uint64 hash keys to uniforms in [0, 1)."""
    return (_mix64(keys) >> _U64(11)).astype(np.float64) * (1.0 / (1 << 53))


class FaultInjector:
    """Interprets a :class:`FaultProfile` against a simulated machine.

    Args:
        profile: the fault intensities to inject.
        seed: stream seed; machines usually pass their own seed so fault
            realisations decorrelate across machine seeds while staying
            deterministic for each.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Restore the injector to its initial (constructed) state."""
        self._rng = np.random.default_rng([self.seed, _STREAM_SALT])
        self._burst_remaining = 0
        self._misread_seed = _mix64(np.asarray([self.seed], dtype=np.uint64))[0]

    # ------------------------------------------------------------- allocation

    def on_allocate(self, request_bytes: int, allocation_index: int) -> int:
        """Bytes actually granted for the ``allocation_index``-th request."""
        schedule = self.profile.alloc_grant_fractions
        if allocation_index >= len(schedule):
            return request_bytes
        granted = int(request_bytes * schedule[allocation_index])
        return max(_PAGE_SIZE, granted)

    # ------------------------------------------------------------ measurement

    def perturb(
        self,
        latencies: np.ndarray,
        conflict_flags: np.ndarray,
        bases: np.ndarray | int,
        partners: np.ndarray | int,
        now_ns: float,
    ) -> np.ndarray:
        """Apply every enabled fault family to a batch of latencies.

        ``bases``/``partners`` identify the measured pairs (either may be
        scalar and is broadcast); ``now_ns`` is the machine's simulated
        clock at measurement time. Faults only ever *add* latency, like
        their hardware counterparts, so the fast-mode floor stays intact.
        """
        profile = self.profile
        latencies = np.array(latencies, dtype=np.float64, copy=True)
        count = latencies.size
        if count == 0 or profile.is_quiet:
            return latencies
        now_s = now_ns / 1e9
        # One global load + is-None test when tracing is off (perturb sits
        # on the measurement path). With a tracer, the applied-fault
        # counts correlate recovery actions with the injected cause.
        tracer = obs._ACTIVE

        drift = self._drift_ns(now_s)
        if drift:
            latencies += drift
            if tracer is not None:
                tracer.metrics.inc("faults.drift_measurements", count)

        if profile.storm_outlier_probability and self._storm_active(now_s):
            hits = self._rng.random(count) < profile.storm_outlier_probability
            latencies += hits * profile.storm_extra_ns * self._rng.random(count)
            if tracer is not None:
                tracer.metrics.inc("faults.storm_outliers", int(hits.sum()))

        if profile.burst_start_probability:
            affected = self._burst_mask(count)
            latencies += (
                affected * profile.burst_extra_ns * (0.5 + 0.5 * self._rng.random(count))
            )
            if tracer is not None:
                tracer.metrics.inc("faults.burst_measurements", int(affected.sum()))

        if profile.misread_probability:
            flips = self._misread_mask(
                np.asarray(conflict_flags, dtype=bool), bases, partners, now_ns
            )
            latencies += flips * profile.misread_extra_ns
            if tracer is not None:
                tracer.metrics.inc("faults.misreads", int(flips.sum()))

        return latencies

    def perturb_one(
        self, latency: float, is_conflict: bool, addr_a: int, addr_b: int, now_ns: float
    ) -> float:
        """Scalar convenience wrapper over :meth:`perturb`."""
        perturbed = self.perturb(
            np.asarray([latency]),
            np.asarray([is_conflict]),
            np.asarray([addr_a], dtype=np.uint64),
            np.asarray([addr_b], dtype=np.uint64),
            now_ns,
        )
        return float(perturbed[0])

    # -------------------------------------------------------- fault internals

    def _drift_ns(self, now_s: float) -> float:
        """Accumulated baseline creep at simulated time ``now_s``."""
        profile = self.profile
        if not profile.drift_ns_per_s:
            return 0.0
        elapsed = max(0.0, now_s - profile.drift_start_s)
        if profile.drift_period_s:
            # Thermal cycling: triangle wave over the period, peaking at
            # rate * period / 2 mid-cycle.
            phase = elapsed % profile.drift_period_s
            half = profile.drift_period_s / 2.0
            elapsed = phase if phase <= half else profile.drift_period_s - phase
        drift = profile.drift_ns_per_s * elapsed
        if profile.drift_cap_ns:
            drift = min(drift, profile.drift_cap_ns)
        return drift

    def _storm_active(self, now_s: float) -> bool:
        """Whether a refresh storm covers simulated time ``now_s``."""
        profile = self.profile
        since_start = now_s - profile.storm_start_s
        if since_start < 0:
            return False
        if profile.storm_period_s:
            since_start %= profile.storm_period_s
        return since_start < profile.storm_duration_s

    def _burst_mask(self, count: int) -> np.ndarray:
        """Which of the next ``count`` measurements a spike burst covers.

        Burst state carries across calls: a burst that starts near the end
        of one batch keeps contaminating the start of the next, exactly as
        a batch-oblivious interrupt storm would.
        """
        profile = self.profile
        length = profile.burst_length
        starts = self._rng.random(count) < profile.burst_start_probability
        affected = np.zeros(count, dtype=bool)
        carried = min(self._burst_remaining, count)
        if carried:
            affected[:carried] = True
        # An element is inside a burst when any start occurred within the
        # preceding `length` elements (inclusive); count starts in that
        # sliding window via cumulative sums.
        cumulative = np.cumsum(starts)
        window_base = np.concatenate(
            [np.zeros(min(length, count), dtype=cumulative.dtype), cumulative]
        )[:count]
        affected |= (cumulative - window_base) > 0
        start_indices = np.flatnonzero(starts)
        if start_indices.size:
            self._burst_remaining = max(0, int(start_indices[-1]) + length - count)
        else:
            self._burst_remaining = max(0, self._burst_remaining - count)
        return affected

    def _misread_mask(
        self,
        conflict_flags: np.ndarray,
        bases: np.ndarray | int,
        partners: np.ndarray | int,
        now_ns: float,
    ) -> np.ndarray:
        """Which conflict-free pairs mis-read slow in the current window.

        Pure counter-based hashing — no RNG stream — so the decision for a
        pair is a function of (pair, window, seed) only: identical within
        a stickiness window, re-rolled in the next, independent of how
        many other measurements happened in between.
        """
        profile = self.profile
        bases = np.asarray(bases, dtype=np.uint64)
        partners = np.asarray(partners, dtype=np.uint64)
        if bases.shape != partners.shape:
            bases = np.broadcast_to(bases, partners.shape)
        window = _U64(int(now_ns // (profile.misread_window_s * 1e9)))
        # Symmetric pair key: (a, b) and (b, a) mis-read together.
        keys = _mix64(bases) ^ _mix64(partners)
        salted = keys ^ _mix64(np.asarray([window], dtype=np.uint64) ^ self._misread_seed)
        uniforms = _hash_uniform(salted)
        return (~conflict_flags) & (uniforms < profile.misread_probability)
