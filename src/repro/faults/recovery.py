"""Recovery policy and structured degradation reporting.

When the pipeline survives injected (or real) noise it must say *how*:
silent recovery is indistinguishable from a clean run and hides
mis-calibration from the operator. Every recovery action — a step retry
with backoff, a probe recalibration after drift, a partition escalation —
is recorded as a :class:`DegradationEvent` and surfaced on the run
result, so "converged" and "converged after fighting the machine" are
distinguishable outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DegradationEvent", "RecoveryPolicy"]


@dataclass(frozen=True)
class DegradationEvent:
    """One recovery action taken during a run.

    Attributes:
        step: pipeline step that degraded ("calibrate", "partition",
            "probe", "pipeline", ...).
        action: what the recovery machinery did ("retry", "recalibrated",
            "escalated", "restart", ...).
        attempt: 1-based ordinal of the action within its step.
        detail: human-readable cause (usually the stringified error).
        backoff_s: simulated seconds slept before the action (0 when the
            action was immediate).
        span: slash-joined span path active when the event fired (from
            :func:`repro.obs.tracing.current_path` — maintained even in
            untraced runs), e.g. ``"dramdig/attempt-2/partition"``.
            Empty when the event fired outside any tracked span.
    """

    step: str
    action: str
    attempt: int = 1
    detail: str = ""
    backoff_s: float = 0.0
    span: str = ""

    def describe(self) -> str:
        """One-line rendering for summaries and logs."""
        suffix = f" after {self.backoff_s:.1f}s backoff" if self.backoff_s else ""
        detail = f": {self.detail}" if self.detail else ""
        where = f" @{self.span}" if self.span else ""
        return f"{self.step} {self.action} #{self.attempt}{where}{suffix}{detail}"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Per-step retry policy for the pipeline.

    A failed step (calibration, partition, function search, fine
    detection) is retried in place — without restarting the phases before
    it — up to ``step_retries`` times, sleeping simulated time between
    attempts with exponential backoff so transient conditions (refresh
    storms, sticky mis-read windows) can expire. The default policy
    retries nothing, reproducing the seed pipeline's fail-fast behaviour.

    Attributes:
        step_retries: in-place retries allowed per step.
        backoff_initial_s: simulated sleep before the first retry.
        backoff_multiplier: backoff growth factor per retry.
    """

    step_retries: int = 0
    backoff_initial_s: float = 1.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.step_retries < 0:
            raise ValueError("step_retries must be non-negative")
        if self.backoff_initial_s < 0:
            raise ValueError("backoff_initial_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")

    @property
    def enabled(self) -> bool:
        """True when the policy retries at least once."""
        return self.step_retries > 0
