"""Composable noise profiles — what can go wrong on a machine under test.

A :class:`FaultProfile` is a declarative bundle of fault intensities; the
:class:`~repro.faults.injector.FaultInjector` interprets it against a
machine's simulated clock. Five orthogonal fault families are modelled,
each mirroring a failure mode documented for real mapping
reverse-engineering runs:

* **Latency-spike bursts** — a stretch of consecutive measurements is
  contaminated (interrupt storm, SMM excursion): each affected latency
  gains a large additive spike.
* **Threshold drift** — the whole latency baseline creeps up over
  simulated time (thermal throttling, power-management state changes),
  silently invalidating a calibrated fast/slow cutoff.
* **Refresh storms** — windows of simulated time in which the refresh
  spike probability jumps by orders of magnitude (tRFC pile-ups on a
  loaded machine); a calibration run inside a storm sees no clean
  fast population at all.
* **Transient mis-reads** — a conflict-free pair reads *slow* for a
  while (prefetcher or row-policy interference). Mis-reads are sticky
  per (pair, time-window): re-measuring the same pair inside the same
  window repeats the lie, so min-of-repeats cannot filter it — only
  waiting out the window can.
* **Allocator pressure** — the OS grants less memory than requested,
  shrinking the tool's address pool; pressure follows a per-allocation
  schedule so it can ease over the lifetime of a run.

Profiles compose with :meth:`FaultProfile.combine`. A registry of named
profiles (:func:`get_profile`) backs the CLI's ``--noise-profile`` flag.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

__all__ = ["FaultProfile", "PROFILES", "get_profile", "profile_names"]


@dataclass(frozen=True)
class FaultProfile:
    """Declarative fault intensities; all default to "off".

    Attributes:
        name: label shown in diagnostics.
        burst_start_probability: per-measurement chance that a spike
            burst begins.
        burst_length: measurements contaminated by one burst.
        burst_extra_ns: spike magnitude added to burst measurements.
        drift_ns_per_s: baseline latency creep per simulated second.
        drift_start_s: simulated time the creep begins (thermal ramps
            follow the workload, not the boot).
        drift_period_s: thermal-cycle period; when positive the drift
            follows a triangle wave (rising half-cycle, falling
            half-cycle, peak ``drift_ns_per_s * drift_period_s / 2``)
            instead of a monotonic ramp, so the baseline never stops
            moving yet stays physically bounded.
        drift_cap_ns: upper bound on accumulated drift (0 = unbounded).
        storm_outlier_probability: per-measurement spike chance inside a
            storm window.
        storm_extra_ns: spike magnitude inside a storm window.
        storm_start_s: simulated time the first storm begins.
        storm_duration_s: length of each storm window.
        storm_period_s: storm repetition period (0 = a single storm).
        misread_probability: chance a conflict-free pair reads slow for
            one stickiness window.
        misread_extra_ns: latency added to a mis-read pair (should be
            about the machine's fast/slow gap to be convincing).
        misread_window_s: stickiness window; the same pair mis-reads
            identically within one window and re-rolls in the next.
        alloc_grant_fractions: fraction of each allocation request
            actually granted, indexed by allocation count; allocations
            beyond the schedule are granted in full.
    """

    name: str = "custom"
    # Latency-spike bursts.
    burst_start_probability: float = 0.0
    burst_length: int = 0
    burst_extra_ns: float = 0.0
    # Threshold drift.
    drift_ns_per_s: float = 0.0
    drift_start_s: float = 0.0
    drift_period_s: float = 0.0
    drift_cap_ns: float = 0.0
    # Refresh storms.
    storm_outlier_probability: float = 0.0
    storm_extra_ns: float = 0.0
    storm_start_s: float = 0.0
    storm_duration_s: float = 0.0
    storm_period_s: float = 0.0
    # Sticky transient mis-reads.
    misread_probability: float = 0.0
    misread_extra_ns: float = 30.0
    misread_window_s: float = 0.25
    # Allocator pressure.
    alloc_grant_fractions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for probability in (
            "burst_start_probability",
            "storm_outlier_probability",
            "misread_probability",
        ):
            value = getattr(self, probability)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{probability} must be a probability, got {value}")
        for non_negative in (
            "burst_extra_ns",
            "drift_ns_per_s",
            "drift_start_s",
            "drift_period_s",
            "drift_cap_ns",
            "misread_window_s",
            "storm_extra_ns",
            "storm_start_s",
            "storm_duration_s",
            "storm_period_s",
            "misread_extra_ns",
        ):
            value = getattr(self, non_negative)
            if value < 0:
                raise ValueError(f"{non_negative} must be non-negative, got {value}")
        if self.burst_length < 0:
            raise ValueError("burst_length must be non-negative")
        if self.burst_start_probability > 0 and self.burst_length == 0:
            raise ValueError("bursts need a positive burst_length")
        if self.misread_probability > 0 and self.misread_window_s <= 0:
            raise ValueError("mis-reads need a positive misread_window_s")
        if self.storm_period_s and self.storm_period_s < self.storm_duration_s:
            raise ValueError("storm_period_s must cover storm_duration_s")
        for fraction in self.alloc_grant_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"alloc_grant_fractions entries must be in (0, 1], got {fraction}"
                )

    # ------------------------------------------------------------- composition

    @property
    def is_quiet(self) -> bool:
        """True when the profile injects nothing at all."""
        return (
            self.burst_start_probability == 0.0
            and self.drift_ns_per_s == 0.0
            and self.storm_outlier_probability == 0.0
            and self.misread_probability == 0.0
            and not self.alloc_grant_fractions
        )

    def combine(self, other: "FaultProfile") -> "FaultProfile":
        """Layer ``other`` on top of this profile.

        Every field ``other`` sets away from its default overrides this
        profile's value; untouched fields keep this profile's setting. The
        combined profile is named ``"<self>+<other>"``.
        """
        changes: dict[str, object] = {}
        for spec in fields(self):
            if spec.name == "name":
                continue
            value = getattr(other, spec.name)
            if value != spec.default:
                changes[spec.name] = value
        changes["name"] = f"{self.name}+{other.name}"
        return dataclasses.replace(self, **changes)


# --------------------------------------------------------------------- registry

PROFILES: dict[str, FaultProfile] = {
    # The null profile: attached injector, nothing injected. Useful to
    # assert the injection path itself is bit-transparent.
    "quiet": FaultProfile(name="quiet"),
    # Interrupt-storm style bursts: rare, long, large.
    "spike-bursts": FaultProfile(
        name="spike-bursts",
        burst_start_probability=0.002,
        burst_length=64,
        burst_extra_ns=90.0,
    ),
    # Thermal step: once the workload has been running a few seconds the
    # baseline ramps up 40 ns/s and settles 35 ns higher for good (the
    # machine reached its hot steady state). Invisible at calibration
    # time; a threshold anchored to the cold baseline is permanently
    # stale a second later.
    "drift": FaultProfile(
        name="drift", drift_ns_per_s=40.0, drift_start_s=3.6, drift_cap_ns=35.0
    ),
    # A heavy storm covering boot + calibration, then silence: the classic
    # "first run of the day fails" machine.
    "boot-storm": FaultProfile(
        name="boot-storm",
        storm_outlier_probability=0.9,
        storm_extra_ns=400.0,
        storm_start_s=0.0,
        storm_duration_s=3.5,
    ),
    # Sticky mis-reads: a few percent of conflict-free pairs read slow for
    # seconds at a time. Enough to push every Algorithm 2 pile past the
    # size tolerance; immune to min-of-repeats and to immediate
    # re-verification — only out-waiting the window helps.
    "sticky-misreads": FaultProfile(
        name="sticky-misreads",
        misread_probability=0.04,
        misread_extra_ns=30.0,
        misread_window_s=5.0,
    ),
    # The OS grants only a fifth of each of the first three requests
    # (pressure eases as other tenants release memory).
    "alloc-pressure": FaultProfile(
        name="alloc-pressure",
        alloc_grant_fractions=(0.18, 0.18, 0.18),
    ),
    # Everything at once, at survivable intensities. The thermal cycle
    # peaks at drift_ns_per_s * drift_period_s / 2 = 10 ns, inside the
    # fast/slow classification margin, so a tracked threshold stays
    # correct between heartbeat re-anchors.
    "hostile": FaultProfile(
        name="hostile",
        burst_start_probability=0.0005,
        burst_length=32,
        burst_extra_ns=70.0,
        drift_ns_per_s=2.5,
        drift_period_s=8.0,
        misread_probability=0.01,
        misread_extra_ns=30.0,
        misread_window_s=0.25,
    ),
}


def profile_names() -> tuple[str, ...]:
    """Registered profile names, CLI-choice order."""
    return tuple(PROFILES)


def get_profile(name: str) -> FaultProfile:
    """Look up a registered profile by name.

    Raises:
        ValueError: for an unknown name, listing the known ones.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(PROFILES)
        raise ValueError(f"unknown noise profile {name!r} (known: {known})") from None
