"""Durable file I/O shared by every artefact writer.

Every file this repo persists — evaluation reports, recovered-mapping
JSON, the perf record, the grid checkpoint journal — goes through
:func:`atomic_write`: the bytes land in a temporary file in the target
directory, are flushed and fsync'd, and then :func:`os.replace` swaps
the file into place. A reader (or a run resuming from a checkpoint)
therefore sees either the previous complete file or the new complete
file, never a truncated hybrid, even if the writing process is
SIGKILLed mid-write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_append", "atomic_write"]


def atomic_write(path: str | Path, data: str | bytes, encoding: str = "utf-8") -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created next to the target so the final
    replace stays on one filesystem (cross-device renames are not
    atomic). The file's bytes are fsync'd before the swap, and the
    containing directory is fsync'd after it where the platform allows,
    so the rename itself survives a crash.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, temp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    try:  # directory fsync is best-effort: not supported everywhere
        directory_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def atomic_append(path: str | Path, line: str, encoding: str = "utf-8") -> None:
    """Append one line to ``path`` as a single ``O_APPEND`` write.

    The whole-file rewrite of :func:`atomic_write` is the wrong tool for
    an append-only stream written concurrently by a parent and its grid
    workers — two rewriters would race and one would win. ``O_APPEND``
    makes the kernel perform the seek-to-end and the write as one atomic
    step, and issuing the entire line (terminator included) as a single
    ``os.write`` keeps concurrent writers' lines from interleaving on
    local filesystems. A reader therefore sees only whole lines — the
    telemetry stream's durability contract: a line is either absent or
    complete, and lines from different processes never shear each other.

    ``line`` must not contain a newline of its own; one is appended.
    """
    if "\n" in line:
        raise ValueError("atomic_append writes single lines (no embedded newline)")
    payload = (line + "\n").encode(encoding)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)
