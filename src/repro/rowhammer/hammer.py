"""Double-sided rowhammer driver: aim with a belief, flip with the truth.

The paper's Table III experiment: take the mapping a tool recovered, use
it to place aggressor rows around victims, hammer for five minutes, count
bit flips. The attacker computes everything — victim row, the two
aggressor addresses — under its *believed* mapping; the machine's ground
truth then decides where the aggressors physically landed and the fault
model decides what flips. A correct belief yields true double-sided
layouts (many flips); an incorrect one silently hammers non-adjacent or
wrong-bank rows (few or zero flips). No special-casing anywhere: the flip
gap between DRAMDig and DRAMA emerges entirely from belief quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.dram.belief import BeliefMapping
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.faultmodel import RowhammerFaultModel
from repro.rowhammer.mitigations import MitigationStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.rowhammer.aggressors import CompiledAggressorPlanner

__all__ = ["HammerConfig", "HammerReport", "DoubleSidedAttack"]


@dataclass(frozen=True)
class HammerConfig:
    """Attack-loop parameters.

    Attributes:
        duration_seconds: test length (paper: 5 minutes).
        activation_ns: time per aggressor activation including the cache
            flush (~140 ns on Intel parts).
        trial_overhead_seconds: per-victim setup plus victim-scan time.
        buffer_fraction: memory fraction the attacker allocates (hugepage
            backed, as real attacks do).
        test_variability: log-normal sigma of the per-test effectiveness
            factor, modelling run-to-run thermal and data-pattern variation
            (Table III's spread within a tool).
        refresh_window_ms: victim retention window (64 ms standard).
    """

    duration_seconds: float = 300.0
    activation_ns: float = 140.0
    trial_overhead_seconds: float = 0.006
    buffer_fraction: float = 0.25
    test_variability: float = 0.25
    refresh_window_ms: float = 64.0


@dataclass
class HammerReport:
    """Outcome of one timed rowhammer test.

    Attributes:
        flips: total induced bit flips.
        trials: victims hammered.
        aimed_double: trials whose aggressors truly sandwiched the victim.
        aimed_single: trials with exactly one truly-adjacent aggressor.
        aimed_none: trials whose aggressors landed nowhere useful.
        skipped: trials abandoned (aggressor outside the buffer or row
            range).
        duration_seconds: simulated test length.
        raw_flips: flips before any mitigation (equals ``flips`` on
            unmitigated machines).
        stopped_by_trr: flips TRR prevented.
        ecc_corrected / ecc_detected / ecc_silent: SECDED accounting.
    """

    flips: int = 0
    trials: int = 0
    aimed_double: int = 0
    aimed_single: int = 0
    aimed_none: int = 0
    skipped: int = 0
    duration_seconds: float = 0.0
    raw_flips: int = 0
    stopped_by_trr: int = 0
    ecc_corrected: int = 0
    ecc_detected: int = 0
    ecc_silent: int = 0

    @property
    def aim_accuracy(self) -> float:
        """Fraction of non-skipped trials that were truly double-sided."""
        attempted = self.trials - self.skipped
        return self.aimed_double / attempted if attempted else 0.0


class DoubleSidedAttack:
    """Runs timed double-sided rowhammer tests on a simulated machine."""

    def __init__(
        self,
        machine: SimulatedMachine,
        fault_model: RowhammerFaultModel | None = None,
        config: HammerConfig | None = None,
        vulnerability: float | None = None,
        row_remap: str = "none",
    ):
        self.machine = machine
        self.config = config if config is not None else HammerConfig()
        if fault_model is not None:
            self.fault_model = fault_model
        else:
            if vulnerability is None:
                raise ValueError("provide fault_model or vulnerability")
            self.fault_model = RowhammerFaultModel(
                rows_per_bank=machine.ground_truth.geometry.rows_per_bank,
                vulnerability=vulnerability,
                seed=machine.seed,
                row_remap=row_remap,
            )

    def run(
        self,
        belief: BeliefMapping,
        seed: int = 0,
        mitigations: MitigationStack | None = None,
        decoy_rows: int = 0,
        planner: "CompiledAggressorPlanner | None" = None,
    ) -> HammerReport:
        """One timed test aiming with ``belief``.

        Args:
            belief: the mapping used for aiming.
            seed: per-test seed.
            mitigations: optional TRR/ECC stack the machine runs.
            decoy_rows: extra rows hammered per window to flood a TRR
                tracker (the TRRespass-style many-sided pattern). Decoys
                share the activation budget, so they weaken the true pair
                while improving the odds of slipping past the tracker.
            planner: optional compiled batch aggressor planner
                (:class:`repro.rowhammer.aggressors.CompiledAggressorPlanner`).
                When given, all aggressor pairs are planned in one batch of
                GF(2) kernels up front instead of per-victim scalar aiming.
                The planner picks same-bank row ± 1 aggressors like the
                belief path but may choose different columns, so Table III
                runs keep the default (``None``) scalar path byte-identical.
        """
        if decoy_rows < 0:
            raise ValueError("decoy_rows must be non-negative")
        config = self.config
        truth = self.machine.ground_truth
        rng = np.random.default_rng((seed, 0x4A44))
        pages = self.machine.allocate(
            int(self.machine.total_bytes * config.buffer_fraction), "hugepages"
        )
        window_seconds = config.refresh_window_ms / 1e3
        trial_seconds = window_seconds + config.trial_overhead_seconds
        trials = int(config.duration_seconds / trial_seconds)
        # Alternating aggressor loop: every hammered row (2 true aggressors
        # plus any decoys) gets an equal share of the window.
        hammered_rows = 2 + decoy_rows
        activations_each = int(
            window_seconds * 1e9 / (hammered_rows * config.activation_ns)
        )
        effectiveness = _test_effectiveness(rng, config.test_variability)

        report = HammerReport(duration_seconds=config.duration_seconds)
        victims = pages.sample_addresses(trials, rng)
        plan = planner.plan(victims) if planner is not None else None
        for trial in range(trials):
            report.trials += 1
            victim = int(victims[trial])
            if plan is not None:
                usable = bool(plan.valid[trial])
                above = int(plan.above[trial]) if usable else None
                below = int(plan.below[trial]) if usable else None
            else:
                above = belief.aim_row_neighbor(victim, -1)
                below = belief.aim_row_neighbor(victim, +1)
            if above is None or below is None:
                report.skipped += 1
                continue
            if not (pages.has_page(above) and pages.has_page(below)):
                report.skipped += 1
                continue
            flips, mode = self._hammer_window(
                truth, above, below, victim, activations_each, trial
            )
            if mode == "double":
                report.aimed_double += 1
            elif mode == "single":
                report.aimed_single += 1
            else:
                report.aimed_none += 1
            raw = _scaled(flips, effectiveness, rng)
            report.raw_flips += raw
            if mitigations is None:
                report.flips += raw
            else:
                filtered = mitigations.filter_window(raw, hammered_rows, rng)
                report.stopped_by_trr += filtered.stopped_by_trr
                report.ecc_corrected += filtered.corrected
                report.ecc_detected += filtered.detected
                report.ecc_silent += filtered.silent
                report.flips += filtered.observable
        self.machine.charge_analysis(config.duration_seconds * 1e9)
        return report

    # ------------------------------------------------------------- internals

    def _hammer_window(
        self,
        truth,
        above: int,
        below: int,
        victim: int,
        activations_each: int,
        trial: int,
    ) -> tuple[int, str]:
        """Resolve true aggressor placement, hand the per-bank activation
        profile to the fault model, and classify the intended aim."""
        per_bank: dict[int, dict[int, int]] = {}
        for aggressor in (above, below):
            bank = truth.bank_of(aggressor)
            row = truth.row_of(aggressor)
            bank_activations = per_bank.setdefault(bank, {})
            bank_activations[row] = bank_activations.get(row, 0) + activations_each

        flips = 0
        for bank, bank_activations in per_bank.items():
            flips += self.fault_model.window_flips(bank, bank_activations, trial)

        victim_bank = truth.bank_of(victim)
        victim_row = truth.row_of(victim)
        intended = per_bank.get(victim_bank, {})
        intended_above = intended.get(victim_row - 1, 0)
        intended_below = intended.get(victim_row + 1, 0)
        if intended_above and intended_below:
            mode = "double"
        elif intended_above or intended_below:
            mode = "single"
        else:
            mode = "none"
        return flips, mode


def _test_effectiveness(rng: np.random.Generator, sigma: float) -> float:
    """Per-test effectiveness factor (thermal / data-pattern variation)."""
    if sigma <= 0:
        return 1.0
    return float(np.clip(rng.lognormal(0.0, sigma), 0.3, 2.5))


def _scaled(flips: int, effectiveness: float, rng: np.random.Generator) -> int:
    """Scale a flip count by the test effectiveness, stochastic rounding."""
    scaled = flips * effectiveness
    base = int(scaled)
    return base + (1 if rng.random() < scaled - base else 0)
