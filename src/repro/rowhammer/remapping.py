"""In-DRAM row remapping: when logical row ± 1 is not the physical
neighbour.

DRAM vendors are free to scramble row addresses *inside* the chip —
Kim et al. (ISCA 2014) already noted that "the mapping of logical rows to
physical rows varies by manufacturer", and follow-up work measured
concrete schemes. The memory controller (and therefore every
address-mapping tool, DRAMDig included) only sees logical rows; whether
``row r ± 1`` is physically adjacent to ``row r`` is the DIMM's secret.

Two measured schemes are modelled alongside the identity:

* ``none`` — logical order is physical order (most DDR3 parts).
* ``pair_swap`` — adjacent even/odd rows are swapped internally
  (``r ^ 1``). The naive logical sandwich (r-1, r+1) still physically
  sandwiches *a* row — but never the intended one: raw flip counts
  survive, targeted exploitation (flipping a chosen page's bits) dies.
* ``bit3_flip`` — an address-line inversion (``r ^ 0b1000``): logical
  neighbours stay physically adjacent except across each 8-row boundary,
  where the naive sandwich falls apart entirely — raw counts drop too.

The remap-aware attacker (who characterised the DIMM with a flip-profile
pass) aims at ``physical ± 1`` translated back through the inverse remap
and recovers both the counts and the targeting;
:func:`adjacency_agreement` quantifies what the naive attacker keeps.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["ROW_REMAPS", "remap_row", "inverse_remap_row", "adjacency_agreement"]


def _identity(row: int) -> int:
    return row


def _pair_swap(row: int) -> int:
    return row ^ 1


def _bit3_flip(row: int) -> int:
    return row ^ 0b1000


# name -> (logical -> physical). All schemes here are involutions, so the
# inverse is the function itself; inverse_remap_row exists for readability
# and for future non-involutive schemes.
ROW_REMAPS: dict[str, Callable[[int], int]] = {
    "none": _identity,
    "pair_swap": _pair_swap,
    "bit3_flip": _bit3_flip,
}


def remap_row(scheme: str, row: int) -> int:
    """Logical -> physical row under ``scheme``."""
    if scheme not in ROW_REMAPS:
        raise ValueError(f"unknown row remap {scheme!r}; known: {sorted(ROW_REMAPS)}")
    if row < 0:
        raise ValueError("row must be non-negative")
    return ROW_REMAPS[scheme](row)


def inverse_remap_row(scheme: str, physical_row: int) -> int:
    """Physical -> logical row (all shipped schemes are involutions)."""
    return remap_row(scheme, physical_row)


def adjacency_agreement(scheme: str, rows: int = 4096) -> float:
    """Fraction of logical rows whose logical neighbours at +-1 are both
    physically adjacent too — the success rate of a remap-naive
    double-sided attacker on this DIMM."""
    if rows < 4:
        raise ValueError("need at least 4 rows")
    agree = 0
    for row in range(1, rows - 1):
        physical = remap_row(scheme, row)
        above = remap_row(scheme, row - 1)
        below = remap_row(scheme, row + 1)
        if {above, below} == {physical - 1, physical + 1}:
            agree += 1
    return agree / (rows - 2)
