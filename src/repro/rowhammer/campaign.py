"""Blacksmith-style rowhammer campaign fuzzer over the supervised grid.

DRAMDig's stated end-use is rowhammer vulnerability assessment;
large-scale flip-yield characterization (DRAMScope, X-ray, blacksmith)
sweeps hammering patterns across device configurations to map where
flips actually come from. This module reproduces that shape in
simulation: a :class:`CampaignSpec` enumerates a deterministic sweep
space — hammering variants × mitigation stacks (TRR / ECC combinations)
× machine presets × per-combination test seeds — and every trial becomes
one :class:`~repro.parallel.GridCell` scheduled through the shared grid
dispatch seam (:func:`repro.evalsuite.gridrun.execute_grid`). That buys
the campaign everything the scale layers already provide:

* crash-safe supervision (worker-death quarantine, per-cell timeouts,
  retries) with failed trials carried as first-class
  :class:`~repro.parallel.CellFailure` slots;
* content-fingerprinted checkpoint journalling: a SIGKILLed campaign
  resumed with the same spec replays completed trials from the journal
  and re-executes none of them, and the leaderboard artifact is
  byte-identical to an uninterrupted run;
* cross-process tracing (``--trace``): every trial runs under a cell
  span and books layout-deterministic ``campaign.*`` metrics.

Aggressor selection inside double-sided trials goes through the
compiled-translation fast path: the ground-truth mapping is published to
the process-wide :class:`~repro.service.translation.TranslationService`
and a :class:`~repro.rowhammer.aggressors.CompiledAggressorPlanner`
plans every victim's aggressor pair in one batch of GF(2) kernels —
the ``campaign`` section of ``BENCH_perf.json`` gates this path at ≥5×
the per-victim scalar aim loop.

The output is a bit-flip-yield leaderboard: per-configuration flips,
raw flips, aim accuracy, TRR stops, ECC outcomes and a
flips-per-simulated-minute ranking, rendered through
:mod:`repro.evalsuite.reporting` and persisted as a deterministic
``dramdig-campaign-v1`` JSON artifact. See ``docs/rowhammer.md``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.dram.belief import BeliefMapping
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.gridrun import execute_grid
from repro.evalsuite.reporting import render_failure_manifest, render_table
from repro.ioutil import atomic_write
from repro.logutil import get_logger
from repro.machine.machine import SimulatedMachine
from repro.obs import telemetry
from repro.obs import tracing as obs
from repro.parallel import (
    DEFAULT_START_METHOD,
    CellFailure,
    CheckpointJournal,
    GridCell,
    GridPolicy,
)
from repro.rowhammer.aggressors import CompiledAggressorPlanner
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.mitigations import MitigationStack, TrrModel
from repro.rowhammer.variants import one_location_test, single_sided_test

__all__ = [
    "ARTIFACT_FORMAT",
    "CAMPAIGN_MACHINES",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "LeaderboardRow",
    "build_leaderboard",
    "campaign_artifact",
    "campaign_trial_cell",
    "load_artifact",
    "mitigation_names",
    "mitigation_stack",
    "render_artifact",
    "render_campaign",
    "run_campaign",
    "save_artifact",
    "variant_names",
]

ARTIFACT_FORMAT = "dramdig-campaign-v1"

_LOG = get_logger("repro.rowhammer.campaign")

#: Default machine panel: the paper's Table III rowhammer machines.
CAMPAIGN_MACHINES: tuple[str, ...] = ("No.1", "No.2", "No.5")

# Hammering variants. Double-sided flavours carry their decoy-row count
# (the TRRespass many-sided tracker-flooding knob); the classic variants
# dispatch to repro.rowhammer.variants. Names are the sweep-space axis —
# payloads carry the *name*, workers resolve it, so journal fingerprints
# stay stable across refactors of the variant internals.
_VARIANTS: dict[str, int | None] = {
    "double_sided": 0,
    "many_sided_6": 6,
    "single_sided": None,
    "one_location": None,
}

_MITIGATIONS: dict[str, MitigationStack | None] = {
    "none": None,
    "trr": MitigationStack(trr=TrrModel()),
    "ecc": MitigationStack(ecc=True),
    "trr_ecc": MitigationStack(trr=TrrModel(), ecc=True),
}


def variant_names() -> tuple[str, ...]:
    """The hammering variants a campaign can sweep."""
    return tuple(_VARIANTS)


def mitigation_names() -> tuple[str, ...]:
    """The mitigation stacks a campaign can sweep."""
    return tuple(_MITIGATIONS)


def mitigation_stack(name: str) -> MitigationStack | None:
    """Resolve a mitigation-stack name (raises ``KeyError`` on unknown)."""
    return _MITIGATIONS[name]


@dataclass(frozen=True)
class CampaignSpec:
    """A deterministic campaign sweep space.

    The cell list — and therefore every journal fingerprint — is a pure
    function of this spec: same spec, same cells, same artifact bytes.

    Attributes:
        machines: machine presets to sweep.
        variants: hammering variants (see :func:`variant_names`).
        mitigations: mitigation stacks (see :func:`mitigation_names`).
        tests: timed tests per (machine, variant, mitigation) combo.
        duration_seconds: simulated length of each timed test.
        seed: base seed; machines simulate with it, test *i* of a combo
            hammers with a seed derived from (combo, ``seed``, *i*).
    """

    machines: tuple[str, ...] = CAMPAIGN_MACHINES
    variants: tuple[str, ...] = tuple(_VARIANTS)
    mitigations: tuple[str, ...] = tuple(_MITIGATIONS)
    tests: int = 2
    duration_seconds: float = 120.0
    seed: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "machines", tuple(self.machines))
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(self, "mitigations", tuple(self.mitigations))
        for name in self.machines:
            if name not in TABLE2_ORDER:
                raise ValueError(f"unknown machine preset {name!r}")
        for name in self.variants:
            if name not in _VARIANTS:
                raise ValueError(
                    f"unknown variant {name!r} (have {', '.join(_VARIANTS)})"
                )
        for name in self.mitigations:
            if name not in _MITIGATIONS:
                raise ValueError(
                    f"unknown mitigation stack {name!r} "
                    f"(have {', '.join(_MITIGATIONS)})"
                )
        if not (self.machines and self.variants and self.mitigations):
            raise ValueError("campaign sweep space is empty")
        if self.tests < 1:
            raise ValueError("need at least one test per combination")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")

    @property
    def cell_count(self) -> int:
        """Grid cells the sweep enumerates (one per timed test)."""
        return (
            len(self.machines)
            * len(self.variants)
            * len(self.mitigations)
            * self.tests
        )

    def hammer_trials_per_test(self, config: HammerConfig | None = None) -> int:
        """Victim trials one timed test performs (the attack-loop count)."""
        config = config if config is not None else HammerConfig()
        trial_seconds = (
            config.refresh_window_ms / 1e3 + config.trial_overhead_seconds
        )
        return int(self.duration_seconds / trial_seconds)

    def combos(self):
        """The (machine, variant, mitigation, test_index) enumeration,
        machine-major — the canonical cell order."""
        for machine in self.machines:
            for variant in self.variants:
                for mitigation in self.mitigations:
                    for test_index in range(self.tests):
                        yield machine, variant, mitigation, test_index

    def to_dict(self) -> dict:
        """JSON-ready spec record (embedded in the artifact)."""
        record = asdict(self)
        record["machines"] = list(self.machines)
        record["variants"] = list(self.variants)
        record["mitigations"] = list(self.mitigations)
        return record


@dataclass(frozen=True)
class CampaignResult:
    """One completed campaign trial: a timed test's flattened report."""

    machine: str
    variant: str
    mitigation: str
    test_index: int
    flips: int
    raw_flips: int
    trials: int
    aimed_double: int
    aimed_single: int
    aimed_none: int
    skipped: int
    stopped_by_trr: int
    ecc_corrected: int
    ecc_detected: int
    ecc_silent: int
    duration_seconds: float

    @property
    def minutes(self) -> float:
        return self.duration_seconds / 60.0

    @property
    def flips_per_minute(self) -> float:
        return self.flips / self.minutes if self.minutes > 0 else 0.0

    @property
    def aim_accuracy(self) -> float:
        attempted = self.trials - self.skipped
        return self.aimed_double / attempted if attempted else 0.0


def _test_seed(machine: str, variant: str, mitigation: str, seed: int,
               test_index: int) -> int:
    """Deterministic per-trial hammer seed, distinct across the sweep."""
    label = f"{machine}/{variant}/{mitigation}"
    # A stable string hash (not hash(): PYTHONHASHSEED) mixed with the
    # base seed and test index; workers and serial runs agree.
    digest = 0
    for char in label:
        digest = (digest * 131 + ord(char)) % (1 << 30)
    return digest * 1000 + seed * 100 + test_index


def campaign_trial_cell(
    name: str,
    machine: str,
    variant: str,
    mitigation: str,
    seed: int,
    test_index: int,
    duration_seconds: float,
) -> CampaignResult:
    """One campaign trial: a timed test of ``variant`` under
    ``mitigation`` on ``machine``.

    Grid-safe: every seed derives from the arguments, the returned
    result is a pure function of the payload, and the booked
    ``campaign.*`` metrics are layout-deterministic (same totals for
    jobs=1 and jobs=N). Aiming uses the ground-truth mapping — the
    campaign characterizes device flip yield, not tool recovery quality
    (Table III covers that) — published through the process-wide
    translation service so double-sided trials plan aggressors through
    the compiled batch kernels.
    """
    from repro.service.translation import default_service

    machine_preset = preset(machine)
    sim = SimulatedMachine.from_preset(machine_preset, seed=seed)
    belief = BeliefMapping.from_mapping(machine_preset.mapping)
    config = HammerConfig(duration_seconds=duration_seconds)
    stack = mitigation_stack(mitigation)
    vulnerability = machine_preset.hammer_vulnerability
    hammer_seed = _test_seed(machine, variant, mitigation, seed, test_index)

    decoys = _VARIANTS[variant]
    with obs.span(f"trial:{name}", clock=sim.clock) as scope:
        if decoys is not None:
            service = default_service()
            key = service.publish(machine_preset.mapping)
            planner = CompiledAggressorPlanner(service.compiled(key))
            attack = DoubleSidedAttack(
                sim, config=config, vulnerability=vulnerability
            )
            report = attack.run(
                belief,
                seed=hammer_seed,
                mitigations=stack,
                decoy_rows=decoys,
                planner=planner,
            )
        elif variant == "single_sided":
            report = single_sided_test(
                sim, belief, vulnerability, config=config, seed=hammer_seed,
                mitigations=stack,
            )
        else:
            report = one_location_test(
                sim, belief, vulnerability, config=config, seed=hammer_seed,
                mitigations=stack,
            )
        scope.set("flips", report.flips)
        scope.set("trials", report.trials)

    if telemetry.current_bus() is not None:
        # Per-trial yield heartbeat, emitted from the worker process via
        # the stream path the grid seam injected. Every field is a
        # deterministic function of the payload, so jobs=1 and jobs=N
        # streams stay equivalent modulo the bookkeeping fields.
        telemetry.emit(
            "trial",
            trial=name,
            flips=report.flips,
            raw_flips=report.raw_flips,
            tests=report.trials,
            trr_stops=report.stopped_by_trr,
        )

    obs.inc("campaign.tests")
    obs.inc("campaign.trials", report.trials)
    obs.inc("campaign.flips", report.flips)
    obs.inc("campaign.raw_flips", report.raw_flips)
    obs.inc("campaign.skipped", report.skipped)
    obs.inc("campaign.trr_stops", report.stopped_by_trr)
    obs.inc("campaign.ecc_corrected", report.ecc_corrected)
    obs.inc("campaign.ecc_detected", report.ecc_detected)
    obs.inc("campaign.ecc_silent", report.ecc_silent)

    return CampaignResult(
        machine=machine,
        variant=variant,
        mitigation=mitigation,
        test_index=test_index,
        flips=report.flips,
        raw_flips=report.raw_flips,
        trials=report.trials,
        aimed_double=report.aimed_double,
        aimed_single=report.aimed_single,
        aimed_none=report.aimed_none,
        skipped=report.skipped,
        stopped_by_trr=report.stopped_by_trr,
        ecc_corrected=report.ecc_corrected,
        ecc_detected=report.ecc_detected,
        ecc_silent=report.ecc_silent,
        duration_seconds=report.duration_seconds,
    )


@dataclass
class CampaignOutcome:
    """A campaign run's results, in canonical sweep order.

    ``results`` holds one entry per cell: a :class:`CampaignResult`, or
    the cell's :class:`~repro.parallel.CellFailure` under supervision.
    """

    spec: CampaignSpec
    results: list = field(default_factory=list)

    @property
    def completed(self) -> list[CampaignResult]:
        return [r for r in self.results if isinstance(r, CampaignResult)]

    @property
    def failures(self) -> list[CellFailure]:
        return [r for r in self.results if isinstance(r, CellFailure)]

    @property
    def total_trials(self) -> int:
        return sum(result.trials for result in self.completed)

    @property
    def total_flips(self) -> int:
        return sum(result.flips for result in self.completed)


def run_campaign(
    spec: CampaignSpec,
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    supervision: GridPolicy | None = None,
    journal: CheckpointJournal | str | Path | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> CampaignOutcome:
    """Run the sweep through the shared grid dispatch seam.

    One grid cell per timed test. ``jobs`` fans the cells out to worker
    processes with bit-identical results; ``supervision``/``journal``
    run them crash-safe and resumable (a resumed campaign replays
    completed trials from the journal and re-executes none of them).
    """
    cells = [
        GridCell(
            "repro.rowhammer.campaign:campaign_trial_cell",
            {
                "name": f"{machine}/{variant}/{mitigation}/t{test_index}",
                "machine": machine,
                "variant": variant,
                "mitigation": mitigation,
                "seed": spec.seed,
                "test_index": test_index,
                "duration_seconds": spec.duration_seconds,
            },
        )
        for machine, variant, mitigation, test_index in spec.combos()
    ]
    # Progress status lines go through repro.logutil (stderr), so
    # --quiet silences them and stdout artefacts are byte-identical
    # either way.
    _LOG.info(
        "campaign: %d timed test(s) over %d machine(s) x %d variant(s) x "
        "%d mitigation stack(s)",
        len(cells),
        len(spec.machines),
        len(spec.variants),
        len(spec.mitigations),
    )
    results = execute_grid(
        cells, jobs=jobs, start_method=start_method,
        supervision=supervision, journal=journal,
        batch_cells=batch_cells, pool_mode=pool_mode,
    )
    completed = sum(1 for r in results if isinstance(r, CampaignResult))
    _LOG.info(
        "campaign: %d/%d test(s) completed, %d failed",
        completed,
        len(cells),
        len(cells) - completed,
    )
    return CampaignOutcome(spec=spec, results=list(results))


# --------------------------------------------------------------- leaderboard


@dataclass(frozen=True)
class LeaderboardRow:
    """One sweep configuration's aggregated flip yield."""

    machine: str
    variant: str
    mitigation: str
    tests: int
    trials: int
    flips: int
    raw_flips: int
    aim_accuracy: float
    stopped_by_trr: int
    ecc_corrected: int
    ecc_detected: int
    ecc_silent: int
    minutes: float
    flips_per_minute: float


def build_leaderboard(outcome: CampaignOutcome) -> list[LeaderboardRow]:
    """Aggregate completed trials per configuration, ranked by yield.

    Rank order: flips per simulated minute descending, then the sweep
    axes — a total order, so the leaderboard is deterministic even
    between configurations with identical yield.
    """
    groups: dict[tuple[str, str, str], list[CampaignResult]] = {}
    for result in outcome.completed:
        key = (result.machine, result.variant, result.mitigation)
        groups.setdefault(key, []).append(result)

    rows = []
    for (machine, variant, mitigation), results in groups.items():
        trials = sum(r.trials for r in results)
        skipped = sum(r.skipped for r in results)
        aimed_double = sum(r.aimed_double for r in results)
        attempted = trials - skipped
        minutes = sum(r.minutes for r in results)
        flips = sum(r.flips for r in results)
        rows.append(
            LeaderboardRow(
                machine=machine,
                variant=variant,
                mitigation=mitigation,
                tests=len(results),
                trials=trials,
                flips=flips,
                raw_flips=sum(r.raw_flips for r in results),
                aim_accuracy=aimed_double / attempted if attempted else 0.0,
                stopped_by_trr=sum(r.stopped_by_trr for r in results),
                ecc_corrected=sum(r.ecc_corrected for r in results),
                ecc_detected=sum(r.ecc_detected for r in results),
                ecc_silent=sum(r.ecc_silent for r in results),
                minutes=minutes,
                flips_per_minute=flips / minutes if minutes > 0 else 0.0,
            )
        )
    rows.sort(
        key=lambda row: (
            -row.flips_per_minute, row.machine, row.variant, row.mitigation
        )
    )
    return rows


def _leaderboard_table(rows: list[dict]) -> str:
    """Render leaderboard rows (as dicts) through the shared reporting
    helpers; one formatting path for live runs and loaded artifacts."""
    headers = [
        "#", "Machine", "Variant", "Mitigation", "Tests", "Trials",
        "Flips", "Raw", "Aim", "TRR", "ECC c/d/s", "Flips/min",
    ]
    body = []
    for rank, row in enumerate(rows, start=1):
        body.append([
            rank,
            row["machine"],
            row["variant"],
            row["mitigation"],
            row["tests"],
            row["trials"],
            row["flips"],
            row["raw_flips"],
            f"{row['aim_accuracy']:.0%}",
            row["stopped_by_trr"],
            f"{row['ecc_corrected']}/{row['ecc_detected']}/{row['ecc_silent']}",
            f"{row['flips_per_minute']:.1f}",
        ])
    return render_table(headers, body)


def render_campaign(outcome: CampaignOutcome) -> str:
    """The campaign's human-readable artifact: leaderboard + totals.

    Under supervision, failed trials render as an explicit manifest —
    a partial leaderboard must never read as a complete sweep.
    """
    rows = [asdict(row) for row in build_leaderboard(outcome)]
    text = "campaign flip-yield leaderboard\n\n" + _leaderboard_table(rows)
    text += (
        f"\n\n{len(outcome.completed)}/{len(outcome.results)} tests, "
        f"{outcome.total_trials} hammer trials, "
        f"{outcome.total_flips} observable flips "
        f"(spec seed {outcome.spec.seed}, "
        f"{outcome.spec.duration_seconds:.0f}s per test)"
    )
    if outcome.failures:
        text += "\n\n" + render_failure_manifest(outcome.failures)
    return text


# ------------------------------------------------------------------ artifact


def campaign_artifact(outcome: CampaignOutcome) -> dict:
    """The JSON artifact: spec, per-trial results, leaderboard, failures.

    Deliberately wall-clock-free — a deterministic function of the
    completed results, so journal-resumed runs reproduce it byte for
    byte.
    """
    return {
        "format": ARTIFACT_FORMAT,
        "spec": outcome.spec.to_dict(),
        "leaderboard": [asdict(row) for row in build_leaderboard(outcome)],
        "results": [asdict(result) for result in outcome.completed],
        "failures": [
            {
                "index": failure.index,
                "name": failure.label,
                "reason": failure.reason,
                "attempts": failure.attempts,
            }
            for failure in outcome.failures
        ],
        "totals": {
            "tests": len(outcome.completed),
            "cells": len(outcome.results),
            "trials": outcome.total_trials,
            "flips": outcome.total_flips,
        },
    }


def save_artifact(outcome: CampaignOutcome, path: str | Path) -> None:
    """Atomically write the campaign artifact as JSON."""
    atomic_write(path, json.dumps(campaign_artifact(outcome), indent=2) + "\n")


def load_artifact(path: str | Path) -> dict:
    """Load and validate a ``dramdig-campaign-v1`` artifact.

    Raises:
        ValueError: not JSON, or not a campaign artifact.
    """
    try:
        record = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"not JSON: {error}") from None
    if not isinstance(record, dict) or record.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"not a {ARTIFACT_FORMAT} artifact (format="
            f"{record.get('format') if isinstance(record, dict) else None!r})"
        )
    return record


def render_artifact(artifact: dict) -> str:
    """Render a loaded artifact's leaderboard — the same bytes
    ``render_campaign`` produced for the run that saved it (modulo any
    failure manifest, which carries live-only detail)."""
    spec = artifact.get("spec", {})
    totals = artifact.get("totals", {})
    text = "campaign flip-yield leaderboard\n\n"
    text += _leaderboard_table(artifact.get("leaderboard", []))
    text += (
        f"\n\n{totals.get('tests', 0)}/{totals.get('cells', 0)} tests, "
        f"{totals.get('trials', 0)} hammer trials, "
        f"{totals.get('flips', 0)} observable flips "
        f"(spec seed {spec.get('seed', '?')}, "
        f"{float(spec.get('duration_seconds', 0.0)):.0f}s per test)"
    )
    failures = artifact.get("failures", [])
    if failures:
        lines = [f"grid failures ({len(failures)} cell(s) unrecovered):"]
        lines += [
            f"  {failure.get('name')}: {failure.get('reason')}"
            for failure in failures
        ]
        text += "\n\n" + "\n".join(lines)
    return text
