"""Batched double-sided aggressor selection via a compiled mapping.

``BeliefMapping.aim_row_neighbor`` computes aggressors one victim at a
time by solving a small GF(2) repair system per call — correct, and the
right model for an attacker holding a possibly-wrong belief, but far too
slow for campaign fuzzing where millions of victims are planned per
sweep. This module is the campaign fast path: translate every victim in
one batch, bump the row component, and encode back through the compiled
inverse — three matrix-parity kernels total, independent of victim count.

The planned aggressors land in the same (believed) bank at row ± 1, like
the scalar aim path; the *column* choice may differ (the scalar path
repairs by toggling preferred bits, the compiled path keeps the victim's
column), so the two are interchangeable for hammering — the fault model
cares about bank and row only — but not bit-identical in the addresses
they pick. :class:`~repro.rowhammer.hammer.DoubleSidedAttack` therefore
keeps the belief path as its default and takes a planner opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.belief import BeliefMapping
from repro.dram.compiled import CompiledMapping
from repro.dram.mapping import AddressMapping
from repro.obs import tracing as obs

__all__ = ["AggressorPlan", "CompiledAggressorPlanner"]


@dataclass(frozen=True)
class AggressorPlan:
    """Planned aggressor pairs for a batch of victims.

    Attributes:
        above: physical addresses one row above each victim (same bank).
        below: physical addresses one row below each victim (same bank).
        valid: lanes whose victim lies inside the mapping's address
            space *and* whose row has both neighbours in range;
            ``above``/``below`` are meaningless on invalid lanes.
    """

    above: np.ndarray
    below: np.ndarray
    valid: np.ndarray

    def __len__(self) -> int:
        return len(self.valid)

    @property
    def planned(self) -> int:
        """Victims that received a usable double-sided pair."""
        return int(np.count_nonzero(self.valid))


class CompiledAggressorPlanner:
    """Plans double-sided aggressor pairs in batch.

    Raises:
        SingularMappingError: when the mapping/belief has no GF(2)
            inverse — without DRAM→phys translation no aggressor can be
            constructed (the typed error, not a downstream ``TypeError``).
    """

    def __init__(self, compiled: CompiledMapping):
        # Touching the inverse tables up front surfaces the typed
        # SingularMappingError at construction instead of mid-campaign.
        compiled._inverse_tables  # noqa: B018 - intentional eager check
        self.compiled = compiled

    @classmethod
    def from_mapping(cls, mapping: AddressMapping) -> "CompiledAggressorPlanner":
        """Planner over a validated mapping (always invertible)."""
        return cls(mapping.compiled)

    @classmethod
    def from_belief(cls, belief: BeliefMapping) -> "CompiledAggressorPlanner":
        """Planner over a tool's belief.

        Raises:
            SingularMappingError: when the belief is not a bijection.
        """
        return cls(CompiledMapping.from_belief(belief, require_inverse=True))

    def plan(self, victims: np.ndarray) -> AggressorPlan:
        """Aggressor pairs for every victim, one batch of kernels."""
        compiled = self.compiled
        addrs = np.asarray(victims, dtype=np.uint64)
        banks, rows, columns = compiled.translate(addrs)
        # The translate kernels read only the low address_bits, so a
        # victim beyond the mapped space would silently alias onto some
        # in-space row — including rows 0 / rows-1, whose lanes would
        # then carry the wrong validity verdict. The scalar aim path
        # (BeliefMapping.aim_row_neighbor) refuses such victims; the
        # batch path must agree, not hammer the alias.
        in_space = addrs < np.uint64(1 << compiled.address_bits)
        valid = (
            in_space
            & (rows >= np.uint64(1))
            & (rows < np.uint64(compiled.rows - 1))
        )
        # Clamp invalid rows into range so encode never wraps; the valid
        # mask is what consumers must honour.
        safe_rows = np.clip(rows, np.uint64(1), np.uint64(max(compiled.rows - 2, 1)))
        above = compiled.encode(banks, safe_rows - np.uint64(1), columns)
        below = compiled.encode(banks, safe_rows + np.uint64(1), columns)
        obs.inc("rowhammer.planned_victims", int(addrs.size))
        obs.inc("rowhammer.planned_pairs", int(np.count_nonzero(valid)))
        return AggressorPlan(above=above, below=below, valid=valid)
