"""Rowhammer mitigations: TRR and ECC, layered over the fault model.

The paper motivates DRAMDig with the rowhammer attack literature; this
module adds the two deployed hardware defences so the library can also
answer the *defender's* question ("how much do my DIMM's mitigations
buy?"):

* **TRR (Target Row Refresh)** — the DRAM device samples aggressor
  activations with a small tracker; rows the tracker flags get their
  neighbours refreshed before charge disturbance accumulates. Plain
  double-sided hammering (two aggressors) is almost always caught; the
  TRRespass-style *many-sided* pattern floods the tracker with decoys so
  the true aggressors slip through — our model reproduces that bypass
  curve.
* **ECC (SECDED)** — one flipped bit per 64-bit word is corrected, two are
  detected (machine check), three or more can silently corrupt
  (:mod:`repro.dram.ecc` implements the actual code). Rowhammer flips are
  sparse, so ECC converts most raw flips into non-events, a fraction into
  crashes, and a sliver into silent corruption.

The extension bench (`benchmarks/test_bench_mitigations.py`) sweeps both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.ecc import EccOutcome, flips_outcome

__all__ = ["TrrModel", "MitigationStack", "MitigatedFlips"]


@dataclass(frozen=True)
class TrrModel:
    """A sampling Target-Row-Refresh implementation.

    Attributes:
        tracker_entries: aggressor rows the device can track at once.
        catch_probability: chance a *tracked* aggressor pair is neutralised
            within one refresh window.
    """

    tracker_entries: int = 4
    catch_probability: float = 0.95

    def __post_init__(self) -> None:
        if self.tracker_entries < 1:
            raise ValueError("tracker needs at least one entry")
        if not 0 <= self.catch_probability <= 1:
            raise ValueError("catch_probability must be a probability")

    def intercepts(self, distinct_aggressors: int, rng: np.random.Generator) -> bool:
        """Did TRR neutralise this window's hammering?

        With at most ``tracker_entries`` distinct aggressor rows every one
        is tracked; beyond that the sampler only sees a random subset, and
        the probability that the *true* aggressors are among the tracked
        ones falls as decoys dilute them (the TRRespass effect).
        """
        if distinct_aggressors < 1:
            raise ValueError("need at least one aggressor")
        if distinct_aggressors <= self.tracker_entries:
            return bool(rng.random() < self.catch_probability)
        dilution = self.tracker_entries / distinct_aggressors
        return bool(rng.random() < self.catch_probability * dilution)


@dataclass
class MitigatedFlips:
    """Flip accounting after the mitigation stack.

    Attributes:
        raw: flips the bare DRAM produced.
        stopped_by_trr: flips prevented because TRR refreshed the victim.
        corrected: flips ECC corrected transparently.
        detected: flips that raised a machine check (2 per word).
        silent: flips that defeated ECC (data corruption).
        observable: what an attacker scanning memory actually sees
            (silent corruption only, plus everything when ECC is absent).
    """

    raw: int = 0
    stopped_by_trr: int = 0
    corrected: int = 0
    detected: int = 0
    silent: int = 0
    observable: int = 0


@dataclass(frozen=True)
class MitigationStack:
    """The defences active on one machine.

    Attributes:
        trr: the TRR model, or None for pre-TRR DIMMs.
        ecc: whether the machine runs ECC DIMMs.
        words_per_row: 64-bit words per DRAM row (row_bytes / 8).
    """

    trr: TrrModel | None = None
    ecc: bool = False
    words_per_row: int = 1024

    def filter_window(
        self,
        raw_flips: int,
        distinct_aggressors: int,
        rng: np.random.Generator,
    ) -> MitigatedFlips:
        """Push one hammer window's raw flips through the stack."""
        if raw_flips < 0:
            raise ValueError("raw_flips must be non-negative")
        result = MitigatedFlips(raw=raw_flips)
        if raw_flips == 0:
            return result
        if self.trr is not None and self.trr.intercepts(distinct_aggressors, rng):
            result.stopped_by_trr = raw_flips
            return result
        if not self.ecc:
            result.observable = raw_flips
            return result
        # Scatter the flips over the row's words; per-word counts decide
        # the SECDED outcome.
        words = rng.integers(0, self.words_per_row, size=raw_flips)
        unique, counts = np.unique(words, return_counts=True)
        for count in counts:
            outcome = flips_outcome(int(count), rng)
            if outcome is EccOutcome.CORRECTED:
                result.corrected += int(count)
            elif outcome is EccOutcome.DETECTED:
                result.detected += int(count)
            else:  # SILENT (or pathological CLEAN alias)
                result.silent += int(count)
        result.observable = result.silent
        return result
