"""Campaign aggressor-planning bench: compiled batch vs scalar aiming.

The campaign fuzzer's hot loop is aggressor selection: every victim
needs a same-bank row ± 1 pair. The scalar path
(:meth:`~repro.dram.belief.BeliefMapping.aim_row_neighbor`) solves a
small GF(2) repair system per victim — the right model for an attacker
holding a possibly-wrong belief, and far too slow at campaign scale.
The compiled path (:class:`~repro.rowhammer.aggressors.CompiledAggressorPlanner`)
plans the whole victim batch with three matrix-parity kernels.

Before any timing is believed, both paths run over a shared sample and
must agree on every lane: same skip verdict (boundary rows *and*
victims outside the mapped address space), and — on plannable lanes —
the same believed (bank, row) for both aggressors. A speedup built on
different aim decisions would be worse than no number, so disagreement
raises. The perf gate (``scripts/check_perf_gate.py``) holds the
recorded speedup at ≥5× and the agreement flag at ``True``.

Also reported: one timed campaign trial through
:func:`~repro.rowhammer.campaign.campaign_trial_cell`, as the
end-to-end cost anchor for sizing sweeps (trials per wall second).
"""

from __future__ import annotations

import time

import numpy as np

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.rowhammer.aggressors import CompiledAggressorPlanner

__all__ = ["campaign_benches"]

_PLAN_POOL = 200_000
_SCALAR_SAMPLE = 2_000
_AGREEMENT_SAMPLE = 4_096


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall-clock seconds (best, not mean: least noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _check_agreement(mapping, belief, planner, victims: np.ndarray) -> None:
    """Both aim paths must agree lane for lane; raises on divergence."""
    compiled = mapping.compiled
    plan = planner.plan(victims)
    for index in range(victims.size):
        victim = int(victims[index])
        above = belief.aim_row_neighbor(victim, -1)
        below = belief.aim_row_neighbor(victim, +1)
        scalar_plans = above is not None and below is not None
        if scalar_plans != bool(plan.valid[index]):
            raise RuntimeError(
                f"aim disagreement at 0x{victim:x}: scalar "
                f"{'plans' if scalar_plans else 'skips'}, planner "
                f"{'plans' if plan.valid[index] else 'skips'}"
            )
        if not scalar_plans:
            continue
        for scalar_addr, batch_addr, delta in (
            (above, int(plan.above[index]), -1),
            (below, int(plan.below[index]), +1),
        ):
            scalar_dram = compiled.translate_one(scalar_addr)
            batch_dram = compiled.translate_one(batch_addr)
            if (scalar_dram.bank, scalar_dram.row) != (
                batch_dram.bank, batch_dram.row
            ):
                raise RuntimeError(
                    f"aggressor disagreement at 0x{victim:x} (row {delta:+d}): "
                    f"scalar bank/row ({scalar_dram.bank}, {scalar_dram.row}) "
                    f"vs planner ({batch_dram.bank}, {batch_dram.row})"
                )


def campaign_benches(machine_name: str = "No.2") -> dict:
    """Measure the campaign aggressor path; distil the BENCH section."""
    from repro.rowhammer.campaign import CampaignSpec, campaign_trial_cell

    machine_preset = preset(machine_name)
    mapping = machine_preset.mapping
    belief = BeliefMapping.from_mapping(mapping)
    planner = CompiledAggressorPlanner.from_mapping(mapping)
    rng = np.random.default_rng(0)
    # Victims over the full address space plus a deliberate out-of-space
    # tail: the agreement check must also pin the skip semantics the
    # scalar path applies beyond the mapped range.
    space = np.uint64(1 << mapping.geometry.address_bits)
    pool = rng.integers(0, space, _PLAN_POOL, dtype=np.uint64)
    agreement = pool[:_AGREEMENT_SAMPLE].copy()
    agreement[-16:] |= space
    _check_agreement(mapping, belief, planner, agreement)

    plan_seconds = _best_of(lambda: planner.plan(pool))
    sample = pool[:_SCALAR_SAMPLE]

    def scalar_aim():
        for victim in sample:
            belief.aim_row_neighbor(int(victim), -1)
            belief.aim_row_neighbor(int(victim), +1)

    scalar_seconds = _best_of(scalar_aim, repeats=3)
    planner_rate = _PLAN_POOL / plan_seconds
    scalar_rate = _SCALAR_SAMPLE / scalar_seconds

    spec = CampaignSpec(
        machines=(machine_name,), variants=("double_sided",),
        mitigations=("none",), tests=1, duration_seconds=30.0,
    )
    trial_seconds = _best_of(
        lambda: campaign_trial_cell(
            "bench", machine_name, "double_sided", "none", 1, 0,
            spec.duration_seconds,
        ),
        repeats=3,
    )
    hammer_trials = spec.hammer_trials_per_test()

    return {
        "machine": machine_name,
        "plan_pool": _PLAN_POOL,
        "scalar_sample": _SCALAR_SAMPLE,
        "agreement_sample": _AGREEMENT_SAMPLE,
        "plan_seconds": plan_seconds,
        "planner_victims_per_s": planner_rate,
        "scalar_victims_per_s": scalar_rate,
        "planner_speedup_vs_scalar": planner_rate / scalar_rate,
        "aim_agreement": True,
        "trial_hammer_trials": hammer_trials,
        "trial_seconds": trial_seconds,
        "hammer_trials_per_s": hammer_trials / trial_seconds,
    }
