"""Rowhammer attack variants beyond double-sided (paper Section II-B).

The paper's background enumerates three hammering techniques; Table III
evaluates only double-sided, but the substrate supports all three, and
their relative effectiveness is a well-known ordering this module
reproduces:

* **double-sided** — both neighbours of the victim hammered; the
  strongest (implemented in :mod:`repro.rowhammer.hammer`).
* **single-sided** — two same-bank rows hammered alternately (the classic
  2014 technique); each aggressor only disturbs its neighbours from one
  side, and on moderately vulnerable DIMMs (the Table III machines) the
  per-aggressor activation budget sits below the single-sided threshold:
  flips are rare to non-existent.
* **one-location** — a single row re-opened continuously, relying on the
  controller's closed-page policy to keep activating it. The lone
  aggressor receives the *entire* activation budget, which crosses the
  single-sided threshold — weaker than double-sided, stronger than
  classic single-sided on closed-page systems.
"""

from __future__ import annotations

import numpy as np

from repro.dram.belief import BeliefMapping
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.faultmodel import RowhammerFaultModel
from repro.rowhammer.hammer import HammerConfig, HammerReport, _scaled, _test_effectiveness
from repro.rowhammer.mitigations import MitigationStack

__all__ = ["single_sided_test", "one_location_test"]


def _book_window(
    report: HammerReport,
    raw: int,
    hammered_rows: int,
    mitigations: MitigationStack | None,
    rng,
) -> None:
    """Fold one window's raw flips into the report, mitigations applied.

    With ``mitigations=None`` no RNG draw happens and the accounting is
    exactly the pre-mitigation behaviour (``flips == raw_flips``).
    """
    report.raw_flips += raw
    if mitigations is None:
        report.flips += raw
        return
    filtered = mitigations.filter_window(raw, hammered_rows, rng)
    report.stopped_by_trr += filtered.stopped_by_trr
    report.ecc_corrected += filtered.corrected
    report.ecc_detected += filtered.detected
    report.ecc_silent += filtered.silent
    report.flips += filtered.observable


def single_sided_test(
    machine: SimulatedMachine,
    belief: BeliefMapping,
    vulnerability: float,
    config: HammerConfig | None = None,
    seed: int = 0,
    mitigations: MitigationStack | None = None,
) -> HammerReport:
    """Classic single-sided hammering: random same-bank row pairs.

    The attacker uses its believed mapping only to pick same-bank pairs
    (any SBDR pair bypasses the row buffer); each aggressor's neighbours
    receive one-sided disturbance at half the activation budget.
    ``mitigations`` pushes each window's raw flips through a TRR/ECC
    stack, exactly as the double-sided driver does.
    """
    config = config if config is not None else HammerConfig()
    truth = machine.ground_truth
    fault_model = RowhammerFaultModel(
        rows_per_bank=truth.geometry.rows_per_bank,
        vulnerability=vulnerability,
        seed=machine.seed,
    )
    rng = np.random.default_rng((seed, 0x551))
    pages = machine.allocate(
        int(machine.total_bytes * config.buffer_fraction), "hugepages"
    )
    window_seconds = config.refresh_window_ms / 1e3
    trials = int(config.duration_seconds / (window_seconds + config.trial_overhead_seconds))
    activations_each = int(window_seconds * 1e9 / (2 * config.activation_ns))
    effectiveness = _test_effectiveness(rng, config.test_variability)

    report = HammerReport(duration_seconds=config.duration_seconds)
    bases = pages.sample_addresses(trials, rng)
    for trial in range(trials):
        report.trials += 1
        first = int(bases[trial])
        # Believed same-bank partner: a far row in the same believed bank.
        partner = belief.aim_row_neighbor(first, 64)
        if partner is None or not pages.has_page(partner):
            report.skipped += 1
            continue
        flips = 0
        for aggressor in (first, partner):
            bank = truth.bank_of(aggressor)
            row = truth.row_of(aggressor)
            for neighbor in (row - 1, row + 1):
                if not 0 <= neighbor < truth.geometry.rows_per_bank:
                    continue
                outcome = fault_model.hammer(
                    bank=bank,
                    victim_row=neighbor,
                    activations_above=activations_each if neighbor == row + 1 else 0,
                    activations_below=activations_each if neighbor == row - 1 else 0,
                    trial=trial,
                )
                flips += outcome.flips
        report.aimed_single += 1
        raw = _scaled(flips, effectiveness, rng)
        _book_window(report, raw, 2, mitigations, rng)
    machine.charge_analysis(config.duration_seconds * 1e9)
    return report


def one_location_test(
    machine: SimulatedMachine,
    belief: BeliefMapping,
    vulnerability: float,
    config: HammerConfig | None = None,
    seed: int = 0,
    mitigations: MitigationStack | None = None,
) -> HammerReport:
    """One-location hammering against a closed-page memory controller.

    A single aggressor row receives the whole activation budget: every
    access re-activates it because the controller precharges eagerly. The
    believed mapping is only needed to enumerate distinct rows to target.
    """
    config = config if config is not None else HammerConfig()
    truth = machine.ground_truth
    fault_model = RowhammerFaultModel(
        rows_per_bank=truth.geometry.rows_per_bank,
        vulnerability=vulnerability,
        seed=machine.seed,
    )
    rng = np.random.default_rng((seed, 0x1C1))
    pages = machine.allocate(
        int(machine.total_bytes * config.buffer_fraction), "hugepages"
    )
    window_seconds = config.refresh_window_ms / 1e3
    trials = int(config.duration_seconds / (window_seconds + config.trial_overhead_seconds))
    activations = int(window_seconds * 1e9 / config.activation_ns)
    effectiveness = _test_effectiveness(rng, config.test_variability)

    report = HammerReport(duration_seconds=config.duration_seconds)
    aggressors = pages.sample_addresses(trials, rng)
    for trial in range(trials):
        report.trials += 1
        aggressor = int(aggressors[trial])
        bank = truth.bank_of(aggressor)
        row = truth.row_of(aggressor)
        flips = 0
        for neighbor in (row - 1, row + 1):
            if not 0 <= neighbor < truth.geometry.rows_per_bank:
                continue
            outcome = fault_model.hammer(
                bank=bank,
                victim_row=neighbor,
                activations_above=activations if neighbor == row + 1 else 0,
                activations_below=activations if neighbor == row - 1 else 0,
                trial=trial,
            )
            flips += outcome.flips
        report.aimed_single += 1
        raw = _scaled(flips, effectiveness, rng)
        _book_window(report, raw, 1, mitigations, rng)
    machine.charge_analysis(config.duration_seconds * 1e9)
    return report
