"""The rowhammer fault model: which cells flip under which hammering.

Grounded in the Kim et al. (ISCA 2014) characterization the paper builds
on:

* each DRAM row contains a machine-specific number of *weak cells*
  (sampled per row from a Poisson distribution whose mean is the preset's
  ``hammer_vulnerability``);
* a weak cell flips when its row's *neighbours* are activated enough
  times within one refresh window — double-sided hammering (both
  neighbours) is far more effective than single-sided (one neighbour);
* activations of non-adjacent rows do nothing, and everything resets at
  the next refresh of the victim row.

The model is deterministic given (machine seed, bank, row): weak-cell
counts are derived from a counter-based RNG, so repeated experiments on
the same simulated machine hammer the same weak rows — exactly like real
DIMMs, where flips reproduce at fixed physical locations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rowhammer.remapping import remap_row

__all__ = ["HammerOutcome", "RowhammerFaultModel"]

# Activation counts (per aggressor, within one 64 ms refresh window)
# needed for the two hammer modes to reach full flip probability.
DOUBLE_SIDED_THRESHOLD = 50_000
SINGLE_SIDED_THRESHOLD = 450_000


@dataclass(frozen=True)
class HammerOutcome:
    """Result of hammering one victim row for one refresh window.

    Attributes:
        bank: victim bank.
        row: victim row.
        flips: bit flips induced in the victim row.
        mode: "double", "single" or "none" — what the aggressor layout
            actually amounted to in physical DRAM.
    """

    bank: int
    row: int
    flips: int
    mode: str


class RowhammerFaultModel:
    """Weak-cell population and flip mechanics for one machine.

    Args:
        rows_per_bank: geometry bound for validity checks.
        vulnerability: mean weak cells per row (the preset's
            ``hammer_vulnerability``); 0 disables flips entirely.
        seed: machine identity — same seed, same weak cells.
        row_remap: the DIMM's internal logical-to-physical row scheme
            (see :mod:`repro.rowhammer.remapping`); "none" for parts whose
            logical order is physical order.
    """

    def __init__(
        self,
        rows_per_bank: int,
        vulnerability: float,
        seed: int = 0,
        row_remap: str = "none",
    ):
        if rows_per_bank < 2:
            raise ValueError("need at least two rows per bank")
        if vulnerability < 0:
            raise ValueError("vulnerability must be non-negative")
        remap_row(row_remap, 0)  # validate the scheme name eagerly
        self.rows_per_bank = rows_per_bank
        self.vulnerability = vulnerability
        self.seed = seed
        self.row_remap = row_remap

    # ------------------------------------------------------------ weak cells

    def weak_cells(self, bank: int, row: int) -> int:
        """Weak-cell count of one row (deterministic per machine)."""
        self._check_row(row)
        rng = np.random.default_rng((self.seed, bank, row))
        return int(rng.poisson(self.vulnerability))

    # -------------------------------------------------------------- hammering

    def hammer(
        self,
        bank: int,
        victim_row: int,
        activations_above: int,
        activations_below: int,
        trial: int = 0,
    ) -> HammerOutcome:
        """Hammer a victim for one refresh window.

        Args:
            bank: the victim's bank.
            victim_row: the victim's row index.
            activations_above: activations of physical row ``victim - 1``.
            activations_below: activations of physical row ``victim + 1``.
            trial: experiment counter; decorrelates the per-trial flip draw
                while keeping the weak-cell population fixed.
        """
        self._check_row(victim_row)
        if activations_above < 0 or activations_below < 0:
            raise ValueError("activation counts must be non-negative")
        both = min(activations_above, activations_below)
        either = max(activations_above, activations_below)
        if both * 2 >= DOUBLE_SIDED_THRESHOLD:
            mode = "double"
            intensity = min(1.0, both * 2 / (2 * DOUBLE_SIDED_THRESHOLD))
        elif either >= SINGLE_SIDED_THRESHOLD:
            mode = "single"
            intensity = 0.08 * min(1.0, either / (2 * SINGLE_SIDED_THRESHOLD))
        else:
            return HammerOutcome(bank=bank, row=victim_row, flips=0, mode="none")
        weak = self.weak_cells(bank, victim_row)
        if weak == 0:
            return HammerOutcome(bank=bank, row=victim_row, flips=0, mode=mode)
        rng = np.random.default_rng((self.seed, bank, victim_row, trial, 0x4A4))
        flips = int(rng.binomial(weak, intensity))
        return HammerOutcome(bank=bank, row=victim_row, flips=flips, mode=mode)

    def window_flips(
        self, bank: int, logical_activations: dict[int, int], trial: int = 0
    ) -> int:
        """Flips from one refresh window of activity in one bank.

        Takes *logical* row activation counts (what the attacker produced
        through the memory controller), translates them to physical rows
        through the DIMM's remap, and applies the disturbance model to
        every physically plausible victim. This is the entry point attack
        drivers use; :meth:`hammer` remains the physical-row primitive.
        """
        physical: dict[int, int] = {}
        for row, count in logical_activations.items():
            self._check_row(row)
            if count < 0:
                raise ValueError("activation counts must be non-negative")
            physical_row = remap_row(self.row_remap, row)
            physical[physical_row] = physical.get(physical_row, 0) + count
        candidates: set[int] = set()
        for row in physical:
            for neighbor in (row - 1, row + 1):
                if 0 <= neighbor < self.rows_per_bank:
                    candidates.add(neighbor)
        flips = 0
        for victim in candidates:
            outcome = self.hammer(
                bank=bank,
                victim_row=victim,
                activations_above=physical.get(victim - 1, 0),
                activations_below=physical.get(victim + 1, 0),
                trial=trial,
            )
            flips += outcome.flips
        return flips

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range 0..{self.rows_per_bank - 1}")
