"""Rowhammer substrate: fault model, double-sided attack driver, assessment."""

from repro.rowhammer.aggressors import AggressorPlan, CompiledAggressorPlanner
from repro.rowhammer.assess import AssessmentReport, assess_vulnerability
from repro.rowhammer.campaign import (
    CampaignOutcome,
    CampaignResult,
    CampaignSpec,
    LeaderboardRow,
    build_leaderboard,
    render_campaign,
    run_campaign,
)
from repro.rowhammer.faultmodel import (
    DOUBLE_SIDED_THRESHOLD,
    SINGLE_SIDED_THRESHOLD,
    HammerOutcome,
    RowhammerFaultModel,
)
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig, HammerReport
from repro.rowhammer.mitigations import MitigatedFlips, MitigationStack, TrrModel
from repro.rowhammer.remapping import (
    ROW_REMAPS,
    adjacency_agreement,
    inverse_remap_row,
    remap_row,
)
from repro.rowhammer.variants import one_location_test, single_sided_test

__all__ = [
    "AggressorPlan",
    "CompiledAggressorPlanner",
    "AssessmentReport",
    "assess_vulnerability",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "LeaderboardRow",
    "build_leaderboard",
    "render_campaign",
    "run_campaign",
    "DOUBLE_SIDED_THRESHOLD",
    "SINGLE_SIDED_THRESHOLD",
    "HammerOutcome",
    "RowhammerFaultModel",
    "DoubleSidedAttack",
    "HammerConfig",
    "HammerReport",
    "MitigatedFlips",
    "MitigationStack",
    "TrrModel",
    "ROW_REMAPS",
    "adjacency_agreement",
    "inverse_remap_row",
    "remap_row",
    "one_location_test",
    "single_sided_test",
]
