"""Vulnerability assessment: the paper's stated end-use of DRAMDig.

"DRAMDig enables users to test how vulnerable their computers are to the
rowhammer problem" — this module packages that workflow: reverse-engineer
the mapping with a chosen tool, run a series of timed double-sided tests,
and produce a report with flip counts, aim accuracy and a qualitative
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.belief import BeliefMapping
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig, HammerReport

__all__ = ["AssessmentReport", "assess_vulnerability"]


@dataclass
class AssessmentReport:
    """Multi-test vulnerability summary.

    Attributes:
        tests: individual timed-test reports.
        total_flips: flips across all tests.
        verdict: qualitative classification.
    """

    tests: list[HammerReport] = field(default_factory=list)

    @property
    def total_flips(self) -> int:
        return sum(test.flips for test in self.tests)

    @property
    def verdict(self) -> str:
        """Qualitative classification by flips per 5-minute-equivalent."""
        if not self.tests:
            return "untested"
        minutes = sum(test.duration_seconds for test in self.tests) / 60.0
        if minutes <= 0:
            # Tests ran but accumulated no simulated time (degenerate
            # config). Flips observed in zero minutes are an unbounded
            # rate, not an absence of evidence: never "untested".
            return "highly vulnerable" if self.total_flips > 0 else "untested"
        rate = self.total_flips / minutes * 5.0
        if rate == 0:
            return "no flips observed"
        if rate < 20:
            return "weakly vulnerable"
        if rate < 300:
            return "vulnerable"
        return "highly vulnerable"

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        per_test = ", ".join(str(test.flips) for test in self.tests)
        accuracy = (
            sum(test.aim_accuracy for test in self.tests) / len(self.tests)
            if self.tests
            else 0.0
        )
        return (
            f"{len(self.tests)} tests, flips per test: [{per_test}], "
            f"total {self.total_flips}, mean aim accuracy {accuracy:.0%} "
            f"-> {self.verdict}"
        )


def assess_vulnerability(
    machine: SimulatedMachine,
    belief: BeliefMapping,
    vulnerability: float,
    tests: int = 5,
    config: HammerConfig | None = None,
    seed: int = 0,
    decoy_rows: int = 0,
) -> AssessmentReport:
    """Run ``tests`` timed double-sided tests and build a report.

    Args:
        machine: the machine under test.
        belief: the mapping used for aiming (from any tool).
        vulnerability: the machine's weak-cell density (per-row mean).
        tests: number of timed tests (paper: 5).
        config: hammer parameters (paper defaults: 5-minute tests).
        seed: base seed; test *i* uses ``seed + i``.
        decoy_rows: extra rows hammered per window (TRRespass-style
            many-sided pattern; 0 keeps the plain double-sided attack).
    """
    if tests < 1:
        raise ValueError("need at least one test")
    attack = DoubleSidedAttack(machine, config=config, vulnerability=vulnerability)
    report = AssessmentReport()
    for index in range(tests):
        report.tests.append(
            attack.run(belief, seed=seed + index, decoy_rows=decoy_rows)
        )
    return report
