"""DRAMDig reproduction: knowledge-assisted uncovering of DRAM address
mappings (Wang, Zhang, Cheng, Nepal — DAC 2020), on a simulated memory
substrate.

Quickstart::

    from repro import DramDig, SimulatedMachine, preset

    machine = SimulatedMachine.from_preset(preset("No.1"))
    result = DramDig().run(machine)
    print(result.mapping.describe())

Package layout:

* :mod:`repro.analysis`   — GF(2) linear algebra, bit utilities, latency stats.
* :mod:`repro.dram`       — DDR specs, geometry, address mappings, presets.
* :mod:`repro.memctrl`    — memory-controller and timing-channel simulator.
* :mod:`repro.machine`    — simulated machine (allocator, clock, sysinfo).
* :mod:`repro.core`       — the DRAMDig pipeline (the paper's contribution).
* :mod:`repro.faults`     — deterministic fault injection and recovery policy.
* :mod:`repro.baselines`  — DRAMA and Xiao et al. comparators.
* :mod:`repro.rowhammer`  — fault model and double-sided attack driver.
* :mod:`repro.evalsuite`  — one module per paper table/figure.
"""

from repro.baselines import DramaTool, XiaoTool
from repro.core import DramDig, DramDigConfig, DramDigResult
from repro.dram import (
    AddressMapping,
    DramAddress,
    DramGeometry,
    MachinePreset,
    preset,
    preset_names,
)
from repro.dram.belief import BeliefMapping
from repro.faults import (
    DegradationEvent,
    FaultInjector,
    FaultProfile,
    RecoveryPolicy,
    get_profile,
    profile_names,
)
from repro.machine import SimulatedMachine
from repro.rowhammer import DoubleSidedAttack, HammerConfig, assess_vulnerability

__version__ = "1.0.0"

__all__ = [
    "DramaTool",
    "XiaoTool",
    "DramDig",
    "DramDigConfig",
    "DramDigResult",
    "AddressMapping",
    "DramAddress",
    "DramGeometry",
    "MachinePreset",
    "preset",
    "preset_names",
    "BeliefMapping",
    "DegradationEvent",
    "FaultInjector",
    "FaultProfile",
    "RecoveryPolicy",
    "get_profile",
    "profile_names",
    "SimulatedMachine",
    "DoubleSidedAttack",
    "HammerConfig",
    "assess_vulnerability",
    "__version__",
]
