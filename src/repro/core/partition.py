"""Step 2, phase 2 — physical-address partition (paper Algorithm 2).

Partition the selected pool into ``#bank`` piles of mutually
same-bank-different-row (SBDR) addresses:

* pick a random pivot ``p`` from the pool, measure it against everything
  remaining; the addresses reading slow are SBDR with ``p`` and form its
  pile;
* accept the pile when its size is within ``1 ± delta`` of the ideal
  ``pool / #bank`` (paper: delta = 0.2) — noise or an unlucky pivot
  otherwise leaves the pool untouched and a new pivot is drawn;
* stop when ``per_threshold`` (paper: 85%) of the pool has been
  partitioned or all ``#bank`` piles were found.

Two practical notes, both visible in the paper's own discussion of noise:

* A pool address that shares *bank and row* with the pivot reads fast and
  is left out of the pile (it differs from the pivot only in bank-shared
  column bits). These few per-pile stragglers are exactly why the
  ``per_threshold`` slack exists.
* Algorithm 2's printed stop condition (``phys_pool.size() >
  per_threshold * pool_sz``) reads inverted; the text ("it stops when
  enough addresses have been partitioned") makes the intent clear and we
  implement that: stop once the *partitioned fraction* reaches
  ``per_threshold``.

Accepted piles are re-verified with a second measurement sweep: refresh
spikes only ever add latency, so an address that fails to read slow twice
in a row is dropped from the pile. This keeps Algorithm 3's per-pile
constancy analysis clean at realistic noise levels.

Robustness extensions (all seeded-deterministic):

* **Pivot blacklisting** — a pivot whose pile failed the size tolerance
  is excluded from subsequent draws. Under deterministic noise the old
  behaviour could redraw the same bad address forever, burning the whole
  round budget on it.
* **Re-verification escalation** — an oversized pile is re-swept (up to
  ``max_verify_sweeps`` times) after a simulated backoff sleep, so
  transient mis-read windows expire and the false members fall out,
  instead of rejecting the pivot outright.
* **Round-budget escalation** — when the budget runs out and
  ``max_escalations`` allows, the partition sleeps, clears the blacklist
  and earns a fresh budget rather than raising a hard
  :class:`PartitionError`.
* **Stop-reason diagnostics** — every exit records *why* on
  :attr:`PartitionResult.stop_reason`; running dry with fewer than
  ``#bank`` piles additionally emits a :class:`RuntimeWarning`, so
  Algorithm 3 callers can distinguish "converged" from "ran dry".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.arrays import sorted_unique
from repro.core.probe import LatencyProbe
from repro.dram.errors import PartitionError
from repro.obs import tracing as obs

__all__ = ["PartitionConfig", "PartitionResult", "partition_pool"]


@dataclass(frozen=True)
class PartitionConfig:
    """Algorithm 2 tuning (defaults are the paper's).

    Attributes:
        delta: pile-size tolerance around the ideal ``pool / #bank``.
        per_threshold: partitioned fraction at which to stop.
        max_rounds_factor: round budget per bank.
        verify_members: re-measure accepted piles once (noise hygiene).
        blacklist_rejected: exclude rejected pivots from later draws.
        max_verify_sweeps: total verification sweeps allowed for an
            oversized pile (1 = the single classic sweep; more enables
            backoff-and-resweep escalation against sticky mis-reads).
        verify_backoff_s: simulated sleep before each escalated sweep,
            doubled per extra sweep, letting transient windows expire.
        max_escalations: fresh round budgets granted on exhaustion before
            raising :class:`PartitionError` (0 = the seed fail-fast).
        escalation_backoff_s: simulated sleep when a budget is granted,
            doubled per escalation.
    """

    delta: float = 0.2
    per_threshold: float = 0.85
    max_rounds_factor: int = 8
    verify_members: bool = True
    blacklist_rejected: bool = True
    max_verify_sweeps: int = 1
    verify_backoff_s: float = 0.5
    max_escalations: int = 0
    escalation_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if not 0 < self.per_threshold <= 1:
            raise ValueError("per_threshold must be in (0, 1]")
        if self.max_rounds_factor < 1:
            raise ValueError("max_rounds_factor must be at least 1")
        if self.max_verify_sweeps < 1:
            raise ValueError("max_verify_sweeps must be at least 1")
        if self.verify_backoff_s < 0:
            raise ValueError("verify_backoff_s must be non-negative")
        if self.max_escalations < 0:
            raise ValueError("max_escalations must be non-negative")
        if self.escalation_backoff_s < 0:
            raise ValueError("escalation_backoff_s must be non-negative")


@dataclass
class PartitionResult:
    """Outcome of Algorithm 2.

    Attributes:
        piles: pivot address -> member addresses (pivot *not* included).
        leftovers: pool addresses never placed into an accepted pile.
        rounds: pivots tried (accepted + rejected).
        rejected_piles: pivots whose pile size fell outside tolerance.
        stop_reason: why the partition loop exited — "complete" (all
            piles found), "threshold" (partitioned fraction reached),
            "pool-exhausted" (remaining pool too small for another pile).
        escalations: fresh round budgets granted on exhaustion.
        verify_resweeps: escalated verification sweeps performed.
    """

    piles: dict[int, np.ndarray] = field(default_factory=dict)
    leftovers: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint64))
    rounds: int = 0
    rejected_piles: int = 0
    stop_reason: str = ""
    escalations: int = 0
    verify_resweeps: int = 0

    @property
    def pile_count(self) -> int:
        """Number of accepted piles."""
        return len(self.piles)

    @property
    def ran_dry(self) -> bool:
        """True when the partition stopped early without converging."""
        return self.stop_reason == "pool-exhausted"

    def partitioned_count(self) -> int:
        """Addresses placed in piles, pivots included."""
        return sum(members.size + 1 for members in self.piles.values())


def partition_pool(
    probe: LatencyProbe,
    pool: np.ndarray,
    num_banks: int,
    rng: np.random.Generator,
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Run Algorithm 2.

    Raises:
        PartitionError: when the round budget (including any escalations)
            is exhausted before either all piles are found or the
            partitioned fraction reaches the threshold — on real machines
            the signature of a mis-calibrated threshold or wrong
            ``#bank``.
    """
    config = config if config is not None else PartitionConfig()
    pool = sorted_unique(np.asarray(pool, dtype=np.uint64))
    pool_size = int(pool.size)
    if num_banks < 2:
        raise PartitionError(f"#banks must be at least 2, got {num_banks}")
    if pool_size < 2 * num_banks:
        raise PartitionError(
            f"pool of {pool_size} addresses cannot form {num_banks} piles"
        )
    ideal_pile = pool_size / num_banks
    low = (1.0 - config.delta) * ideal_pile
    high = (1.0 + config.delta) * ideal_pile
    budget = config.max_rounds_factor * num_banks
    max_rounds = budget

    result = PartitionResult()
    remaining = pool
    blacklist: set[int] = set()
    while result.pile_count < num_banks:
        partitioned_fraction = 1.0 - remaining.size / pool_size
        if partitioned_fraction >= config.per_threshold:
            result.stop_reason = "threshold"
            break
        if result.rounds >= max_rounds:
            if result.escalations < config.max_escalations:
                # Earn a fresh budget instead of dying: sleep (simulated)
                # so transient conditions expire, forget the blacklist —
                # old rejections may have been the noise's fault — and go
                # around again.
                result.escalations += 1
                obs.inc("partition.escalations")
                blacklist.clear()
                backoff_s = config.escalation_backoff_s * 2 ** (result.escalations - 1)
                probe.machine.charge_analysis(backoff_s * 1e9)
                max_rounds += budget
            else:
                raise PartitionError(
                    f"no convergence after {result.rounds} rounds: "
                    f"{result.pile_count}/{num_banks} piles, "
                    f"{partitioned_fraction:.0%} partitioned, "
                    f"{result.rejected_piles} pivots rejected"
                )
        if remaining.size < max(2, low):
            result.stop_reason = "pool-exhausted"
            warnings.warn(
                f"partition ran dry: {result.pile_count}/{num_banks} piles "
                f"with {remaining.size} addresses left "
                f"({partitioned_fraction:.0%} partitioned) — too few for "
                f"another tolerable pile (need about {low:.0f})",
                RuntimeWarning,
                stacklevel=2,
            )
            break
        result.rounds += 1
        pivot_index = _draw_pivot(remaining, blacklist, rng, config)
        if pivot_index is None:
            # Every remaining address has already failed as a pivot; more
            # rounds would redraw known-bad pivots forever.
            raise PartitionError(
                f"no convergence after {result.rounds} rounds: all "
                f"{remaining.size} remaining pivot candidates rejected "
                f"({result.pile_count}/{num_banks} piles, "
                f"{partitioned_fraction:.0%} partitioned)"
            )
        pivot = int(remaining[pivot_index])
        others = np.delete(remaining, pivot_index)
        members = others[probe.conflict_mask(pivot, others)]
        if config.verify_members and members.size:
            members = members[probe.conflict_mask(pivot, members)]
            members = _escalate_verification(
                probe, pivot, members, high, config, result
            )
        pile_size = members.size + 1  # pivot belongs to its own pile
        obs.inc("partition.pivots")
        if low <= pile_size <= high:
            result.piles[pivot] = members
            obs.observe("partition.pile_size", pile_size)
            # ``members`` is a mask-filtered subset of ``remaining`` (both
            # sorted), so instead of testing every remaining address for
            # membership, binary-search the (much smaller) member set's
            # positions and knock them out directly.
            keep = np.ones(remaining.shape, dtype=bool)
            keep[np.searchsorted(remaining, members)] = False
            keep[pivot_index] = False
            remaining = remaining[keep]
        else:
            result.rejected_piles += 1
            obs.inc("partition.pivot_retries")
            if config.blacklist_rejected:
                blacklist.add(pivot)
    else:
        result.stop_reason = "complete"
    result.leftovers = remaining
    return result


def _draw_pivot(
    remaining: np.ndarray,
    blacklist: set[int],
    rng: np.random.Generator,
    config: PartitionConfig,
) -> int | None:
    """Index of the next pivot, skipping blacklisted addresses.

    Draws identically to the classic uniform draw while the blacklist is
    empty (the common case), so runs without rejections consume the tool
    RNG exactly as before. Returns None when every candidate is
    blacklisted.
    """
    if not (config.blacklist_rejected and blacklist):
        return int(rng.integers(remaining.size))
    eligible = np.flatnonzero(
        ~np.isin(remaining, np.fromiter(blacklist, dtype=np.uint64, count=len(blacklist)))
    )
    if eligible.size == 0:
        return None
    return int(eligible[int(rng.integers(eligible.size))])


def _escalate_verification(
    probe: LatencyProbe,
    pivot: int,
    members: np.ndarray,
    high: float,
    config: PartitionConfig,
    result: PartitionResult,
) -> np.ndarray:
    """Re-sweep a pile over the full doubling-backoff ladder.

    Sticky mis-reads survive an immediate re-measurement — the same pair
    lies identically within one stickiness window — but not a re-sweep
    after the window expired. The window length is unknown, so no-drop
    sweeps prove nothing (they may all sit inside one window): the only
    safe policy is to climb the whole ladder, whose doubling backoffs
    defeat any window up to about the final rung. Refresh spikes only
    add latency, so true members never fall out; the pile can only
    shrink toward the truth.
    """
    del high  # acceptance is judged by the caller, after the ladder
    sweeps = 2  # conflict_mask + the classic verify sweep already ran
    backoff_s = config.verify_backoff_s
    while sweeps < config.max_verify_sweeps + 1 and members.size:
        probe.machine.charge_analysis(backoff_s * 1e9)
        members = members[probe.conflict_mask(pivot, members)]
        result.verify_resweeps += 1
        obs.inc("partition.verify_resweeps")
        sweeps += 1
        backoff_s *= 2.0
    return members
