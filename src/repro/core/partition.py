"""Step 2, phase 2 — physical-address partition (paper Algorithm 2).

Partition the selected pool into ``#bank`` piles of mutually
same-bank-different-row (SBDR) addresses:

* pick a random pivot ``p`` from the pool, measure it against everything
  remaining; the addresses reading slow are SBDR with ``p`` and form its
  pile;
* accept the pile when its size is within ``1 ± delta`` of the ideal
  ``pool / #bank`` (paper: delta = 0.2) — noise or an unlucky pivot
  otherwise leaves the pool untouched and a new pivot is drawn;
* stop when ``per_threshold`` (paper: 85%) of the pool has been
  partitioned or all ``#bank`` piles were found.

Two practical notes, both visible in the paper's own discussion of noise:

* A pool address that shares *bank and row* with the pivot reads fast and
  is left out of the pile (it differs from the pivot only in bank-shared
  column bits). These few per-pile stragglers are exactly why the
  ``per_threshold`` slack exists.
* Algorithm 2's printed stop condition (``phys_pool.size() >
  per_threshold * pool_sz``) reads inverted; the text ("it stops when
  enough addresses have been partitioned") makes the intent clear and we
  implement that: stop once the *partitioned fraction* reaches
  ``per_threshold``.

Accepted piles are re-verified with a second measurement sweep: refresh
spikes only ever add latency, so an address that fails to read slow twice
in a row is dropped from the pile. This keeps Algorithm 3's per-pile
constancy analysis clean at realistic noise levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.arrays import sorted_unique
from repro.core.probe import LatencyProbe
from repro.dram.errors import PartitionError

__all__ = ["PartitionConfig", "PartitionResult", "partition_pool"]


@dataclass(frozen=True)
class PartitionConfig:
    """Algorithm 2 tuning (defaults are the paper's)."""

    delta: float = 0.2
    per_threshold: float = 0.85
    max_rounds_factor: int = 8
    verify_members: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if not 0 < self.per_threshold <= 1:
            raise ValueError("per_threshold must be in (0, 1]")
        if self.max_rounds_factor < 1:
            raise ValueError("max_rounds_factor must be at least 1")


@dataclass
class PartitionResult:
    """Outcome of Algorithm 2.

    Attributes:
        piles: pivot address -> member addresses (pivot *not* included).
        leftovers: pool addresses never placed into an accepted pile.
        rounds: pivots tried (accepted + rejected).
        rejected_piles: pivots whose pile size fell outside tolerance.
    """

    piles: dict[int, np.ndarray] = field(default_factory=dict)
    leftovers: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint64))
    rounds: int = 0
    rejected_piles: int = 0

    @property
    def pile_count(self) -> int:
        """Number of accepted piles."""
        return len(self.piles)

    def partitioned_count(self) -> int:
        """Addresses placed in piles, pivots included."""
        return sum(members.size + 1 for members in self.piles.values())


def partition_pool(
    probe: LatencyProbe,
    pool: np.ndarray,
    num_banks: int,
    rng: np.random.Generator,
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Run Algorithm 2.

    Raises:
        PartitionError: when the round budget is exhausted before either
            all piles are found or the partitioned fraction reaches the
            threshold — on real machines the signature of a mis-calibrated
            threshold or wrong ``#bank``.
    """
    config = config if config is not None else PartitionConfig()
    pool = sorted_unique(np.asarray(pool, dtype=np.uint64))
    pool_size = int(pool.size)
    if num_banks < 2:
        raise PartitionError(f"#banks must be at least 2, got {num_banks}")
    if pool_size < 2 * num_banks:
        raise PartitionError(
            f"pool of {pool_size} addresses cannot form {num_banks} piles"
        )
    ideal_pile = pool_size / num_banks
    low = (1.0 - config.delta) * ideal_pile
    high = (1.0 + config.delta) * ideal_pile
    max_rounds = config.max_rounds_factor * num_banks

    result = PartitionResult()
    remaining = pool
    while result.pile_count < num_banks:
        partitioned_fraction = 1.0 - remaining.size / pool_size
        if partitioned_fraction >= config.per_threshold:
            break
        if result.rounds >= max_rounds:
            raise PartitionError(
                f"no convergence after {result.rounds} rounds: "
                f"{result.pile_count}/{num_banks} piles, "
                f"{partitioned_fraction:.0%} partitioned"
            )
        if remaining.size < max(2, low):
            break
        result.rounds += 1
        pivot_index = int(rng.integers(remaining.size))
        pivot = int(remaining[pivot_index])
        others = np.delete(remaining, pivot_index)
        members = others[probe.conflict_mask(pivot, others)]
        if config.verify_members and members.size:
            members = members[probe.conflict_mask(pivot, members)]
        pile_size = members.size + 1  # pivot belongs to its own pile
        if low <= pile_size <= high:
            result.piles[pivot] = members
            keep = ~np.isin(remaining, members)
            keep[pivot_index] = False
            remaining = remaining[keep]
        else:
            result.rejected_piles += 1
    result.leftovers = remaining
    return result
