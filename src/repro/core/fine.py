"""Step 3 — fine-grained row & column bit detection (paper Section III-E).

Step 1 misses row/column bits that also feed bank functions (toggling them
alone changes the bank and reads fast). Step 3 recovers them using the
spec-known row/column bit *counts*:

Rows — the paper probes each two-bit bank function (pair differing in its
two bits; slow read => the higher bit is a row), escalating to wider
functions if rows remain. Two generalisations are required for the
procedure to work beyond the paper's exact machines, and our
implementation folds both into one mechanism:

1. Flipping exactly a function's bits can still change the bank via
   *another* function sharing a bit (bit 18 of No.2 feeds both (14,18)
   and the 7-bit hash) — the paper's claim that such pairs "actually map
   to the same bank" does not hold there. The probe must be repaired into
   the kernel of the whole resolved bank map.
2. Mappings whose functions are all wider than two bits (AMD's documented
   3-bit bank swizzle) hide several row bits per function; probing whole
   functions and taking one bit per function cannot recover them all.

So we probe candidate *bits*, high to low: for each unclassified bank
candidate, kernel-repair the single-bit flip into a same-bank pair
(compensation drawn from low function bits, never from identified rows)
and measure. On the paper's machines this reduces exactly to the paper's
function probes (the repair for bit 18 of No.2 adds bits 8 and 14, giving
the probe mask {8, 14, 18}); on AMD-style swizzles it keeps working.

Columns — no measurement at all: the spec says how many column bits exist;
the unidentified candidates are taken lowest-first, skipping ``l``, the
lowest bit of the widest bank function (empirical observation: that bit is
never a column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bits import bits_of_mask
from repro.analysis.repair import kernel_repair
from repro.core.coarse import CoarseResult
from repro.core.knowledge import DomainKnowledge
from repro.core.pairs import find_pairs
from repro.core.probe import LatencyProbe
from repro.dram.errors import FineDetectionError, SelectionError
from repro.machine.allocator import PhysPages

__all__ = ["FineResult", "FineDetector"]


@dataclass(frozen=True)
class FineResult:
    """Outcome of Step 3.

    Attributes:
        row_bits: the complete row bit set (coarse + shared).
        column_bits: the complete column bit set (coarse + shared).
        shared_row_bits: row bits recovered here (shared with bank funcs).
        shared_column_bits: column bits recovered here.
    """

    row_bits: tuple[int, ...]
    column_bits: tuple[int, ...]
    shared_row_bits: tuple[int, ...]
    shared_column_bits: tuple[int, ...]


class FineDetector:
    """Runs Step 3 over the resolved bank functions."""

    def __init__(
        self,
        probe: LatencyProbe,
        knowledge: DomainKnowledge,
        pages: PhysPages,
        rng: np.random.Generator,
        votes: int = 2,
        use_column_exclusion_rule: bool = True,
        recheck_sweeps: int = 0,
        recheck_backoff_s: float = 0.5,
    ):
        self.probe = probe
        self.knowledge = knowledge
        self.pages = pages
        self.rng = rng
        self.votes = max(1, votes)
        self.recheck_sweeps = max(0, recheck_sweeps)
        self.recheck_backoff_s = recheck_backoff_s
        # Ablation hook: disabling the paper's empirical observation 2 (the
        # lowest bit of the widest function is not a column) lets the
        # ablation bench quantify what that knowledge buys.
        self.use_column_exclusion_rule = use_column_exclusion_rule

    def detect(self, coarse: CoarseResult, functions: tuple[int, ...]) -> FineResult:
        """Complete the row and column bit sets.

        Raises:
            FineDetectionError: when the spec-mandated counts cannot be
                reached — the signature of a wrong coarse classification.
        """
        shared_rows = self._detect_shared_rows(coarse, functions)
        shared_columns = self._detect_shared_columns(coarse, functions, shared_rows)
        return FineResult(
            row_bits=tuple(sorted(set(coarse.row_bits) | set(shared_rows))),
            column_bits=tuple(sorted(set(coarse.column_bits) | set(shared_columns))),
            shared_row_bits=tuple(sorted(shared_rows)),
            shared_column_bits=tuple(sorted(shared_columns)),
        )

    # ------------------------------------------------------------------ rows

    def _detect_shared_rows(
        self, coarse: CoarseResult, functions: tuple[int, ...]
    ) -> set[int]:
        needed = self.knowledge.num_row_bits - len(coarse.row_bits)
        if needed < 0:
            raise FineDetectionError(
                f"coarse step found {len(coarse.row_bits)} row bits but the "
                f"spec allows only {self.knowledge.num_row_bits}"
            )
        found: set[int] = set()
        if needed == 0:
            return found
        function_bits = {
            position for mask in functions for position in bits_of_mask(mask)
        }
        # Probe candidate bits from high to low: shared row bits are always
        # the topmost bank candidates on every observed layout (paper
        # empirical rule: "the higher one is the row bit"). For each
        # candidate, build a same-bank probe pair by kernel-repairing the
        # single-bit flip against all resolved functions; candidates whose
        # repair would require flipping an already-identified row have no
        # valid probe and are skipped (they are pure bank wires).
        for candidate in sorted(coarse.bank_bits, reverse=True):
            if len(found) == needed:
                break
            if candidate not in function_bits:
                continue
            available = sorted(
                position
                for position in function_bits
                if position != candidate and position not in found
            )
            repair = kernel_repair(1 << candidate, list(functions), available)
            if repair is None:
                continue
            if self._voted_conflict((1 << candidate) | repair):
                found.add(candidate)
        if len(found) != needed:
            raise FineDetectionError(
                f"found {len(found)} shared row bits, spec requires {needed} "
                f"(functions: {[bits_of_mask(f) for f in functions]})"
            )
        return found

    # --------------------------------------------------------------- columns

    def _detect_shared_columns(
        self,
        coarse: CoarseResult,
        functions: tuple[int, ...],
        shared_rows: set[int],
    ) -> list[int]:
        needed = self.knowledge.num_column_bits - len(coarse.column_bits)
        if needed < 0:
            raise FineDetectionError(
                f"coarse step found {len(coarse.column_bits)} column bits but "
                f"the spec allows only {self.knowledge.num_column_bits}"
            )
        if needed == 0:
            return []
        unidentified = [
            position for position in coarse.bank_bits if position not in shared_rows
        ]
        excluded = (
            DomainKnowledge.excluded_column_bit(list(functions))
            if self.use_column_exclusion_rule
            else None
        )
        candidates = sorted(p for p in unidentified if p != excluded)
        if len(candidates) < needed:
            raise FineDetectionError(
                f"only {len(candidates)} column candidates for {needed} "
                f"missing column bits"
            )
        return candidates[:needed]

    # -------------------------------------------------------------- internals

    def _voted_conflict(self, mask: int) -> bool:
        try:
            pairs = find_pairs(self.pages, mask, self.votes, self.rng)
        except SelectionError:
            return False
        decisions = self.probe.are_conflicts(pairs)
        agreed = sum(decisions)
        if agreed not in (0, len(decisions)) and len(decisions) >= 2:
            pairs = pairs + find_pairs(self.pages, mask, 1, self.rng)
            decisions.append(self.probe.is_conflict(*pairs[-1]))
            agreed = sum(decisions)
        verdict = agreed * 2 > len(decisions)
        if not verdict or not self.recheck_sweeps:
            return verdict
        # Same defence as the coarse detector: noise only adds latency, so
        # a genuine conflict survives every re-measurement, while a sticky
        # mis-read dies once a rung's backoff out-waits its window.
        suspects = [pair for pair, vote in zip(pairs, decisions) if vote]
        backoff_s = self.recheck_backoff_s
        for _ in range(self.recheck_sweeps):
            self.probe.machine.charge_analysis(backoff_s * 1e9)
            backoff_s *= 2.0
            if not all(self.probe.is_conflict(a, b) for a, b in suspects):
                return False
        return True
