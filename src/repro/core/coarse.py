"""Step 1 — coarse-grained row & column bit detection (paper Section III-C).

Row bits: measure a pair differing in exactly one bit. High latency means
the two addresses are same-bank-different-row (SBDR), and since only that
bit differs, it is a row bit. A row bit that *also* feeds a bank function
flips the bank when toggled, reads fast, and is therefore missed here —
that is what makes this step coarse (Step 3 recovers the shared bits).

Column bits: measure a pair differing in one *detected* row bit plus one
non-row candidate. High latency means same bank (so the candidate is not a
bank bit) and different row (the row bit), hence the candidate only moved
the column: a column bit. Again, column bits shared with bank functions
read fast and are missed.

Everything left over is a candidate bank bit — the ``B`` input of
Algorithms 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bits import bit
from repro.core.pairs import find_pairs
from repro.core.probe import LatencyProbe
from repro.dram.errors import SelectionError
from repro.machine.allocator import PhysPages

__all__ = ["CoarseResult", "CoarseDetector"]


@dataclass(frozen=True)
class CoarseResult:
    """Outcome of Step 1.

    Attributes:
        row_bits: pure row bits (not shared with bank functions).
        column_bits: pure column bits.
        bank_bits: everything else — candidates for Algorithm 1's ``B``.
    """

    row_bits: tuple[int, ...]
    column_bits: tuple[int, ...]
    bank_bits: tuple[int, ...]

    def classified(self) -> int:
        """Total number of classified bits."""
        return len(self.row_bits) + len(self.column_bits) + len(self.bank_bits)


class CoarseDetector:
    """Runs Step 1 over a calibrated probe.

    Args:
        probe: calibrated latency probe.
        pages: the tool's allocated physical pages.
        address_bits: physical address width (from domain knowledge).
        rng: the tool's own RNG (not the machine's) — fixing its seed makes
            the whole tool deterministic.
        votes: latency opinions per bit; the majority wins. Refresh noise
            only ever inflates latency, so 2 agreeing votes (escalating to a
            3rd on disagreement) is enough in practice.
        recheck_sweeps: re-measurement rungs applied to every *conflict*
            verdict (0 = trust the vote). Noise only adds latency, so a
            true conflict survives any number of re-measurements; a sticky
            mis-read lie dies as soon as one rung's backoff out-waits its
            stickiness window. Each rung sleeps (simulated) twice as long
            as the previous, starting at ``recheck_backoff_s``.
        recheck_backoff_s: first rung's simulated sleep.
    """

    def __init__(
        self,
        probe: LatencyProbe,
        pages: PhysPages,
        address_bits: int,
        rng: np.random.Generator,
        votes: int = 2,
        recheck_sweeps: int = 0,
        recheck_backoff_s: float = 0.5,
    ):
        if votes < 1:
            raise ValueError("votes must be at least 1")
        if recheck_sweeps < 0:
            raise ValueError("recheck_sweeps must be non-negative")
        if recheck_backoff_s < 0:
            raise ValueError("recheck_backoff_s must be non-negative")
        self.probe = probe
        self.pages = pages
        self.address_bits = address_bits
        self.rng = rng
        self.votes = votes
        self.recheck_sweeps = recheck_sweeps
        self.recheck_backoff_s = recheck_backoff_s

    # ----------------------------------------------------------------- steps

    def detect(self) -> CoarseResult:
        """Run both detections and classify every address bit."""
        row_bits = self.detect_row_bits()
        column_bits = self.detect_column_bits(row_bits)
        bank_bits = tuple(
            position
            for position in range(self.address_bits)
            if position not in row_bits and position not in column_bits
        )
        return CoarseResult(row_bits=row_bits, column_bits=column_bits, bank_bits=bank_bits)

    def detect_row_bits(self) -> tuple[int, ...]:
        """Single-bit-flip scan over every physical address bit."""
        rows = []
        for position in range(self.address_bits):
            if self._voted_conflict(bit(position)):
                rows.append(position)
        return tuple(rows)

    def detect_column_bits(self, row_bits: tuple[int, ...]) -> tuple[int, ...]:
        """Two-bit-flip scan (detected row bit + candidate) over non-row bits."""
        if not row_bits:
            raise SelectionError(
                "no row bits detected; cannot run column detection "
                "(timing channel broken or buffer too small)"
            )
        reference_row = row_bits[-1]  # any pure row bit works; use the highest
        columns = []
        for position in range(self.address_bits):
            if position in row_bits:
                continue
            if self._voted_conflict(bit(reference_row) | bit(position)):
                columns.append(position)
        return tuple(columns)

    # -------------------------------------------------------------- internals

    def _voted_conflict(self, mask: int) -> bool:
        """Majority-vote conflict decision over several independent pairs."""
        try:
            pairs = find_pairs(self.pages, mask, self.votes, self.rng)
        except SelectionError:
            # No pair exists for this mask (e.g. top bit with a small
            # buffer): the bit cannot be probed, treat as not-a-row/column;
            # it ends up a bank candidate and Algorithm 3 sorts it out.
            return False
        # One campaign per voted decision; the tie-break pair must stay a
        # separate draw-then-measure step because its discovery consumes
        # tool RNG only after the first votes disagreed.
        decisions = self.probe.are_conflicts(pairs)
        agreed = sum(decisions)
        if agreed not in (0, len(decisions)) and len(decisions) >= 2:
            # Disagreement: one tie-breaking extra pair.
            pairs = pairs + find_pairs(self.pages, mask, 1, self.rng)
            decisions.append(self.probe.is_conflict(*pairs[-1]))
            agreed = sum(decisions)
        verdict = agreed * 2 > len(decisions)
        if not verdict or not self.recheck_sweeps:
            return verdict
        return self._recheck_conflict(
            [pair for pair, vote in zip(pairs, decisions) if vote]
        )

    def _recheck_conflict(self, suspects: list[tuple[int, int]]) -> bool:
        """Confirm a conflict verdict over a doubling-backoff ladder.

        Every pair that voted *conflict* is re-measured after each rung's
        simulated sleep. Faults only ever add latency, so a genuine
        conflict reads slow every time; a pair that reads fast even once
        was lying (a transient mis-read whose window expired) and the
        verdict flips to no-conflict.
        """
        backoff_s = self.recheck_backoff_s
        for _ in range(self.recheck_sweeps):
            self.probe.machine.charge_analysis(backoff_s * 1e9)
            backoff_s *= 2.0
            if not all(self.probe.is_conflict(a, b) for a, b in suspects):
                return False
        return True
