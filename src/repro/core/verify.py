"""Ground-truth-free verification of a recovered mapping.

The evaluation harness can compare against the simulator's hidden truth,
but a user on a real machine cannot. What they *can* do — and what this
module implements — is hold the mapping to account against fresh timing
measurements: predict same-bank-different-row for random address pairs
from the mapping, measure the pairs, and score the agreement. A correct
mapping predicts the timing channel near-perfectly; a mapping with a
missing function or a phantom row bit mispredicts a measurable fraction
(each wrong function costs roughly ``1/#banks`` of agreement, which is why
the threshold must scale with the machine's bank count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.probe import LatencyProbe
from repro.dram.belief import BeliefMapping
from repro.dram.compiled import CompiledMapping
from repro.machine.allocator import PhysPages

__all__ = ["VerificationReport", "verify_mapping"]


@dataclass(frozen=True)
class VerificationReport:
    """Agreement between a mapping's predictions and the timing channel.

    Attributes:
        pairs_tested: random pairs measured.
        agreements: pairs where prediction matched measurement.
        false_conflicts: predicted slow, measured fast.
        missed_conflicts: predicted fast, measured slow.
        threshold: required agreement for :attr:`verdict`.
    """

    pairs_tested: int
    agreements: int
    false_conflicts: int
    missed_conflicts: int
    threshold: float

    @property
    def agreement(self) -> float:
        """Fraction of pairs predicted correctly."""
        return self.agreements / self.pairs_tested if self.pairs_tested else 0.0

    @property
    def verdict(self) -> bool:
        """True when the mapping explains the timing channel."""
        return self.agreement >= self.threshold

    def describe(self) -> str:
        """One-line summary."""
        status = "CONSISTENT" if self.verdict else "INCONSISTENT"
        return (
            f"{status}: {self.agreement:.1%} agreement over "
            f"{self.pairs_tested} pairs "
            f"({self.false_conflicts} false / {self.missed_conflicts} missed "
            f"conflicts; threshold {self.threshold:.1%})"
        )


def verify_mapping(
    probe: LatencyProbe,
    pages: PhysPages,
    belief: BeliefMapping,
    rng: np.random.Generator,
    pairs: int = 256,
    total_banks: int | None = None,
) -> VerificationReport:
    """Score ``belief`` against fresh measurements through ``probe``.

    Args:
        probe: a *calibrated* latency probe.
        pages: allocated pages to draw pairs from.
        belief: the mapping under test.
        rng: randomness for pair selection.
        pairs: pairs to measure.
        total_banks: when given, the pass threshold is set to
            ``1 - 0.5/#banks`` (half a single wrong function's misprediction
            budget); otherwise a flat 97 % is used.
    """
    if pairs < 8:
        raise ValueError("need at least 8 verification pairs")
    threshold = 1.0 - 0.5 / total_banks if total_banks else 0.97
    bases = pages.sample_addresses(pairs, rng)
    partners = pages.sample_addresses(pairs, rng)
    # Predictions come from the compiled forward matrix in one batch (the
    # belief need not be invertible for this); the measurement loop below
    # stays scalar and in sampling order, so probe traffic — and therefore
    # cost accounting and any probe-side randomness — is bit-identical to
    # the historical per-pair path.
    compiled = CompiledMapping.from_belief(belief)
    base_banks, base_rows, _ = compiled.translate(np.asarray(bases, dtype=np.uint64))
    partner_banks, partner_rows, _ = compiled.translate(
        np.asarray(partners, dtype=np.uint64)
    )
    predictions = (base_banks == partner_banks) & (base_rows != partner_rows)
    agreements = 0
    false_conflicts = 0
    missed_conflicts = 0
    for index in range(pairs):
        predicted = bool(predictions[index])
        measured = probe.is_conflict(int(bases[index]), int(partners[index]))
        if predicted == measured:
            agreements += 1
        elif predicted:
            false_conflicts += 1
        else:
            missed_conflicts += 1
    return VerificationReport(
        pairs_tested=pairs,
        agreements=agreements,
        false_conflicts=false_conflicts,
        missed_conflicts=missed_conflicts,
        threshold=threshold,
    )
