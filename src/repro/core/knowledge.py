"""Domain knowledge provider (paper Section III-A).

DRAMDig's defining idea is that reverse engineering should *consume
knowledge* instead of brute-forcing. Three knowledge groups feed the
pipeline:

1. **Specifications** — DDR3/DDR4 data sheets give the number of
   physical-address bits that index rows and columns for a given chip
   organisation (:mod:`repro.dram.spec`).
2. **System information** — dmidecode/decode-dimms give the total bank
   count, memory size and ECC flag (:mod:`repro.machine.sysinfo`).
3. **Empirical observations** — (a) Intel bank address functions are XORs
   of physical-address bits; (b) since Ivy Bridge, the lowest bit of the
   bank function with the most bits is not a column bit.

:class:`DomainKnowledge` derives, from those inputs, every bound the three
pipeline steps need: expected bank-function count, expected row/column bit
counts, and the fine-grained column exclusion rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.spec import DdrGeneration, chip_spec, rank_page_bytes
from repro.machine.sysinfo import SystemInfo

__all__ = ["DomainKnowledge"]


def _infer_chip_width(generation: DdrGeneration, banks_per_rank: int) -> int:
    """Infer the chip width from the SPD bank count.

    Consumer DIMMs are x8 or x16. DDR4 x16 parts have 8 banks (2 bank
    groups) while x8 parts have 16, so the bank count identifies the width.
    DDR3 parts all have 8 banks; x8 is the overwhelmingly common consumer
    organisation and both widths yield the same 8 KiB rank page anyway.
    """
    if generation is DdrGeneration.DDR4 and banks_per_rank == 8:
        return 16
    return 8


@dataclass(frozen=True)
class DomainKnowledge:
    """Everything DRAMDig knows before the first latency measurement.

    Attributes:
        info: parsed system information.
    """

    info: SystemInfo

    @classmethod
    def gather(cls, info: SystemInfo) -> "DomainKnowledge":
        """Assemble knowledge from parsed system information."""
        return cls(info=info)

    # ------------------------------------------------------- derived bounds

    @property
    def address_bits(self) -> int:
        """Physical address width: log2(installed memory)."""
        return self.info.total_bytes.bit_length() - 1

    @property
    def total_banks(self) -> int:
        """Bank count across channels/DIMMs/ranks — Algorithm 2's ``#bank``."""
        return self.info.total_banks

    @property
    def num_bank_functions(self) -> int:
        """Expected number of bank address functions: log2(#banks)."""
        return self.total_banks.bit_length() - 1

    @property
    def row_bytes(self) -> int:
        """Rank page size from the data sheet (column address space)."""
        width = _infer_chip_width(self.info.generation, self.info.banks_per_rank)
        return rank_page_bytes(chip_spec(self.info.generation, width))

    @property
    def num_column_bits(self) -> int:
        """Spec-mandated number of column bits: log2(rank page size)."""
        return self.row_bytes.bit_length() - 1

    @property
    def num_row_bits(self) -> int:
        """Spec-mandated number of row bits: whatever the address has left."""
        return self.address_bits - self.num_column_bits - self.num_bank_functions

    # ------------------------------------------------ empirical observations

    @staticmethod
    def excluded_column_bit(bank_functions: list[int]) -> int | None:
        """Empirical observation 2: the lowest bit of the bank function with
        the most bits is *not* a column bit.

        Among ties (several functions with the maximal bit count — the
        all-two-bit DDR3/DDR4 single-rank layouts) the observation is only
        ever needed for the many-bit channel-hash functions, so we pick the
        tied function whose lowest bit is highest; low column candidates are
        then never wrongly excluded.

        Returns None when there are no functions.
        """
        if not bank_functions:
            return None
        best = max(
            bank_functions,
            key=lambda mask: (bin(mask).count("1"), mask & -mask),
        )
        return (best & -best).bit_length() - 1

    def describe(self) -> str:
        """Human-readable knowledge summary (what DRAMDig logs at start)."""
        return (
            f"{self.info.generation}, {self.info.total_bytes / 2**30:g} GiB, "
            f"{self.total_banks} banks -> expecting "
            f"{self.num_bank_functions} bank functions, "
            f"{self.num_row_bits} row bits, {self.num_column_bits} column bits"
        )
