"""Calibrated latency probe — the tools' only window into the machine.

Wraps :class:`~repro.machine.machine.SimulatedMachine`'s timing primitive
with the two things every real tool needs on top of raw latencies:

* **Calibration**: anchor the fast mode with reference pairs that are
  provably conflict-free (two addresses in one OS page share their row
  bits), then place the cutoff against the slow population of a few
  hundred random pairs (:func:`repro.analysis.stats.calibrate_threshold`).
  This survives the preemption/refresh spike tails that hijack a plain
  Otsu split.
* **Noise suppression**: refresh collisions and preemption only ever *add*
  latency, so the probe measures each pair ``repeats`` times and takes the
  minimum — the standard hardware trick — before classifying.

The probe also exposes batch classification, because Algorithm 2 measures
one pivot address against thousands of pool addresses at a time.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import LatencyThreshold, calibrate_threshold
from repro.dram.errors import CalibrationError
from repro.faults.recovery import DegradationEvent
from repro.machine.allocator import PhysPages
from repro.machine.machine import SimulatedMachine
from repro.obs import tracing as obs

__all__ = ["LatencyProbe", "ProbeConfig"]


@dataclass(frozen=True)
class ProbeConfig:
    """Measurement policy.

    Attributes:
        rounds: alternating accesses per measurement (more rounds = a more
            stable median, more simulated time).
        repeats: independent measurements per pair; the minimum is used.
        calibration_pairs: random pairs sampled to fit the threshold.
        reference_pairs: known-fast same-page pairs anchoring the fast mode.
        min_separation: required relative fast/slow gap during calibration.
        max_recalibrations: adaptive recalibration budget (0 disables the
            drift watch entirely — the seed behaviour).
        drift_tolerance: relative movement of the fast mode, measured
            against the retained reference pairs, that triggers a
            threshold re-anchor.
        drift_check_interval_s: simulated-time heartbeat between reference
            re-checks; grows exponentially while no drift is found
            (``drift_check_backoff``) and resets once drift is confirmed.
        drift_check_backoff: interval multiplier after a no-drift check.
        drift_check_max_interval_s: cap on the backed-off interval.
        suspect_slow_fraction: batch slow fraction that forces an early
            drift check before the heartbeat elapses.
        suspect_run_length: consecutive scalar slow reads that force an
            early drift check.
        batch_probes: issue pending measurements as vectorized campaign
            sweeps (:meth:`~repro.machine.machine.SimulatedMachine.
            measure_latency_sweeps` / batched pair scans) instead of
            step-by-step calls. Both paths are bit-identical in every
            measured value, clock charge and counter — the flag exists so
            the perf harness can price the stepwise path, not because the
            results differ.
    """

    rounds: int = 4000
    repeats: int = 2
    calibration_pairs: int = 512
    reference_pairs: int = 64
    min_separation: float = 0.08
    max_recalibrations: int = 0
    drift_tolerance: float = 0.08
    drift_check_interval_s: float = 0.1
    drift_check_backoff: float = 2.0
    drift_check_max_interval_s: float = 5.0
    suspect_slow_fraction: float = 0.9
    suspect_run_length: int = 8
    batch_probes: bool = True

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.calibration_pairs < 8:
            raise ValueError("need at least 8 calibration pairs")
        if self.reference_pairs < 8:
            raise ValueError(
                "need at least 8 reference pairs to anchor the fast mode "
                f"(got {self.reference_pairs}); fewer produces an empty or "
                "unstable reference population and a garbage threshold"
            )
        if self.min_separation <= 0:
            raise ValueError(
                f"min_separation must be positive (got {self.min_separation}); "
                "a non-positive separation disables the unimodality guard"
            )
        if self.max_recalibrations < 0:
            raise ValueError("max_recalibrations must be non-negative")
        if self.drift_tolerance <= 0:
            raise ValueError("drift_tolerance must be positive")
        if self.drift_check_interval_s <= 0:
            raise ValueError("drift_check_interval_s must be positive")
        if self.drift_check_backoff < 1.0:
            raise ValueError("drift_check_backoff must be at least 1")
        if self.drift_check_max_interval_s < self.drift_check_interval_s:
            raise ValueError(
                "drift_check_max_interval_s must cover drift_check_interval_s"
            )
        if not 0.0 < self.suspect_slow_fraction <= 1.0:
            raise ValueError("suspect_slow_fraction must be in (0, 1]")
        if self.suspect_run_length < 2:
            raise ValueError("suspect_run_length must be at least 2")


class LatencyProbe:
    """A calibrated fast/slow classifier over a simulated machine."""

    def __init__(self, machine: SimulatedMachine, config: ProbeConfig | None = None):
        self.machine = machine
        self.config = config if config is not None else ProbeConfig()
        self.threshold: LatencyThreshold | None = None
        # Adaptive-recalibration state (inert while max_recalibrations == 0).
        self.recalibrations = 0
        self.drift_checks = 0
        self.events: list[DegradationEvent] = []
        self._reference_bases: np.ndarray | None = None
        self._check_interval_ns = self.config.drift_check_interval_s * 1e9
        self._next_check_ns = np.inf
        self._last_check_ns = 0.0
        self._slow_run = 0

    # ------------------------------------------------------------ calibration

    def calibrate(self, pages: PhysPages, rng: np.random.Generator) -> LatencyThreshold:
        """Fit the fast/slow threshold from reference and random pairs.

        Reference pairs live within one OS page, sharing all row bits, so
        they are guaranteed conflict-free and anchor the fast mode robustly
        even under heavy spike noise. Random pairs hit the same bank with
        probability 1/#banks and supply the slow population. Raises
        :class:`CalibrationError` when no slow population is visible
        (broken timing loop on real hardware).

        When ``max_recalibrations`` is positive, the probe retains the
        reference anchors and watches for baseline drift during
        classification; a re-anchor re-measures only those frozen
        references, so recovery never consumes the tool's RNG stream —
        the tool's draws stay identical whether recovery fires zero or
        twenty times, and the whole run remains a deterministic function
        of (machine, profile, seed).
        """
        self._fit_threshold(pages, rng)
        obs.inc("probe.calibrations")
        if self.config.max_recalibrations > 0:
            self._check_interval_ns = self.config.drift_check_interval_s * 1e9
            self._last_check_ns = self.machine.clock.elapsed_ns
            self._next_check_ns = self._last_check_ns + self._check_interval_ns
        return self.threshold

    def _fit_threshold(self, pages: PhysPages, rng: np.random.Generator) -> None:
        """One calibration pass: measure anchors + mixture, fit the cutoff."""
        reference_count = self.config.reference_pairs
        bases = pages.sample_addresses(reference_count, rng)
        # Flipping bit 7 stays within the page: never a row conflict.
        references = self._measure_min_pairs(bases, bases ^ np.uint64(0x80))
        count = self.config.calibration_pairs
        mixed_bases = pages.sample_addresses(count, rng)
        partners = pages.sample_addresses(count, rng)
        samples = self._measure_min_pairs(mixed_bases, partners)
        try:
            self.threshold = calibrate_threshold(
                references, samples, self.config.min_separation
            )
        except ValueError as error:
            raise CalibrationError(str(error)) from error
        self._reference_bases = bases

    def require_threshold(self) -> LatencyThreshold:
        """The calibrated threshold, or a CalibrationError if absent."""
        if self.threshold is None:
            raise CalibrationError("probe used before calibrate()")
        return self.threshold

    # ------------------------------------------------------- drift recovery

    def _watching_drift(self) -> bool:
        """Whether the adaptive drift watch is armed and has budget left."""
        return (
            self.config.max_recalibrations > 0
            and self.threshold is not None
            and self._reference_bases is not None
            and self.recalibrations < self.config.max_recalibrations
        )

    def _drift_check_due(self, suspect: bool) -> bool:
        """Heartbeat elapsed, or suspicion past the refractory period."""
        now = self.machine.clock.elapsed_ns
        if now >= self._next_check_ns:
            return True
        # Suspicion may pre-empt the heartbeat, but not immediately after
        # the last check: all-slow batches are legitimate (pile
        # verification sweeps), so a short refractory period keeps false
        # alarms from re-measuring the references on every call.
        refractory = 0.25 * self.config.drift_check_interval_s * 1e9
        return suspect and now >= self._last_check_ns + refractory

    def _run_drift_check(self) -> bool:
        """Re-measure the reference anchors; re-anchor if they moved.

        The re-anchor *translates* the calibrated threshold by however far
        the fast mode moved, rather than refitting it from scratch: a full
        refit takes long enough (hundreds of measurements of simulated
        time) that ongoing drift skews the very sample it fits, while the
        frozen references are re-measured in a few simulated milliseconds.
        Drift moves both populations together — it is baseline creep, not
        a change of the conflict gap — so a translation is exact.

        Returns True when the threshold was replaced. Re-anchors consume
        the bounded budget; check intervals back off exponentially while
        no drift is found and reset once drift is confirmed.
        """
        self.drift_checks += 1
        obs.inc("probe.drift_checks")
        threshold = self.threshold
        assert self._reference_bases is not None
        references = self._measure_min_pairs(
            self._reference_bases, self._reference_bases ^ np.uint64(0x80)
        )
        fast_now = float(np.median(references))
        delta = fast_now - threshold.fast_mode
        moved = abs(delta) / threshold.fast_mode
        now = self.machine.clock.elapsed_ns
        self._last_check_ns = now
        if moved <= self.config.drift_tolerance:
            # No drift: back off the heartbeat so a healthy machine pays
            # an ever-smaller surveillance cost.
            self._check_interval_ns = min(
                self._check_interval_ns * self.config.drift_check_backoff,
                self.config.drift_check_max_interval_s * 1e9,
            )
            self._next_check_ns = now + self._check_interval_ns
            return False
        self.recalibrations += 1
        slow_now = threshold.slow_mode + delta
        self.threshold = dataclasses.replace(
            threshold,
            cutoff=threshold.cutoff + delta,
            fast_mode=fast_now,
            slow_mode=slow_now,
            separation=(slow_now - fast_now) / fast_now,
        )
        obs.inc("probe.recalibrations")
        self.events.append(
            obs.note_event(
                DegradationEvent(
                    step="probe",
                    action="recalibrated",
                    attempt=self.recalibrations,
                    detail=(
                        f"fast mode {threshold.fast_mode:.1f} -> "
                        f"{fast_now:.1f} ns ({moved:.0%} drift)"
                    ),
                    span=obs.current_path(),
                )
            )
        )
        self._check_interval_ns = self.config.drift_check_interval_s * 1e9
        self._next_check_ns = self.machine.clock.elapsed_ns + self._check_interval_ns
        self._slow_run = 0
        return True

    # ----------------------------------------------------------- measurement

    def _measure_min(self, addr_a: int, addr_b: int) -> float:
        latency = np.inf
        for _ in range(self.config.repeats):
            latency = min(
                latency, self.machine.measure_latency(addr_a, addr_b, self.config.rounds)
            )
        return latency

    def _measure_min_pairs(self, bases: np.ndarray, partners: np.ndarray) -> np.ndarray:
        """Min-of-repeats over many (base, partner) pairs at once.

        Repeats are interleaved per pair so the machine's noise RNG is
        consumed in exactly the order a scalar :meth:`_measure_min` loop
        consumes it — batching changes simulator wall-clock only, never a
        single measured value.
        """
        repeats = self.config.repeats
        rep_bases = np.repeat(np.asarray(bases, dtype=np.uint64), repeats)
        rep_partners = np.repeat(np.asarray(partners, dtype=np.uint64), repeats)
        latencies = self.machine.measure_latency_pairs(
            rep_bases, rep_partners, self.config.rounds
        )
        tracer = obs._ACTIVE
        if tracer is not None:
            tracer.metrics.inc("probe.pair_measurements", int(rep_bases.size))
        return latencies.reshape(-1, repeats).min(axis=1)

    def is_conflict(self, addr_a: int, addr_b: int) -> bool:
        """Classify one pair: True = same bank, different row (slow)."""
        latency = self._measure_min(addr_a, addr_b)
        slow = self.require_threshold().is_slow(latency)
        # Hot path: one global load + is-None test when tracing is off.
        tracer = obs._ACTIVE
        if tracer is not None:
            tracer.metrics.inc("probe.pair_measurements", self.config.repeats)
            tracer.metrics.inc(
                "probe.verdicts.conflict" if slow else "probe.verdicts.clear"
            )
        if self._watching_drift():
            self._slow_run = self._slow_run + 1 if slow else 0
            suspect = self._slow_run >= self.config.suspect_run_length
            if self._drift_check_due(suspect) and self._run_drift_check():
                slow = self.require_threshold().is_slow(latency)
        return slow

    def are_conflicts(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Classify many distinct pairs in one measurement campaign.

        Bit-identical to ``[self.is_conflict(a, b) for a, b in pairs]`` —
        :meth:`_measure_min_pairs` interleaves the repeats per pair, so the
        machine's noise RNG, fault perturbations, clock charge and metrics
        are consumed in exactly the scalar order. Falls back to the scalar
        loop when campaign batching is disabled or the drift watch is armed
        (the watch interleaves reference re-measurements between verdicts,
        which a batch cannot reproduce).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        # Below ~6 pairs the array assembly costs more than it saves
        # (measured crossover on the voted-scan sizes); since both paths
        # are bit-identical, small campaigns take the scalar loop purely
        # for speed. The drift watch forces it regardless of size.
        if (
            not self.config.batch_probes
            or len(pairs) < 6
            or self._watching_drift()
        ):
            return [self.is_conflict(a, b) for a, b in pairs]
        bases = np.fromiter((a for a, _ in pairs), dtype=np.uint64, count=len(pairs))
        partners = np.fromiter((b for _, b in pairs), dtype=np.uint64, count=len(pairs))
        latencies = self._measure_min_pairs(bases, partners)
        threshold = self.require_threshold()
        verdicts = [bool(threshold.is_slow(latency)) for latency in latencies]
        tracer = obs._ACTIVE
        if tracer is not None:
            conflicts = sum(verdicts)
            tracer.metrics.inc("probe.verdicts.conflict", conflicts)
            tracer.metrics.inc("probe.verdicts.clear", len(verdicts) - conflicts)
        return verdicts

    def conflict_mask(self, base: int, others: np.ndarray) -> np.ndarray:
        """Classify ``base`` against many addresses; boolean array.

        Takes the element-wise minimum over ``repeats`` batched measurement
        sweeps before thresholding. With the drift watch armed, an
        implausibly slow batch (or an elapsed heartbeat) triggers a
        reference re-check, and the *same* latencies are re-thresholded
        against the recalibrated cutoff — measurements are never wasted.
        """
        others = np.asarray(others, dtype=np.uint64)
        if self.config.batch_probes:
            # Campaign form: one decode, ``repeats`` sweeps — bit-identical
            # to the stepwise loop below (pinned by the machine tests).
            latencies = self.machine.measure_latency_sweeps(
                base, others, self.config.rounds, self.config.repeats
            )
        else:
            latencies = self.machine.measure_latency_batch(
                base, others, self.config.rounds
            )
            for _ in range(self.config.repeats - 1):
                latencies = np.minimum(
                    latencies,
                    self.machine.measure_latency_batch(
                        base, others, self.config.rounds
                    ),
                )
        mask = self.require_threshold().classify(latencies)
        tracer = obs._ACTIVE
        if tracer is not None:
            conflicts = int(mask.sum())
            tracer.metrics.inc(
                "probe.pair_measurements", int(others.size) * self.config.repeats
            )
            tracer.metrics.inc("probe.verdicts.conflict", conflicts)
            tracer.metrics.inc("probe.verdicts.clear", int(others.size) - conflicts)
        if self._watching_drift():
            suspect = (
                others.size >= 8
                and float(mask.mean()) >= self.config.suspect_slow_fraction
            )
            if self._drift_check_due(suspect) and self._run_drift_check():
                mask = self.require_threshold().classify(latencies)
        return mask

    @property
    def measurements_taken(self) -> int:
        """Total pair measurements charged so far on the machine."""
        return self.machine.stats.measurements
