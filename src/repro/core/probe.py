"""Calibrated latency probe — the tools' only window into the machine.

Wraps :class:`~repro.machine.machine.SimulatedMachine`'s timing primitive
with the two things every real tool needs on top of raw latencies:

* **Calibration**: anchor the fast mode with reference pairs that are
  provably conflict-free (two addresses in one OS page share their row
  bits), then place the cutoff against the slow population of a few
  hundred random pairs (:func:`repro.analysis.stats.calibrate_threshold`).
  This survives the preemption/refresh spike tails that hijack a plain
  Otsu split.
* **Noise suppression**: refresh collisions and preemption only ever *add*
  latency, so the probe measures each pair ``repeats`` times and takes the
  minimum — the standard hardware trick — before classifying.

The probe also exposes batch classification, because Algorithm 2 measures
one pivot address against thousands of pool addresses at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import LatencyThreshold, calibrate_threshold
from repro.dram.errors import CalibrationError
from repro.machine.allocator import PhysPages
from repro.machine.machine import SimulatedMachine

__all__ = ["LatencyProbe", "ProbeConfig"]


@dataclass(frozen=True)
class ProbeConfig:
    """Measurement policy.

    Attributes:
        rounds: alternating accesses per measurement (more rounds = a more
            stable median, more simulated time).
        repeats: independent measurements per pair; the minimum is used.
        calibration_pairs: random pairs sampled to fit the threshold.
        reference_pairs: known-fast same-page pairs anchoring the fast mode.
        min_separation: required relative fast/slow gap during calibration.
    """

    rounds: int = 4000
    repeats: int = 2
    calibration_pairs: int = 512
    reference_pairs: int = 64
    min_separation: float = 0.08

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.calibration_pairs < 8:
            raise ValueError("need at least 8 calibration pairs")


class LatencyProbe:
    """A calibrated fast/slow classifier over a simulated machine."""

    def __init__(self, machine: SimulatedMachine, config: ProbeConfig | None = None):
        self.machine = machine
        self.config = config if config is not None else ProbeConfig()
        self.threshold: LatencyThreshold | None = None

    # ------------------------------------------------------------ calibration

    def calibrate(self, pages: PhysPages, rng: np.random.Generator) -> LatencyThreshold:
        """Fit the fast/slow threshold from reference and random pairs.

        Reference pairs live within one OS page, sharing all row bits, so
        they are guaranteed conflict-free and anchor the fast mode robustly
        even under heavy spike noise. Random pairs hit the same bank with
        probability 1/#banks and supply the slow population. Raises
        :class:`CalibrationError` when no slow population is visible
        (broken timing loop on real hardware).
        """
        reference_count = self.config.reference_pairs
        bases = pages.sample_addresses(reference_count, rng)
        # Flipping bit 7 stays within the page: never a row conflict.
        references = self._measure_min_pairs(bases, bases ^ np.uint64(0x80))
        count = self.config.calibration_pairs
        bases = pages.sample_addresses(count, rng)
        partners = pages.sample_addresses(count, rng)
        samples = self._measure_min_pairs(bases, partners)
        try:
            self.threshold = calibrate_threshold(
                references, samples, self.config.min_separation
            )
        except ValueError as error:
            raise CalibrationError(str(error)) from error
        return self.threshold

    def require_threshold(self) -> LatencyThreshold:
        """The calibrated threshold, or a CalibrationError if absent."""
        if self.threshold is None:
            raise CalibrationError("probe used before calibrate()")
        return self.threshold

    # ----------------------------------------------------------- measurement

    def _measure_min(self, addr_a: int, addr_b: int) -> float:
        latency = np.inf
        for _ in range(self.config.repeats):
            latency = min(
                latency, self.machine.measure_latency(addr_a, addr_b, self.config.rounds)
            )
        return latency

    def _measure_min_pairs(self, bases: np.ndarray, partners: np.ndarray) -> np.ndarray:
        """Min-of-repeats over many (base, partner) pairs at once.

        Repeats are interleaved per pair so the machine's noise RNG is
        consumed in exactly the order a scalar :meth:`_measure_min` loop
        consumes it — batching changes simulator wall-clock only, never a
        single measured value.
        """
        repeats = self.config.repeats
        rep_bases = np.repeat(np.asarray(bases, dtype=np.uint64), repeats)
        rep_partners = np.repeat(np.asarray(partners, dtype=np.uint64), repeats)
        latencies = self.machine.measure_latency_pairs(
            rep_bases, rep_partners, self.config.rounds
        )
        return latencies.reshape(-1, repeats).min(axis=1)

    def is_conflict(self, addr_a: int, addr_b: int) -> bool:
        """Classify one pair: True = same bank, different row (slow)."""
        return self.require_threshold().is_slow(self._measure_min(addr_a, addr_b))

    def conflict_mask(self, base: int, others: np.ndarray) -> np.ndarray:
        """Classify ``base`` against many addresses; boolean array.

        Takes the element-wise minimum over ``repeats`` batched measurement
        sweeps before thresholding.
        """
        others = np.asarray(others, dtype=np.uint64)
        latencies = self.machine.measure_latency_batch(base, others, self.config.rounds)
        for _ in range(self.config.repeats - 1):
            latencies = np.minimum(
                latencies,
                self.machine.measure_latency_batch(base, others, self.config.rounds),
            )
        return self.require_threshold().classify(latencies)

    @property
    def measurements_taken(self) -> int:
        """Total pair measurements charged so far on the machine."""
        return self.machine.stats.measurements
