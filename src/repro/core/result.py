"""Result types for a DRAMDig run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.bits import format_mask
from repro.core.coarse import CoarseResult
from repro.core.fine import FineResult
from repro.dram.mapping import AddressMapping
from repro.faults.recovery import DegradationEvent

__all__ = ["DramDigResult"]


@dataclass
class DramDigResult:
    """Everything a DRAMDig run produces.

    Attributes:
        mapping: the recovered (validated) address mapping.
        total_seconds: simulated wall-clock cost of the whole run.
        phase_seconds: per-phase simulated seconds (allocate / calibrate /
            coarse / select / partition / functions / fine).
        measurements: total pair-latency measurements performed.
        pool_size: unique addresses selected by Algorithm 1.
        raw_pool_size: Algorithm 1 pool before alias deduplication (the
            count the paper quotes in Section IV-B).
        pile_count: piles accepted by Algorithm 2.
        partition_rounds: pivots tried by Algorithm 2.
        partition_stop_reason: why Algorithm 2 exited ("complete",
            "threshold", or "pool-exhausted").
        coarse: Step 1 classification.
        fine: Step 3 completion.
        retries: pipeline restarts needed (0 in a clean run).
        degradation: recovery actions taken to reach convergence (step
            retries, probe recalibrations, partition escalations, pipeline
            restarts) — empty in a clean run.
        translation_key: cache key under which the recovered mapping's
            compiled form is registered with the process-wide
            :class:`~repro.service.translation.TranslationService`
            (empty for results built outside the pipeline).
    """

    mapping: AddressMapping
    total_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    measurements: int = 0
    pool_size: int = 0
    raw_pool_size: int = 0
    pile_count: int = 0
    partition_rounds: int = 0
    partition_stop_reason: str = ""
    coarse: CoarseResult | None = None
    fine: FineResult | None = None
    retries: int = 0
    degradation: list[DegradationEvent] = field(default_factory=list)
    translation_key: str = ""

    @property
    def compiled(self):
        """The recovered mapping's compiled GF(2) matrix pair.

        Delegates to :attr:`AddressMapping.compiled`, which is cached on
        the mapping instance — the pipeline already paid the compile at
        recovery time, so this is a plain attribute read afterwards.
        """
        return self.mapping.compiled

    @property
    def degraded(self) -> bool:
        """True when any recovery machinery fired during the run."""
        return bool(self.degradation)

    @property
    def degradation_summary(self) -> str:
        """One line describing every recovery action, empty when clean.

        The same sentence :meth:`summary` prints; exposed separately so
        grid cells and supervisors can log it without re-deriving the
        join from the raw event list.
        """
        if not self.degradation:
            return ""
        return (
            f"{len(self.degradation)} recovery actions "
            f"({'; '.join(event.describe() for event in self.degradation)})"
        )

    @property
    def bank_functions(self) -> tuple[int, ...]:
        """The recovered bank address functions."""
        return self.mapping.bank_functions

    def summary(self) -> str:
        """Multi-line human-readable report (what the CLI prints)."""
        functions = ", ".join(format_mask(m) for m in self.mapping.bank_functions)
        lines = [
            f"recovered in {self.total_seconds:.1f} simulated seconds "
            f"({self.measurements} measurements, {self.retries} retries)",
            f"bank functions: {functions}",
            self.mapping.describe().splitlines()[1],
            self.mapping.describe().splitlines()[2],
            f"pool: {self.pool_size} unique addresses "
            f"({self.raw_pool_size} raw), {self.pile_count} piles "
            f"in {self.partition_rounds} rounds",
        ]
        phases = ", ".join(
            f"{name} {seconds:.1f}s" for name, seconds in self.phase_seconds.items()
        )
        lines.append(f"phases: {phases}")
        if self.degraded:
            lines.append(f"degraded: {self.degradation_summary}")
        return "\n".join(lines)
