"""The DRAMDig pipeline orchestrator (paper Figure 1).

Runs the three steps in order against a simulated machine:

1. gather domain knowledge (parse dmidecode, consult the DDR spec),
2. allocate a large buffer and calibrate the timing probe,
3. Step 1 (coarse row/column detection), Algorithm 1 (selection),
   Algorithm 2 (partition), Algorithm 3 (bank functions), Step 3 (fine
   detection),
4. assemble and *validate* the recovered mapping — validation (coverage,
   GF(2) independence, bijectivity) is itself knowledge-assisted checking:
   a noise-corrupted run cannot silently produce garbage, it fails
   validation and is retried with stronger noise suppression.

The tool's own randomness (pivot choices, pair sampling) comes from a
fixed seed, so the recovered mapping is a deterministic function of the
machine — the property the paper's Table I claims for DRAMDig and denies
for DRAMA.

Two recovery layers wrap the steps, both off by default (seed behaviour)
and both seeded-deterministic when enabled:

* a **per-step retry policy** (:class:`~repro.faults.recovery.RecoveryPolicy`)
  retries a failed step in place after a simulated backoff sleep, so a
  transient condition (refresh storm, sticky mis-read window) expires
  without discarding the phases already completed;
* the classic **whole-pipeline restart** escalates measurement repeats
  when a pass fails validation outright.

Every recovery action lands as a structured
:class:`~repro.faults.recovery.DegradationEvent` on the result, so
"converged" and "converged after fighting the machine" are
distinguishable. :meth:`DramDigConfig.resilient` turns the whole recovery
stack on — step retries, probe recalibration-on-drift, partition
escalation.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.core.bankfuncs import detect_bank_functions
from repro.core.coarse import CoarseDetector
from repro.core.fine import FineDetector
from repro.core.knowledge import DomainKnowledge
from repro.core.partition import PartitionConfig, partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.result import DramDigResult
from repro.core.selection import select_addresses
from repro.dram.errors import (
    CalibrationError,
    FineDetectionError,
    FunctionSearchError,
    MappingError,
    PartitionError,
    ReproError,
    SelectionError,
)
from repro.dram.mapping import AddressMapping
from repro.faults.recovery import DegradationEvent, RecoveryPolicy
from repro.machine.machine import SimulatedMachine
from repro.machine.sysinfo import gather_system_info
from repro.obs import telemetry
from repro.obs import tracing as obs

__all__ = ["DramDig", "DramDigConfig"]

# Simulated cost of faulting in and touching one byte of the buffer
# (page-fault + zeroing throughput of roughly 2.9 GiB/s).
_ALLOC_NS_PER_BYTE = 0.33

_T = TypeVar("_T")


@dataclass(frozen=True)
class DramDigConfig:
    """Tool configuration (defaults reproduce the paper's settings).

    Attributes:
        probe: measurement policy.
        partition: Algorithm 2 tolerances (delta=0.2, per_threshold=85%).
        alloc_fraction: fraction of physical memory to allocate; row bits
            near the top of the address space need a buffer larger than
            half of memory to be probed at all.
        alloc_strategy: allocation behaviour to request from the OS.
        coarse_votes: majority-vote width for Steps 1 and 3.
        conflict_recheck_sweeps: doubling-backoff re-measurement rungs
            applied to conflict verdicts in Steps 1 and 3 (0 = trust the
            vote). Defeats sticky transient mis-reads, which can only turn
            fast reads slow and cannot survive a re-measurement once their
            stickiness window expires.
        function_strategy: Algorithm 3 implementation ("nullspace" or the
            paper-literal "enumerate").
        tool_seed: the tool's internal RNG seed — fixed, hence determinism.
        max_retries: pipeline restarts allowed on validation failure, with
            measurement repeats escalated each time.
        recovery: per-step retry policy (default: retry nothing).
    """

    probe: ProbeConfig = ProbeConfig()
    partition: PartitionConfig = PartitionConfig()
    alloc_fraction: float = 0.85
    alloc_strategy: str = "contiguous"
    coarse_votes: int = 2
    conflict_recheck_sweeps: int = 0
    function_strategy: str = "nullspace"
    tool_seed: int = 0xD16
    max_retries: int = 2
    recovery: RecoveryPolicy = RecoveryPolicy()

    def __post_init__(self) -> None:
        if not 0 < self.alloc_fraction <= 1:
            raise ValueError("alloc_fraction must be in (0, 1]")
        if self.conflict_recheck_sweeps < 0:
            raise ValueError("conflict_recheck_sweeps must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    @classmethod
    def resilient(cls, base: "DramDigConfig | None" = None) -> "DramDigConfig":
        """A configuration with the full recovery stack enabled.

        Turns on probe recalibration-on-drift, partition re-verification
        escalation and round-budget escalation, per-step retries with
        backoff, and a deeper whole-pipeline restart budget. All recovery
        actions draw from fixed-seed private RNG streams, so the recovered
        mapping stays a deterministic function of the machine.
        """
        base = base if base is not None else cls()
        return dataclasses.replace(
            base,
            probe=dataclasses.replace(base.probe, max_recalibrations=64),
            partition=dataclasses.replace(
                base.partition, max_verify_sweeps=6, max_escalations=3
            ),
            conflict_recheck_sweeps=4,
            recovery=RecoveryPolicy(step_retries=4),
            max_retries=max(base.max_retries, 4),
        )


class DramDig:
    """The knowledge-assisted reverse-engineering tool."""

    def __init__(self, config: DramDigConfig | None = None):
        self.config = config if config is not None else DramDigConfig()

    def run(self, machine: SimulatedMachine) -> DramDigResult:
        """Reverse-engineer ``machine``'s DRAM address mapping.

        Raises:
            ReproError: when every retry fails (in practice: noise far
                beyond what the escalation handles, or a broken setup).
        """
        config = self.config
        degradation: list[DegradationEvent] = []
        last_error: ReproError | None = None
        run_start = machine.stats.measurements
        with obs.span("dramdig", clock=machine.clock) as run_span:
            try:
                for attempt in range(config.max_retries + 1):
                    attempt_start = machine.stats.measurements
                    with obs.span(
                        f"attempt-{attempt + 1}", clock=machine.clock
                    ) as attempt_span:
                        try:
                            result = self._run_once(machine, config, degradation)
                            result.retries = attempt
                            result.degradation = degradation
                            return result
                        except (
                            CalibrationError,
                            SelectionError,
                            PartitionError,
                            FunctionSearchError,
                            FineDetectionError,
                            MappingError,
                        ) as error:
                            # CalibrationError and SelectionError join the
                            # restart set only once the step-retry policy is
                            # active; the seed pipeline's fail-fast contract
                            # for a broken timing loop or an unusable
                            # allocation is kept.
                            if not config.recovery.enabled and isinstance(
                                error, (CalibrationError, SelectionError)
                            ):
                                raise
                            last_error = error
                            degradation.append(
                                obs.note_event(
                                    DegradationEvent(
                                        step="pipeline",
                                        action="restart",
                                        attempt=attempt + 1,
                                        detail=str(error),
                                        span=obs.current_path(),
                                    )
                                )
                            )
                            attempt_span.set("restarted", type(error).__name__)
                            # Escalate noise suppression and try again.
                            config = dataclasses.replace(
                                config,
                                probe=dataclasses.replace(
                                    config.probe, repeats=config.probe.repeats + 1
                                ),
                            )
                        finally:
                            attempt_span.set(
                                "measurements",
                                machine.stats.measurements - attempt_start,
                            )
                raise ReproError(
                    f"DRAMDig failed after {self.config.max_retries + 1} attempts: "
                    f"{last_error}"
                ) from last_error
            finally:
                run_span.set(
                    "measurements", machine.stats.measurements - run_start
                )

    # ----------------------------------------------------------- single pass

    def _run_once(
        self,
        machine: SimulatedMachine,
        config: DramDigConfig,
        degradation: list[DegradationEvent],
    ) -> DramDigResult:
        rng = np.random.default_rng(config.tool_seed)
        clock = machine.clock
        phase_seconds: dict[str, float] = {}
        start_ns = clock.checkpoint()

        @contextmanager
        def phase(name: str):
            """One pipeline phase: clock mark + tracing span + accounting.

            The measurement delta attached to the span is what makes the
            trace's accounting telescopic: phase deltas sum to their
            attempt's delta, attempt deltas to the run's.
            """
            mark = clock.checkpoint()
            before = machine.stats.measurements
            with obs.span(name, clock=clock) as span_scope:
                try:
                    yield span_scope
                finally:
                    span_scope.set(
                        "measurements", machine.stats.measurements - before
                    )
                    phase_seconds[name] = clock.since(mark) / 1e9
                    if telemetry.current_bus() is not None:
                        # Live heartbeat: both values are deterministic
                        # functions of the run, so jobs=1 and jobs=N
                        # streams stay equivalent modulo wall clock.
                        telemetry.emit(
                            "phase",
                            phase=name,
                            measurements=machine.stats.measurements - before,
                            sim_ns=clock.since(mark),
                        )

        def step(name: str, errors: tuple[type[ReproError], ...], fn: Callable[[], _T]) -> _T:
            return _run_step(
                name, fn, errors, machine, config.recovery, degradation
            )

        # Knowledge + allocation.
        with phase("allocate"):
            knowledge = DomainKnowledge.gather(
                gather_system_info(
                    machine.dmidecode_text(), machine.decode_dimms_text()
                )
            )
            pages = machine.allocate(
                int(machine.total_bytes * config.alloc_fraction),
                config.alloc_strategy,
            )
            machine.charge_analysis(pages.byte_count * _ALLOC_NS_PER_BYTE)

        # Probe calibration.
        with phase("calibrate"):
            probe = LatencyProbe(machine, config.probe)
            step("calibrate", (CalibrationError,), lambda: probe.calibrate(pages, rng))

        # Step 1 — coarse detection.
        with phase("coarse"):
            coarse = step(
                "coarse",
                (SelectionError,),
                lambda: CoarseDetector(
                    probe,
                    pages,
                    knowledge.address_bits,
                    rng,
                    votes=config.coarse_votes,
                    recheck_sweeps=config.conflict_recheck_sweeps,
                ).detect(),
            )

        # Step 2 — Algorithm 1: selection. Degenerate pools (fewer than
        # two addresses per bank — machines whose functions are single
        # bits, e.g. AMD with bank swizzle off) are padded by admitting
        # the lowest row bits into the selection range: their variation
        # adds same-bank partners to every pile without enlarging the
        # candidate function space.
        with phase("select") as select_span:
            selection_bits = coarse.bank_bits
            selection = select_addresses(pages, selection_bits)
            for row_bit in coarse.row_bits:
                if len(selection) >= 2 * knowledge.total_banks:
                    break
                selection_bits = tuple(sorted(selection_bits + (row_bit,)))
                selection = select_addresses(pages, selection_bits)
            select_span.set("pool", len(selection))

        # Step 2 — Algorithm 2: partition.
        with phase("partition") as partition_span:
            partition = step(
                "partition",
                (PartitionError,),
                lambda: partition_pool(
                    probe, selection.pool, knowledge.total_banks, rng, config.partition
                ),
            )
            partition_span.set("piles", partition.pile_count)
            partition_span.set("rounds", partition.rounds)
            if partition.ran_dry:
                degradation.append(
                    obs.note_event(
                        DegradationEvent(
                            step="partition",
                            action="ran-dry",
                            detail=(
                                f"{partition.pile_count}/{knowledge.total_banks} "
                                f"piles before the pool ran out"
                            ),
                            span=obs.current_path(),
                        )
                    )
                )
            if partition.escalations:
                degradation.append(
                    obs.note_event(
                        DegradationEvent(
                            step="partition",
                            action="escalated",
                            attempt=partition.escalations,
                            detail=(
                                f"{partition.escalations} extra round budgets, "
                                f"{partition.verify_resweeps} re-verification sweeps"
                            ),
                            span=obs.current_path(),
                        )
                    )
                )

        # Step 2 — Algorithm 3: bank address functions.
        with phase("functions") as functions_span:
            search = step(
                "functions",
                (FunctionSearchError,),
                lambda: detect_bank_functions(
                    partition.piles,
                    selection_bits,
                    knowledge.num_bank_functions,
                    knowledge.total_banks,
                    strategy=config.function_strategy,
                ),
            )
            functions_span.set("candidates", len(search.candidates))
            functions_span.set("functions", len(search.functions))

        # Step 3 — fine-grained detection.
        with phase("fine"):
            fine = step(
                "fine",
                (FineDetectionError,),
                lambda: FineDetector(
                    probe,
                    knowledge,
                    pages,
                    rng,
                    votes=config.coarse_votes,
                    recheck_sweeps=config.conflict_recheck_sweeps,
                ).detect(coarse, search.functions),
            )

        degradation.extend(probe.events)

        # Assemble + validate (raises MappingError on an inconsistent result).
        geometry = _geometry_from_knowledge(knowledge)
        mapping = AddressMapping(
            geometry=geometry,
            bank_functions=search.functions,
            row_bits=fine.row_bits,
            column_bits=fine.column_bits,
        )

        # Compile once at recovery time and register with the process-wide
        # translation service, keyed by the machine's SystemInfo facts so a
        # fleet of identical machines shares one compiled entry.
        from repro.service.translation import default_service

        translation_key = default_service().publish(mapping, system=knowledge.info)

        return DramDigResult(
            mapping=mapping,
            total_seconds=clock.since(start_ns) / 1e9,
            phase_seconds=phase_seconds,
            measurements=machine.stats.measurements,
            pool_size=len(selection),
            raw_pool_size=selection.raw_count,
            pile_count=partition.pile_count,
            partition_rounds=partition.rounds,
            partition_stop_reason=partition.stop_reason,
            coarse=coarse,
            fine=fine,
            translation_key=translation_key,
        )


def _run_step(
    name: str,
    fn: Callable[[], _T],
    retriable: tuple[type[ReproError], ...],
    machine: SimulatedMachine,
    policy: RecoveryPolicy,
    degradation: list[DegradationEvent],
) -> _T:
    """Run one pipeline step under the per-step retry policy.

    With the default policy this is a transparent call. Otherwise a
    retriable failure sleeps simulated time (exponential backoff) and
    re-runs the step in place; the backoff is what lets time-windowed
    faults — storms, sticky mis-reads — expire between attempts.
    """
    backoff_s = policy.backoff_initial_s
    for attempt in range(policy.step_retries + 1):
        try:
            return fn()
        except retriable as error:
            if attempt >= policy.step_retries:
                raise
            degradation.append(
                obs.note_event(
                    DegradationEvent(
                        step=name,
                        action="retry",
                        attempt=attempt + 1,
                        detail=str(error),
                        backoff_s=backoff_s,
                        span=obs.current_path(),
                    )
                )
            )
            obs.inc(f"pipeline.step_retries.{name}")
            machine.charge_analysis(backoff_s * 1e9)
            backoff_s *= policy.backoff_multiplier
    raise AssertionError("unreachable")  # pragma: no cover


def _geometry_from_knowledge(knowledge: DomainKnowledge):
    """Build the machine geometry DRAMDig believes in from its knowledge."""
    from repro.dram.geometry import DramGeometry

    info = knowledge.info
    return DramGeometry(
        generation=info.generation,
        total_bytes=info.total_bytes,
        channels=info.channels,
        dimms_per_channel=info.dimms_per_channel,
        ranks_per_dimm=info.ranks_per_dimm,
        banks_per_rank=info.banks_per_rank,
        row_bytes=knowledge.row_bytes,
        ecc=info.ecc,
    )
