"""Step 2, phase 3 — bank address function detection (paper Algorithm 3).

A candidate XOR mask over the bank bits ``B`` is a *possible* bank function
when it evaluates to a constant on every address of every pile (all
addresses of a pile share a bank). The paper enumerates masks from one bit
upwards per pile and intersects the per-pile sets; algebraically that
intersection is exactly the GF(2) nullspace of the piles' internal address
differences projected onto ``B``, so the default strategy computes it
directly (and scales to the 14-bit ``B`` of machines No.6/No.9). The
literal per-pile-enumeration strategy is kept for cross-checking; both are
proven equivalent by the test-suite.

After the candidate space is known, the paper's three clean-up steps run:

* ``prioritize``      — order candidates by bit count (fewest first);
* ``remove_redundant``— drop candidates that are GF(2) linear combinations
  of higher-priority ones (e.g. (14,15,18,19) given (14,18) and (15,19));
* ``check_numbering`` — exactly ``log2(#bank)`` functions must assign
  distinct numbers to all piles, counting them 0..#bank-1 when every bank
  produced a pile; when more candidates survive, combinations are tested
  in priority order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.analysis import gf2
from repro.analysis.arrays import sorted_unique
from repro.analysis.bits import deposit_bits, parity
from repro.dram.errors import FunctionSearchError
from repro.obs import tracing as obs

__all__ = ["FunctionSearchResult", "detect_bank_functions", "bank_number"]


@dataclass(frozen=True)
class FunctionSearchResult:
    """Outcome of Algorithm 3.

    Attributes:
        functions: the chosen bank address functions, priority-ordered
            (function *i* produces bank-index bit *i*).
        candidates: the full candidate space (every mask constant on every
            pile), priority-ordered — what Algorithm 3 sees before clean-up.
        numbering: pile pivot -> bank number under ``functions``.
    """

    functions: tuple[int, ...]
    candidates: tuple[int, ...]
    numbering: dict[int, int]


def bank_number(address: int, functions: tuple[int, ...]) -> int:
    """Bank index of ``address`` under an ordered function set."""
    number = 0
    for position, mask in enumerate(functions):
        number |= parity(address & mask) << position
    return number


def detect_bank_functions(
    piles: dict[int, np.ndarray],
    bank_bits: tuple[int, ...],
    expected_count: int,
    num_banks: int,
    strategy: str = "nullspace",
) -> FunctionSearchResult:
    """Run Algorithm 3 over accepted piles.

    Args:
        piles: pivot -> member addresses from Algorithm 2.
        bank_bits: the candidate bank bits ``B`` from Step 1.
        expected_count: log2(#banks) — from domain knowledge.
        num_banks: total banks — for the numbering check.
        strategy: ``"nullspace"`` (default, scalable) or ``"enumerate"``
            (the paper's literal per-pile formulation).

    Raises:
        FunctionSearchError: candidate space too small (noisy piles) or no
            combination numbers the piles distinctly.
    """
    if not piles:
        raise FunctionSearchError("no piles to analyse")
    if expected_count < 1:
        raise FunctionSearchError("expected at least one bank function")
    positions = tuple(sorted(bank_bits))
    width = len(positions)
    if width < expected_count:
        raise FunctionSearchError(
            f"only {width} candidate bank bits for {expected_count} functions"
        )

    if strategy == "nullspace":
        candidates = _candidates_nullspace(piles, positions)
    elif strategy == "enumerate":
        candidates = _candidates_enumerate(piles, positions)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    # prioritize: fewest bits first, then numerically.
    candidates.sort(key=lambda mask: (bin(mask).count("1"), mask))
    # remove_redundant: keep the highest-priority independent subset.
    independent = gf2.reduce_to_basis(candidates)
    if len(independent) < expected_count:
        raise FunctionSearchError(
            f"candidate space has rank {len(independent)}, "
            f"need {expected_count} (noisy piles or too few addresses)"
        )

    # check_numbering over combinations in priority order.
    pivots = list(piles)
    combos_tried = 0
    for combo in itertools.combinations(independent, expected_count):
        combos_tried += 1
        numbering = {pivot: bank_number(pivot, combo) for pivot in pivots}
        if _numbering_valid(numbering, num_banks):
            obs.inc("functions.candidates", len(candidates))
            obs.inc("functions.selected", len(combo))
            obs.inc("functions.numbering_combos", combos_tried)
            return FunctionSearchResult(
                functions=tuple(combo),
                candidates=tuple(candidates),
                numbering=numbering,
            )
    raise FunctionSearchError(
        f"no combination of {expected_count} candidate functions "
        f"numbers the {len(pivots)} piles distinctly"
    )


def _numbering_valid(numbering: dict[int, int], num_banks: int) -> bool:
    """Piles must get distinct numbers; with a full set of piles they must
    count exactly 0..#bank-1 (the paper's wording)."""
    numbers = list(numbering.values())
    if len(set(numbers)) != len(numbers):
        return False
    if len(numbers) == num_banks:
        return set(numbers) == set(range(num_banks))
    return all(0 <= n < num_banks for n in numbers)


# --------------------------------------------------------------- strategies


def _pile_difference_projections(
    piles: dict[int, np.ndarray], positions: tuple[int, ...]
) -> list[int]:
    """Project every within-pile address difference onto the bank bits.

    Differences must only involve bank bits — Algorithm 1 guarantees it; a
    violation means the pool was built against a different bit
    classification and is a hard error.
    """
    allowed = 0
    for position in positions:
        allowed |= 1 << position
    projections: list[int] = []
    for pivot, members in piles.items():
        if members.size == 0:
            continue
        diffs = members.astype(np.uint64) ^ np.uint64(pivot)
        if int(np.bitwise_or.reduce(diffs)) & ~allowed:
            raise FunctionSearchError(
                "pile addresses differ outside the candidate bank bits; "
                "selection and coarse detection disagree"
            )
        projected = np.zeros(diffs.shape, dtype=np.uint64)
        for index, position in enumerate(positions):
            projected |= ((diffs >> np.uint64(position)) & np.uint64(1)) << np.uint64(index)
        projections.extend(value for value in sorted_unique(projected).tolist() if value)
    return projections


def _expand(compact_masks: list[int], positions: tuple[int, ...]) -> list[int]:
    """Map compact ``B``-space masks back to physical bit positions."""
    return [deposit_bits(mask, positions) for mask in compact_masks]


def _candidates_nullspace(
    piles: dict[int, np.ndarray], positions: tuple[int, ...]
) -> list[int]:
    """Candidate space as the nullspace of all pile difference projections."""
    projections = _pile_difference_projections(piles, positions)
    basis = gf2.nullspace_basis(gf2.row_echelon(projections), len(positions))
    return _expand(gf2.span(basis), positions)


def _candidates_enumerate(
    piles: dict[int, np.ndarray], positions: tuple[int, ...]
) -> list[int]:
    """The paper's literal formulation: per-pile constant masks, then
    intersection across piles.

    Per pile, the constant masks are the nullspace of that pile's own
    differences (enumerated as a full span, as ``gen_xor_masks`` +
    ``apply_xor_mask_to_pile`` would produce); the intersection of the
    per-pile sets follows.
    """
    width = len(positions)
    candidate_set: set[int] | None = None
    for pivot, members in piles.items():
        single = {pivot: members}
        projections = _pile_difference_projections(single, positions)
        basis = gf2.nullspace_basis(gf2.row_echelon(projections), width)
        pile_masks = set(gf2.span(basis))
        candidate_set = pile_masks if candidate_set is None else candidate_set & pile_masks
        if not candidate_set:
            break
    return _expand(sorted(candidate_set or ()), positions)
