"""Finding physical-address pairs with a prescribed bit difference.

Steps 1 and 3 of the pipeline repeatedly need two *allocated* physical
addresses that differ in exactly the bits of a mask (one bit for row
detection, row+candidate for column detection, a whole bank function for
fine-grained detection). On real hardware the tool scans its buffer's
pagemap for such pairs; here we scan the allocated page set, first by
random sampling (cheap, succeeds immediately on dense buffers) and then by
an exhaustive vectorized sweep (so sparse/fragmented allocations still
work when a pair exists at all).
"""

from __future__ import annotations

import numpy as np

from repro.dram.errors import SelectionError
from repro.machine.allocator import PAGE_SHIFT, PhysPages

__all__ = ["find_pair", "find_pairs"]


def find_pair(
    pages: PhysPages,
    mask: int,
    rng: np.random.Generator,
    sample_tries: int = 64,
) -> tuple[int, int]:
    """Return allocated addresses ``(a, a ^ mask)``.

    Random sampling first; exhaustive page-set sweep as fallback.

    Raises:
        SelectionError: when no allocated pair differs by ``mask`` (e.g. the
            buffer is smaller than half the address space and ``mask`` flips
            the top bit).
    """
    if mask <= 0:
        raise SelectionError("pair mask must be positive")
    if mask >= pages.total_bytes:
        raise SelectionError(
            f"mask {mask:#x} exceeds the {pages.total_bytes:#x}-byte address space"
        )
    page_mask = mask >> PAGE_SHIFT

    # Fast path: random allocated addresses, check the partner's page.
    samples = pages.sample_addresses(sample_tries, rng)
    partners = samples ^ np.uint64(mask)
    valid = (partners < pages.total_bytes) & pages.has_pages(partners)
    hits = np.flatnonzero(valid)
    if hits.size:
        base = int(samples[hits[0]])
        return base, base ^ mask

    # Exhaustive path: frames whose xor-partner frame is also allocated.
    frames = pages.page_numbers
    partner_frames = frames ^ np.uint64(page_mask)
    valid = np.isin(partner_frames, frames)
    hits = np.flatnonzero(valid)
    if hits.size == 0:
        raise SelectionError(
            f"no allocated address pair differs by mask {mask:#x}; "
            f"allocate a larger buffer"
        )
    index = int(hits[rng.integers(hits.size)])
    # Sub-page bits of the base are zero, so base ^ mask flips them in-page.
    base = int(frames[index]) << PAGE_SHIFT
    return base, base ^ mask


def find_pairs(
    pages: PhysPages,
    mask: int,
    count: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Up to ``count`` distinct pairs differing by ``mask`` (at least one).

    Used when a detection step wants majority voting over several bases.
    """
    if count <= 0:
        raise SelectionError("pair count must be positive")
    pairs: list[tuple[int, int]] = []
    seen: set[int] = set()
    attempts = 0
    while len(pairs) < count and attempts < 8 * count:
        attempts += 1
        base, partner = find_pair(pages, mask, rng)
        if base not in seen:
            seen.add(base)
            seen.add(partner)
            pairs.append((base, partner))
    if not pairs:
        raise SelectionError(f"could not find any pair for mask {mask:#x}")
    return pairs
