"""Step 2, phase 1 — physical-address selection (paper Algorithm 1).

Given the candidate bank bits ``B`` from Step 1, select the smallest set of
allocated addresses whose ``B``-bit patterns cover every combination:

1. ``range_mask`` spans ``[b_min, b_max]``; find an allocated page ``p``
   with all range bits set whose whole covered range ``[p - range_mask,
   p + PAGE_SIZE)`` is allocated (retrying over pages on misses — the
   ``page_miss`` path of the paper).
2. ``miss_mask`` marks the in-range bits *not* in ``B``; ORing it into each
   candidate collapses addresses that differ only in irrelevant bits, "so
   that we only focus on the reasonable number of addresses that actually
   matter the address functions".
3. Walk the range in ``1 << b_min`` strides, force the miss bits, keep the
   addresses whose page is allocated.

Implementation note: the paper states the page-selection condition as
``(p & range_mask) == range_mask``, which cannot hold verbatim when
``b_min`` is below the page shift (page-aligned addresses have zero
sub-page bits — e.g. channel bit 6 on machines No.1/No.7/No.8). We apply
the condition to the page-visible part of the mask, which is what any
working implementation must do; sub-page strides are handled inside the
found range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.errors import SelectionError
from repro.analysis.arrays import sorted_unique
from repro.machine.allocator import PAGE_SHIFT, PAGE_SIZE, PhysPages

__all__ = ["SelectionResult", "select_addresses"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of Algorithm 1.

    Attributes:
        pool: unique selected physical addresses (``phys_pool``), sorted.
        raw_count: pool size before deduplicating miss-mask aliases — the
            count the paper quotes (~16,000 on No.6/No.9).
        range_start: ``P_start``.
        range_end: ``P_end``.
        range_mask: the ``[b_min, b_max]`` span mask.
        miss_mask: in-range bits irrelevant to bank functions (forced to 1).
    """

    pool: np.ndarray
    raw_count: int
    range_start: int
    range_end: int
    range_mask: int
    miss_mask: int

    def __len__(self) -> int:
        return int(self.pool.size)


def select_addresses(pages: PhysPages, bank_bits: tuple[int, ...]) -> SelectionResult:
    """Run Algorithm 1 over the allocated pages.

    Raises:
        SelectionError: when no allocated page range covers the bank bits.
    """
    if not bank_bits:
        raise SelectionError("no candidate bank bits to select over")
    b_min, b_max = min(bank_bits), max(bank_bits)
    if b_min < 0:
        raise SelectionError("bank bits must be non-negative")
    range_mask = (1 << (b_max + 1)) - (1 << b_min)
    miss_mask = 0
    for position in range(b_min, b_max + 1):
        if position not in bank_bits:
            miss_mask += 1 << position

    # Page-visible part of the range condition (see module docstring).
    condition_mask = range_mask & ~(PAGE_SIZE - 1)

    # Filter in frame space: the condition mask is page-aligned, so a page
    # address satisfies it iff its frame number satisfies the shifted mask —
    # no need to materialise an address per allocated page.
    frames = pages.page_numbers
    condition_frames = np.uint64(condition_mask >> PAGE_SHIFT)
    candidates = frames[(frames & condition_frames) == condition_frames]
    range_start = range_end = -1
    for candidate_frame in candidates:
        candidate = int(candidate_frame) << PAGE_SHIFT
        p_start = candidate - condition_mask
        p_end = candidate + PAGE_SIZE
        if pages.has_range(p_start, p_end):
            range_start, range_end = p_start, p_end
            break
    if range_start < 0:
        raise SelectionError(
            f"no allocated page range covers bank bits {sorted(bank_bits)} "
            f"(need {condition_mask + PAGE_SIZE:#x} contiguous bytes)"
        )

    stride = 1 << b_min
    walk = np.arange(range_start, range_end, stride, dtype=np.uint64)
    primed = walk | np.uint64(miss_mask)
    in_memory = primed < np.uint64(pages.total_bytes)
    primed = primed[in_memory]
    allocated = primed[pages.has_pages(primed)]
    raw_count = int(allocated.size)
    pool = sorted_unique(allocated)
    if pool.size == 0:
        raise SelectionError("selection produced an empty address pool")
    return SelectionResult(
        pool=pool,
        raw_count=raw_count,
        range_start=range_start,
        range_end=range_end,
        range_mask=range_mask,
        miss_mask=miss_mask,
    )
