"""DRAMDig core: the knowledge-assisted reverse-engineering pipeline."""

from repro.core.bankfuncs import FunctionSearchResult, bank_number, detect_bank_functions
from repro.core.coarse import CoarseDetector, CoarseResult
from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.fine import FineDetector, FineResult
from repro.core.knowledge import DomainKnowledge
from repro.core.pairs import find_pair, find_pairs
from repro.core.partition import PartitionConfig, PartitionResult, partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.result import DramDigResult
from repro.core.selection import SelectionResult, select_addresses
from repro.core.verify import VerificationReport, verify_mapping

__all__ = [
    "FunctionSearchResult",
    "bank_number",
    "detect_bank_functions",
    "CoarseDetector",
    "CoarseResult",
    "DramDig",
    "DramDigConfig",
    "FineDetector",
    "FineResult",
    "DomainKnowledge",
    "find_pair",
    "find_pairs",
    "PartitionConfig",
    "PartitionResult",
    "partition_pool",
    "LatencyProbe",
    "ProbeConfig",
    "DramDigResult",
    "SelectionResult",
    "select_addresses",
    "VerificationReport",
    "verify_mapping",
]
