"""End-to-end access-latency model.

What a userspace timing loop measures is not the bare DRAM command latency:
it includes the constant pipeline/interconnect/controller overhead of an
uncached load, Gaussian measurement jitter, and occasional large spikes
when the measurement window collides with a refresh (tRFC stall) or a
scheduler interrupt. The reverse-engineering tools must survive all of
that, so the model keeps each term explicit and configurable.

Latency classes (paper Section III-B):

* ``ROW_HIT``      — same bank, row already open: fastest.
* ``ROW_CLOSED``   — bank precharged, no conflict: activate + CAS.
* ``ROW_CONFLICT`` — same bank, different open row: precharge + activate +
  CAS. This is the slow class the timing channel detects.
* ``DIFFERENT_BANK`` — alternating pairs in two banks leave both row
  buffers open, so each access is a row hit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dram.spec import DdrGeneration, DdrTimings, default_timings

__all__ = ["AccessClass", "LatencyModel", "NoiseParams"]


class AccessClass(enum.Enum):
    """Which row-buffer case an access falls into."""

    ROW_HIT = "row_hit"
    ROW_CLOSED = "row_closed"
    ROW_CONFLICT = "row_conflict"
    DIFFERENT_BANK = "different_bank"


@dataclass(frozen=True)
class NoiseParams:
    """Measurement-noise configuration.

    Attributes:
        jitter_sigma_ns: standard deviation of per-measurement Gaussian
            jitter (bus arbitration, rank scheduling, TLB effects).
        outlier_probability: chance that one latency summary is contaminated
            by a refresh/interrupt spike.
        outlier_extra_ns: size of such a spike.
        seed_stream: offset mixed into noise RNG streams so distinct
            machines decorrelate.
    """

    jitter_sigma_ns: float = 2.5
    outlier_probability: float = 0.02
    outlier_extra_ns: float = 60.0
    seed_stream: int = 0

    def __post_init__(self) -> None:
        if self.jitter_sigma_ns < 0:
            raise ValueError("jitter_sigma_ns must be non-negative")
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ValueError("outlier_probability must be a probability")
        if self.outlier_extra_ns < 0:
            raise ValueError("outlier_extra_ns must be non-negative")

    @classmethod
    def noiseless(cls) -> "NoiseParams":
        """Noise-free configuration for deterministic unit tests."""
        return cls(jitter_sigma_ns=0.0, outlier_probability=0.0, outlier_extra_ns=0.0)


@dataclass(frozen=True)
class LatencyModel:
    """Translate access classes into measured nanoseconds.

    Attributes:
        timings: DRAM command timings.
        base_overhead_ns: constant uncached-load overhead (core pipeline,
            L3 miss path, memory-controller queue) added to every access.
        noise: measurement-noise parameters.
    """

    timings: DdrTimings
    base_overhead_ns: float = 62.0
    noise: NoiseParams = NoiseParams()

    def __post_init__(self) -> None:
        # The pair-measurement hot paths resolve the two ideal latencies on
        # every call; cache them once (frozen dataclass, so via
        # object.__setattr__ — they are derived values, not fields, and do
        # not participate in equality or repr).
        object.__setattr__(
            self, "_fast_pair_ns", self.ideal_ns(AccessClass.DIFFERENT_BANK)
        )
        object.__setattr__(
            self, "_slow_pair_ns", self.ideal_ns(AccessClass.ROW_CONFLICT)
        )

    @classmethod
    def for_generation(
        cls, generation: DdrGeneration, noise: NoiseParams | None = None
    ) -> "LatencyModel":
        """Model with the default JEDEC speed bin of ``generation``."""
        return cls(
            timings=default_timings(generation),
            noise=noise if noise is not None else NoiseParams(),
        )

    # ------------------------------------------------------------ ideal form

    def ideal_ns(self, access_class: AccessClass) -> float:
        """Noise-free latency of one access of the given class."""
        timings = self.timings
        if access_class is AccessClass.ROW_HIT:
            dram = timings.row_hit_ns
        elif access_class is AccessClass.ROW_CLOSED:
            dram = timings.row_closed_ns
        elif access_class is AccessClass.ROW_CONFLICT:
            dram = timings.row_conflict_ns
        else:  # DIFFERENT_BANK behaves as a row hit once both rows are open
            dram = timings.row_hit_ns
        return self.base_overhead_ns + dram

    @property
    def conflict_gap_ns(self) -> float:
        """Ideal fast/slow gap a perfect probe would observe."""
        return self.ideal_ns(AccessClass.ROW_CONFLICT) - self.ideal_ns(
            AccessClass.DIFFERENT_BANK
        )

    # ------------------------------------------------------------ noisy form

    def sample_ns(self, access_class: AccessClass, rng: np.random.Generator) -> float:
        """One noisy latency sample."""
        latency = self.ideal_ns(access_class)
        if self.noise.jitter_sigma_ns:
            latency += rng.normal(0.0, self.noise.jitter_sigma_ns)
        if self.noise.outlier_probability and rng.random() < self.noise.outlier_probability:
            latency += self.noise.outlier_extra_ns * rng.random()
        return max(latency, 1.0)

    def sample_pair_ns(self, is_conflict: bool, rng: np.random.Generator) -> float:
        """One pair-measurement latency summary, scalar form.

        Draws from ``rng`` in exactly the order a *single-element*
        :meth:`sample_batch_ns` call does (one normal, then two uniforms
        when outliers are enabled — the second uniform is consumed whether
        or not the outlier hits, as the batch form does), without the
        array-allocation overhead. Each scalar call is therefore
        bit-identical, value and generator state, to
        ``sample_batch_ns(np.array([flag]), rng)[0]`` — which is how
        ``measure_latency`` historically drew. One *multi-element* batch
        call draws its normals and uniforms in blocks and so consumes the
        stream in a different order; the two are interchangeable only
        call-for-call, and ``tests/memctrl/test_timing.py`` pins both
        facts.
        """
        latency = self._slow_pair_ns if is_conflict else self._fast_pair_ns
        noise = self.noise
        if noise.jitter_sigma_ns:
            latency += rng.normal(0.0, noise.jitter_sigma_ns)
        if noise.outlier_probability:
            hit = rng.random() < noise.outlier_probability
            latency += (hit * noise.outlier_extra_ns) * rng.random()
        return max(latency, 1.0)

    def sample_batch_ns(
        self, conflict_flags: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized sampling: one latency summary per pair.

        ``conflict_flags`` is a boolean array (True = the pair is
        same-bank-different-row). Each element models the *median of a
        measurement loop*, so the Gaussian jitter here is the jitter of the
        median — smaller than per-access jitter — while outliers model whole
        measurements ruined by refresh collisions or preemption, which can
        flip a fast pair into the slow band and vice versa.
        """
        flags = np.asarray(conflict_flags, dtype=bool)
        # np.where over two float scalars already yields a fresh float64
        # array; the historical .astype(float64) was a same-dtype copy.
        latencies = np.where(flags, self._slow_pair_ns, self._fast_pair_ns)
        noise = self.noise
        if noise.jitter_sigma_ns:
            latencies += rng.normal(0.0, noise.jitter_sigma_ns, size=flags.shape)
        if noise.outlier_probability:
            hit = rng.random(size=flags.shape) < noise.outlier_probability
            latencies += hit * noise.outlier_extra_ns * rng.random(size=flags.shape)
        return np.maximum(latencies, 1.0, out=latencies)
