"""Refresh scheduling model.

DRAM cells leak; the controller issues a refresh command every tREFI on
average and the target rank stalls for tRFC. For a userspace timing loop
this shows up in two ways the tools must tolerate:

* a small fraction of measurements are *contaminated* (the loop straddles a
  refresh and reads a latency spike) — folded into the outlier term of the
  noise model;
* rows genuinely lose their charge-disturb damage at each refresh, which is
  why rowhammer must complete within one refresh interval (64 ms window in
  the rowhammer fault model).

This module computes the contamination probability from first principles so
the simulator's outlier rate is physically grounded rather than arbitrary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.spec import DdrTimings

__all__ = ["RefreshModel"]


@dataclass(frozen=True)
class RefreshModel:
    """Refresh behaviour of one rank.

    Attributes:
        timings: DRAM timings (tREFI / tRFC are used).
        retention_window_ms: time between two refreshes of the *same* row —
            the window a rowhammer attack must fit into (64 ms standard).
    """

    timings: DdrTimings
    retention_window_ms: float = 64.0

    def __post_init__(self) -> None:
        if self.retention_window_ms <= 0:
            raise ValueError("retention_window_ms must be positive")

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the rank is stalled refreshing (tRFC / tREFI)."""
        return self.timings.trfc / self.timings.trefi

    def contamination_probability(self, window_ns: float) -> float:
        """Probability a measurement window of ``window_ns`` overlaps a
        refresh stall.

        A window overlaps if a refresh starts within ``window_ns + trfc``
        before its end; refreshes arrive every ``trefi``.
        """
        if window_ns < 0:
            raise ValueError("window_ns must be non-negative")
        probability = (window_ns + self.timings.trfc) / self.timings.trefi
        return min(probability, 1.0)

    def activations_possible(self, access_ns: float) -> int:
        """How many aggressor-row activations fit into one retention window
        at ``access_ns`` per activation — the hammer count available to a
        rowhammer attacker before the victim row is refreshed."""
        if access_ns <= 0:
            raise ValueError("access_ns must be positive")
        window_ns = self.retention_window_ms * 1e6
        usable = window_ns * (1.0 - self.duty_cycle)
        return int(usable / access_ns)
