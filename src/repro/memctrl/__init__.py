"""Memory-controller simulator: timing model, row-buffer state, refresh."""

from repro.memctrl.controller import AccessRecord, MemoryController
from repro.memctrl.refresh import RefreshModel
from repro.memctrl.scheduler import (
    CommandEvent,
    CommandScheduler,
    DramCommand,
    RequestResult,
)
from repro.memctrl.timing import AccessClass, LatencyModel, NoiseParams
from repro.memctrl.trace import (
    TraceStats,
    matrix_column_trace,
    random_trace,
    run_trace,
    sequential_trace,
    strided_trace,
)

__all__ = [
    "AccessRecord",
    "MemoryController",
    "RefreshModel",
    "AccessClass",
    "LatencyModel",
    "CommandEvent",
    "CommandScheduler",
    "DramCommand",
    "RequestResult",
    "NoiseParams",
    "TraceStats",
    "matrix_column_trace",
    "random_trace",
    "run_trace",
    "sequential_trace",
    "strided_trace",
]
