"""Command-level DRAM model: ACT/RD/PRE scheduling under JEDEC constraints.

The rest of the library models an access's latency with the closed-form
row-hit / row-closed / row-conflict classes. This module derives those
numbers from first principles: a FR-FCFS (first-ready, first-come
first-served) scheduler issuing actual DRAM commands against per-bank
state machines that enforce the JEDEC timing constraints —

=====  ==========================================  ==================
tRCD   ACT -> first column command, same bank      activate-to-read
tRP    PRE -> ACT, same bank                       precharge time
tRAS   ACT -> PRE, same bank                       minimum row open
tRC    ACT -> ACT, same bank (tRAS + tRP)          row cycle
tCCD   column command -> column command, any bank  data-bus burst gap
tFAW   any 4 ACTs within a rolling window, rank    activation power cap
=====  ==========================================  ==================

The test-suite cross-validates the two fidelity levels: an alternating
conflict pair scheduled here converges to per-access latencies matching
``LatencyModel.ideal_ns(ROW_CONFLICT)`` (minus the constant core-side
overhead), and tFAW bounds the activation rate a rowhammer attacker can
actually sustain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrTimings, default_timings

__all__ = ["DramCommand", "CommandEvent", "RequestResult", "CommandScheduler"]

# Data-bus constraints not in DdrTimings (burst length 8 at 2x data rate).
TCCD_NS = 5.0
TFAW_NS = 30.0
TFAW_ACTIVATIONS = 4


class DramCommand(enum.Enum):
    """The command set the scheduler issues."""

    ACT = "ACT"
    RD = "RD"
    PRE = "PRE"


@dataclass(frozen=True)
class CommandEvent:
    """One issued command, for trace inspection."""

    time_ns: float
    command: DramCommand
    bank: int
    row: int


@dataclass(frozen=True)
class RequestResult:
    """Per-request outcome.

    Attributes:
        phys_addr: the request's address.
        arrival_ns: when it entered the queue.
        data_ns: when its data burst completed.
    """

    phys_addr: int
    arrival_ns: float
    data_ns: float

    @property
    def latency_ns(self) -> float:
        return self.data_ns - self.arrival_ns


@dataclass
class _BankState:
    open_row: int | None = None
    last_act_ns: float = -1e18
    last_pre_ns: float = -1e18
    ready_for_column_ns: float = -1e18


class CommandScheduler:
    """FR-FCFS read scheduling for one channel.

    Requests are processed in order with full timing enforcement; "first
    ready" shows up as row hits completing with only tCCD gaps while
    conflicts pay the PRE + ACT + CAS pipeline.
    """

    def __init__(self, mapping: AddressMapping, timings: DdrTimings | None = None):
        self.mapping = mapping
        self.timings = (
            timings
            if timings is not None
            else default_timings(mapping.geometry.generation)
        )
        self._banks: dict[int, _BankState] = {}
        self._bus_free_ns = 0.0
        self._act_times: list[float] = []  # rolling tFAW window (per rank ~ channel)
        self.events: list[CommandEvent] = []
        self.now_ns = 0.0

    # ------------------------------------------------------------- scheduling

    def schedule(self, requests: list[tuple[int, float]]) -> list[RequestResult]:
        """Schedule ``(phys_addr, arrival_ns)`` reads; returns per-request
        results in completion order of the input sequence."""
        results = []
        for phys_addr, arrival_ns in requests:
            results.append(self._schedule_one(phys_addr, arrival_ns))
        return results

    def access(self, phys_addr: int) -> RequestResult:
        """Back-to-back access (arrives the moment the scheduler is free)."""
        return self._schedule_one(phys_addr, self.now_ns)

    def _schedule_one(self, phys_addr: int, arrival_ns: float) -> RequestResult:
        timings = self.timings
        bank_index = self.mapping.bank_of(phys_addr)
        row = self.mapping.row_of(phys_addr)
        bank = self._banks.setdefault(bank_index, _BankState())
        clock = max(arrival_ns, self.now_ns)

        if bank.open_row is not None and bank.open_row != row:
            # Conflict: precharge first (respecting tRAS since the ACT).
            pre_time = max(clock, bank.last_act_ns + timings.tras)
            self._emit(pre_time, DramCommand.PRE, bank_index, bank.open_row)
            bank.last_pre_ns = pre_time
            bank.open_row = None
            clock = pre_time

        if bank.open_row is None:
            act_time = max(
                clock,
                bank.last_pre_ns + timings.trp,
                bank.last_act_ns + timings.tras + timings.trp,  # tRC
                self._tfaw_gate(),
            )
            self._emit(act_time, DramCommand.ACT, bank_index, row)
            bank.last_act_ns = act_time
            bank.open_row = row
            bank.ready_for_column_ns = act_time + timings.trcd
            self._act_times.append(act_time)
            if len(self._act_times) > TFAW_ACTIVATIONS:
                self._act_times = self._act_times[-TFAW_ACTIVATIONS:]
            clock = act_time

        read_time = max(clock, bank.ready_for_column_ns, self._bus_free_ns)
        self._emit(read_time, DramCommand.RD, bank_index, row)
        data_ns = read_time + timings.tcas
        self._bus_free_ns = read_time + TCCD_NS
        self.now_ns = read_time
        return RequestResult(phys_addr=phys_addr, arrival_ns=arrival_ns, data_ns=data_ns)

    # -------------------------------------------------------------- internals

    def _tfaw_gate(self) -> float:
        """Earliest time a new ACT may issue under the four-activation
        window."""
        if len(self._act_times) < TFAW_ACTIVATIONS:
            return 0.0
        return self._act_times[-TFAW_ACTIVATIONS] + TFAW_NS

    def _emit(self, time_ns: float, command: DramCommand, bank: int, row: int) -> None:
        self.events.append(
            CommandEvent(time_ns=time_ns, command=command, bank=bank, row=row)
        )

    # ------------------------------------------------------------- analytics

    def max_activation_rate_per_pair(self) -> float:
        """Sustainable alternating-pair activations per second, bounded by
        tRC on each bank (the physical cap on rowhammer intensity)."""
        trc = self.timings.tras + self.timings.trp
        return 2.0 / (trc * 1e-9) / 2.0  # two banks alternating, each tRC-bound
