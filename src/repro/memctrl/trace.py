"""Trace-driven row-buffer analysis: why bank hashes exist at all.

The paper reverse-engineers Intel's XOR bank functions; this module shows
what those functions are *for*. Run an access trace through the
memory-controller state machine and measure row-buffer behaviour — then
compare a hashed mapping against a naive (linear bank bits) one on the
same trace. Strided workloads that hammer a single bank under the naive
mapping spread across banks under the XOR hash, and the hit/conflict
statistics quantify it.

Used by ``examples/why_xor_hashing.py`` and the workload bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.mapping import AddressMapping
from repro.memctrl.controller import MemoryController
from repro.memctrl.timing import AccessClass, LatencyModel

__all__ = [
    "TraceStats",
    "run_trace",
    "sequential_trace",
    "strided_trace",
    "random_trace",
    "matrix_column_trace",
]


@dataclass
class TraceStats:
    """Row-buffer statistics of one trace replay.

    Attributes:
        accesses: trace length.
        hits: row-buffer hits.
        closed: accesses to precharged banks.
        conflicts: row-buffer conflicts (the expensive case).
        bank_touches: per-bank access counts.
        total_ns: ideal (noise-free) DRAM time, fully serialised.
        bank_busy_ns: per-bank DRAM busy time.
    """

    accesses: int = 0
    hits: int = 0
    closed: int = 0
    conflicts: int = 0
    bank_touches: dict[int, int] = field(default_factory=dict)
    total_ns: float = 0.0
    bank_busy_ns: dict[int, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    @property
    def banks_used(self) -> int:
        return len(self.bank_touches)

    @property
    def bank_imbalance(self) -> float:
        """Max share of accesses landing in one bank (1.0 = fully serial)."""
        if not self.bank_touches or not self.accesses:
            return 0.0
        return max(self.bank_touches.values()) / self.accesses

    @property
    def parallel_ns(self) -> float:
        """DRAM time with perfect bank-level parallelism: the busiest
        bank's service time bounds the trace. The gap between this and
        ``total_ns`` is what XOR bank hashing buys on strided workloads."""
        if not self.bank_busy_ns:
            return 0.0
        return max(self.bank_busy_ns.values())

    @property
    def speedup_from_banking(self) -> float:
        """``total_ns / parallel_ns`` — effective bank parallelism."""
        parallel = self.parallel_ns
        return self.total_ns / parallel if parallel else 1.0


def run_trace(
    mapping: AddressMapping,
    addresses: np.ndarray,
    latency_model: LatencyModel | None = None,
) -> TraceStats:
    """Replay ``addresses`` through an open-page controller on ``mapping``."""
    model = (
        latency_model
        if latency_model is not None
        else LatencyModel.for_generation(mapping.geometry.generation)
    )
    controller = MemoryController(mapping=mapping)
    stats = TraceStats()
    for address in addresses:
        record = controller.access(int(address))
        stats.accesses += 1
        if record.access_class is AccessClass.ROW_HIT:
            stats.hits += 1
        elif record.access_class is AccessClass.ROW_CLOSED:
            stats.closed += 1
        else:
            stats.conflicts += 1
        stats.bank_touches[record.bank] = stats.bank_touches.get(record.bank, 0) + 1
        access_ns = model.ideal_ns(record.access_class)
        stats.total_ns += access_ns
        stats.bank_busy_ns[record.bank] = (
            stats.bank_busy_ns.get(record.bank, 0.0) + access_ns
        )
    return stats


# ------------------------------------------------------------------ traces


def sequential_trace(start: int, count: int, step: int = 64) -> np.ndarray:
    """A streaming read: consecutive cache lines."""
    if count <= 0 or step <= 0:
        raise ValueError("count and step must be positive")
    return (start + step * np.arange(count, dtype=np.uint64)).astype(np.uint64)


def strided_trace(start: int, count: int, stride: int) -> np.ndarray:
    """A fixed-stride sweep — the classic hash-or-suffer workload."""
    if count <= 0 or stride <= 0:
        raise ValueError("count and stride must be positive")
    return (start + stride * np.arange(count, dtype=np.uint64)).astype(np.uint64)


def random_trace(
    total_bytes: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random cache lines over the whole memory."""
    if count <= 0:
        raise ValueError("count must be positive")
    lines = rng.integers(0, total_bytes >> 6, size=count, dtype=np.uint64)
    return lines << np.uint64(6)


def matrix_column_trace(
    base: int, rows: int, row_stride_bytes: int, columns: int
) -> np.ndarray:
    """Column-major traversal of a row-major matrix: ``columns`` passes of
    ``rows`` accesses each, one ``row_stride_bytes`` apart — the workload
    that murders naive bank layouts."""
    if rows <= 0 or columns <= 0 or row_stride_bytes <= 0:
        raise ValueError("dimensions must be positive")
    trace = []
    for column in range(columns):
        offset = base + column * 64
        trace.extend(
            offset + row * row_stride_bytes for row in range(rows)
        )
    return np.array(trace, dtype=np.uint64)
