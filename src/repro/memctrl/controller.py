"""Memory-controller simulator: address decode plus row-buffer state.

Two levels of fidelity, both driven by the same ground-truth
:class:`~repro.dram.mapping.AddressMapping`:

* :class:`MemoryController` — a stateful open-page controller. Every
  ``access`` decodes the address, consults the per-bank open row, returns
  the access class, and updates the row buffer. Used by unit tests and the
  rowhammer simulator, where activation *counts* matter.
* :meth:`MemoryController.classify_pair` /
  :meth:`MemoryController.classify_pairs` — the closed form for the
  alternating-access measurement loop every tool runs: accessing addresses
  (a, b, a, b, ...) with cache flushes converges after the first iteration
  to ROW_CONFLICT when a and b are same-bank-different-row, ROW_HIT when
  they share a row, and DIFFERENT_BANK otherwise. The property test in
  ``tests/memctrl/test_controller.py`` proves the closed form agrees with
  stepping the state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.mapping import AddressMapping
from repro.memctrl.timing import AccessClass

__all__ = ["MemoryController", "AccessRecord"]


@dataclass(frozen=True)
class AccessRecord:
    """Result of one simulated access."""

    phys_addr: int
    bank: int
    row: int
    access_class: AccessClass


@dataclass
class MemoryController:
    """Open-page memory controller over a ground-truth mapping.

    Attributes:
        mapping: the machine's (hidden) address mapping.
        open_rows: per-bank open row; absent key = bank precharged.
        activation_counts: per-(bank, row) activation counter since the last
            reset — consumed by the rowhammer fault model.
    """

    mapping: AddressMapping
    open_rows: dict[int, int] = field(default_factory=dict)
    activation_counts: dict[tuple[int, int], int] = field(default_factory=dict)

    # --------------------------------------------------------- state machine

    def access(self, phys_addr: int) -> AccessRecord:
        """Perform one (uncached) access; update row-buffer state."""
        bank = self.mapping.bank_of(phys_addr)
        row = self.mapping.row_of(phys_addr)
        open_row = self.open_rows.get(bank)
        if open_row is None:
            access_class = AccessClass.ROW_CLOSED
        elif open_row == row:
            access_class = AccessClass.ROW_HIT
        else:
            access_class = AccessClass.ROW_CONFLICT
        if open_row != row:
            self.open_rows[bank] = row
            key = (bank, row)
            self.activation_counts[key] = self.activation_counts.get(key, 0) + 1
        return AccessRecord(phys_addr=phys_addr, bank=bank, row=row, access_class=access_class)

    def precharge_all(self) -> None:
        """Close every row buffer (e.g. after a refresh sweep)."""
        self.open_rows.clear()

    def reset_activations(self) -> None:
        """Zero the activation counters (a refresh restores cell charge)."""
        self.activation_counts.clear()

    # ---------------------------------------------------------- closed forms

    def classify_pair(self, addr_a: int, addr_b: int) -> AccessClass:
        """Steady-state access class of an alternating (a, b) timing loop."""
        bank_a = self.mapping.bank_of(addr_a)
        bank_b = self.mapping.bank_of(addr_b)
        if bank_a != bank_b:
            return AccessClass.DIFFERENT_BANK
        if self.mapping.row_of(addr_a) == self.mapping.row_of(addr_b):
            return AccessClass.ROW_HIT
        return AccessClass.ROW_CONFLICT

    def classify_pairs(self, base: int, others: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_pair` against one base address.

        Returns a boolean array: True where (base, other) is a row conflict
        (the only class the timing channel distinguishes as "slow").
        """
        others = np.asarray(others, dtype=np.uint64)
        base_bank = self.mapping.bank_of(base)
        base_row = self.mapping.row_of(base)
        same_bank = self.mapping.bank_of_array(others) == base_bank
        diff_row = self.mapping.row_of_array(others) != base_row
        return same_bank & diff_row

    def classify_pairwise(self, bases: np.ndarray, partners: np.ndarray) -> np.ndarray:
        """Element-wise :meth:`classify_pair` over two equal-length arrays.

        Returns a boolean array: True where ``(bases[i], partners[i])`` is a
        row conflict. Agrees exactly with the scalar form (same integer
        decode), which is what lets batched measurement paths replace scalar
        loops without changing a single classification.
        """
        bases = np.asarray(bases, dtype=np.uint64)
        partners = np.asarray(partners, dtype=np.uint64)
        same_bank = self.mapping.bank_of_array(bases) == self.mapping.bank_of_array(partners)
        diff_row = self.mapping.row_of_array(bases) != self.mapping.row_of_array(partners)
        return same_bank & diff_row
