"""Shared logging setup for the CLI and the perf harness.

Status and diagnostic lines ("Reverse-engineering No.4 ...", perf
progress) go through the ``repro`` logger to **stderr**; artefact and
summary output (tables, run summaries, recovered mappings) stays on
**stdout**. That split is load-bearing: the byte-identity tests and the
kill-and-resume smoke compare stdout, so diagnostics must never land
there.

:func:`setup_logging` is idempotent and rebinds its handler to the
*current* ``sys.stderr`` on every call — required under pytest, where
``capsys`` swaps the stream between tests.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "setup_logging"]

_LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: str = "repro") -> logging.Logger:
    """The shared ``repro`` logger (or a child of it)."""
    return logging.getLogger(name)


def setup_logging(level: str = "info", quiet: bool = False) -> logging.Logger:
    """(Re)configure the ``repro`` logger: plain messages on stderr.

    ``quiet`` raises the threshold to WARNING regardless of ``level``,
    silencing status lines while keeping real problems visible.
    """
    if level not in _LEVELS:
        raise ValueError(f"log level must be one of {_LEVELS}, got {level!r}")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.WARNING if quiet else getattr(logging, level.upper()))
    logger.propagate = False
    return logger
