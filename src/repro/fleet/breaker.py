"""Per-hypothesis circuit breaker for the confirm-or-fallback protocol.

A poisoned or stale store entry that ranks well by similarity would be
tried — and would fail confirmation — on *every* subsequent lookalike
machine, taxing the whole fleet with wasted probe campaigns. The breaker
bounds that tax: after ``threshold`` consecutive confirmation failures a
hypothesis is quarantined (breaker open) and stops being offered as a
candidate. A success resets the streak (breaker stays closed), matching
the intuition that a genuine family prior occasionally loses a noisy
confirmation without being wrong.

The breaker is deliberately a plain in-memory object keyed by hypothesis
fingerprint: the orchestrator seeds it from the knowledge store's
persisted ``streak``/``quarantined`` fields at run start and writes
decisions back, so quarantine survives restarts while the decision logic
stays independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CircuitBreaker"]


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker over hypothesis keys.

    Attributes:
        threshold: consecutive confirmation failures that open the
            breaker for a key. Must be positive.
        streaks: live consecutive-failure counts.
        open_keys: quarantined hypothesis keys.
    """

    threshold: int = 3
    streaks: dict[str, int] = field(default_factory=dict)
    open_keys: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("breaker threshold must be positive")

    def seed(self, key: str, streak: int, quarantined: bool) -> None:
        """Adopt persisted state for a key (store load at run start)."""
        self.streaks[key] = max(0, int(streak))
        if quarantined or self.streaks[key] >= self.threshold:
            self.open_keys.add(key)

    def is_open(self, key: str) -> bool:
        """True when the hypothesis is quarantined."""
        return key in self.open_keys

    def success(self, key: str) -> None:
        """A confirmation succeeded: reset the streak, close the breaker."""
        self.streaks[key] = 0
        self.open_keys.discard(key)

    def failure(self, key: str) -> bool:
        """A confirmation failed; returns True when this failure *trips*
        the breaker (the caller emits the quarantine event exactly once)."""
        streak = self.streaks.get(key, 0) + 1
        self.streaks[key] = streak
        if streak >= self.threshold and key not in self.open_keys:
            self.open_keys.add(key)
            return True
        return False
