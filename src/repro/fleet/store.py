"""The self-healing cross-machine knowledge store.

A JSONL file (one header line + one record per known mapping) holding
everything a fleet run learns: the mapping itself (``dramdig-mapping-v1``
payload), the :class:`~repro.machine.sysinfo.SystemInfo` facts of the
machine it was learned on, the compiled GF(2) form
(``dramdig-compiled-v1`` payload, shared with
:class:`~repro.service.translation.TranslationService` so lookalikes
skip the compile too), and the hypothesis's confirmation track record
(the circuit-breaker state, persisted so quarantine survives restarts).

Durability follows the checkpoint journal: every save rewrites the whole
file through :func:`repro.ioutil.atomic_write`, so a SIGKILLed fleet run
leaves either the previous complete store or the new one.

Robustness model — the store is an *input from the outside world* (an
operator may rsync it between machines, hand-edit it, or feed a run a
poisoned copy), so loading trusts nothing:

* every record carries a content fingerprint over its own body; a
  garbled or truncated record fails the check and is dropped;
* the mapping payload is re-validated into a bijection by
  :func:`repro.dram.serialization.mapping_from_dict`; claims that do not
  survive validation are dropped;
* an unreadable or foreign-format file degrades to a cold start.

Every dropped record and every degrade-to-cold-start is recorded as a
:class:`~repro.faults.recovery.DegradationEvent` in :attr:`KnowledgeStore.events`
and logged, never raised: a corrupt store must cost re-learning, not the
fleet run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dram.mapping import AddressMapping
from repro.dram.serialization import mapping_from_dict, mapping_to_dict
from repro.dram.spec import DdrGeneration
from repro.faults.recovery import DegradationEvent
from repro.logutil import get_logger
from repro.machine.sysinfo import SystemInfo
from repro.parallel.grid import fingerprint_payload
from repro.service.translation import mapping_fingerprint

__all__ = [
    "KnowledgeStore",
    "StoreEntry",
    "STORE_FORMAT",
    "STORE_VERSION",
    "system_from_facts",
    "system_to_facts",
]

STORE_FORMAT = "dramdig-knowledge-store"
STORE_VERSION = 1

_LOG = get_logger("repro.fleet.store")


def system_to_facts(info: SystemInfo) -> dict:
    """JSON-safe dict of the SystemInfo facts (generation as its name)."""
    return {
        "generation": str(info.generation),
        "total_bytes": info.total_bytes,
        "channels": info.channels,
        "dimms_per_channel": info.dimms_per_channel,
        "ranks_per_dimm": info.ranks_per_dimm,
        "banks_per_rank": info.banks_per_rank,
        "ecc": bool(info.ecc),
    }


def system_from_facts(facts: dict) -> SystemInfo:
    """Rebuild SystemInfo from its stored facts (raises on bad input)."""
    return SystemInfo(
        generation=DdrGeneration(facts["generation"]),
        total_bytes=int(facts["total_bytes"]),
        channels=int(facts["channels"]),
        dimms_per_channel=int(facts["dimms_per_channel"]),
        ranks_per_dimm=int(facts["ranks_per_dimm"]),
        banks_per_rank=int(facts["banks_per_rank"]),
        ecc=bool(facts["ecc"]),
    )


@dataclass
class StoreEntry:
    """One cached hypothesis and its confirmation track record.

    Attributes:
        key: the mapping's content fingerprint (the store's identity).
        mapping: the re-validated mapping claim.
        system: facts of the machine the mapping was learned on.
        compiled: ``dramdig-compiled-v1`` payload, or None. Kept as a
            raw dict and only validated when used — a corrupt compiled
            payload heals by recompiling from the mapping (see
            :meth:`repro.service.translation.TranslationService.register_serialized`).
        confirmations / failures: lifetime confirmation outcomes.
        streak: consecutive confirmation failures (circuit-breaker fuel).
        quarantined: tripped breaker — never offered as a candidate.
        source: machine id that contributed the mapping.
    """

    key: str
    mapping: AddressMapping
    system: SystemInfo
    compiled: dict | None = None
    confirmations: int = 0
    failures: int = 0
    streak: int = 0
    quarantined: bool = False
    source: str = ""

    def to_record(self) -> dict:
        body = {
            "key": self.key,
            "mapping": mapping_to_dict(self.mapping),
            "system": system_to_facts(self.system),
            "compiled": self.compiled,
            "confirmations": self.confirmations,
            "failures": self.failures,
            "streak": self.streak,
            "quarantined": self.quarantined,
            "source": self.source,
        }
        body["integrity"] = _integrity(body)
        return body

    @classmethod
    def from_record(cls, record: dict) -> "StoreEntry":
        mapping = mapping_from_dict(record["mapping"])
        return cls(
            key=str(record["key"]),
            mapping=mapping,
            system=system_from_facts(record["system"]),
            compiled=record.get("compiled"),
            confirmations=int(record.get("confirmations", 0)),
            failures=int(record.get("failures", 0)),
            streak=int(record.get("streak", 0)),
            quarantined=bool(record.get("quarantined", False)),
            source=str(record.get("source", "")),
        )


def _integrity(body: dict) -> str:
    """Content fingerprint over a record body (minus the checksum itself)."""
    visible = {key: value for key, value in body.items() if key != "integrity"}
    return fingerprint_payload("repro.fleet:store-entry", visible)


class KnowledgeStore:
    """Fingerprint-keyed hypothesis store with degrade-don't-crash loading.

    Args:
        path: store file; None keeps the store purely in memory (the
            orchestrator's replay-deterministic working copy).
    """

    def __init__(self, path: str | Path | None = None):
        self.path = None if path is None else Path(path)
        self.entries: dict[str, StoreEntry] = {}
        self.events: list[DegradationEvent] = []
        self.dropped_records = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -------------------------------------------------------------- loading

    def _degrade(self, action: str, detail: str) -> None:
        self.dropped_records += 1
        event = DegradationEvent(step="knowledge-store", action=action, detail=detail)
        self.events.append(event)
        _LOG.warning("knowledge store: %s", event.describe())

    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError as error:
            self._degrade("unreadable", f"{self.path}: {error}; cold start")
            return
        # Garbled bytes must not abort the load: undecodable sequences
        # become replacement characters and fail the per-line checks.
        text = raw.decode("utf-8", errors="replace")
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self._degrade(
                    "skipped-record", f"line {number}: not valid JSON (truncated?)"
                )
                continue
            if not isinstance(record, dict):
                self._degrade("skipped-record", f"line {number}: not an object")
                continue
            if "format" in record:
                if record.get("format") != STORE_FORMAT:
                    self._degrade(
                        "foreign-format",
                        f"{self.path} declares {record.get('format')!r}; cold start",
                    )
                    self.entries.clear()
                    return
                continue  # valid header
            if record.get("integrity") != _integrity(record):
                self._degrade(
                    "skipped-record", f"line {number}: integrity check failed"
                )
                continue
            try:
                entry = StoreEntry.from_record(record)
            except Exception as error:  # revalidation is the whole point
                self._degrade(
                    "skipped-record",
                    f"line {number}: mapping failed revalidation ({error})",
                )
                continue
            self.entries[entry.key] = entry

    # ----------------------------------------------------------- persistence

    def save(self) -> None:
        """Atomically rewrite the store file (no-op for in-memory stores)."""
        if self.path is None:
            return
        from repro.ioutil import atomic_write

        header = json.dumps(
            {"format": STORE_FORMAT, "version": STORE_VERSION}, sort_keys=True
        )
        lines = [header]
        lines += [
            json.dumps(entry.to_record(), sort_keys=True)
            for entry in self.entries.values()
        ]
        atomic_write(self.path, "\n".join(lines) + "\n")

    def to_records(self) -> list[dict]:
        """All entries as JSON-safe records (the journal baseline form)."""
        return [entry.to_record() for entry in self.entries.values()]

    def reset_from_records(self, records: list[dict]) -> None:
        """Replace the in-memory state with a baseline snapshot.

        Used on resume: the orchestrator journals the store state the
        interrupted run started from, so a replayed run offers byte-wise
        identical candidate lists regardless of what the killed run
        managed to persist. Records that fail validation are dropped
        with an event, same as a file load.
        """
        self.entries.clear()
        for record in records:
            try:
                entry = StoreEntry.from_record(record)
            except Exception as error:
                self._degrade("skipped-record", f"baseline record: {error}")
                continue
            self.entries[entry.key] = entry

    # ------------------------------------------------------------- mutation

    def __len__(self) -> int:
        return len(self.entries)

    def add(
        self,
        mapping: AddressMapping,
        system: SystemInfo,
        compiled: dict | None = None,
        source: str = "",
    ) -> StoreEntry:
        """Record a freshly learned mapping (or re-learn an existing one).

        Re-learning a quarantined hypothesis through a *full search*
        rehabilitates it: the search just proved the mapping real on
        some machine, so the quarantine was collateral of lookalikes
        that merely resembled it.
        """
        key = mapping_fingerprint(mapping)
        entry = self.entries.get(key)
        if entry is None:
            entry = StoreEntry(
                key=key,
                mapping=mapping,
                system=system,
                compiled=compiled,
                source=source,
            )
            self.entries[key] = entry
        else:
            entry.streak = 0
            entry.quarantined = False
            if entry.compiled is None:
                entry.compiled = compiled
        entry.confirmations += 1
        return entry

    def record_confirmation(self, key: str) -> None:
        entry = self.entries.get(key)
        if entry is not None:
            entry.confirmations += 1
            entry.streak = 0

    def record_failure(self, key: str) -> None:
        entry = self.entries.get(key)
        if entry is not None:
            entry.failures += 1
            entry.streak += 1

    def quarantine(self, key: str) -> None:
        entry = self.entries.get(key)
        if entry is not None:
            entry.quarantined = True

    # ------------------------------------------------------------ selection

    def candidates_for(
        self,
        system: SystemInfo,
        limit: int = 3,
        min_similarity: float = 0.5,
    ) -> list[StoreEntry]:
        """Best-matching live hypotheses for a machine, most similar first.

        Exact ``total_bytes`` agreement is a hard gate (a mapping for a
        different address width cannot be decoded against this machine);
        quarantined entries are never offered. Ties break on
        confirmation count (success history), then on key, so selection
        is deterministic and replayable.
        """
        from repro.fleet.similarity import system_similarity

        scored = []
        for entry in self.entries.values():
            if entry.quarantined:
                continue
            if entry.system.total_bytes != system.total_bytes:
                continue
            score = system_similarity(entry.system, system)
            if score >= min_similarity:
                scored.append((score, entry))
        scored.sort(key=lambda pair: (-pair[0], -pair[1].confirmations, pair[1].key))
        return [entry for _, entry in scored[:limit]]
