"""Fleet-scale reverse engineering with a shared knowledge store.

DRAMDig reverse-engineers one machine at a time; a production deployment
faces thousands of heterogeneous machines at once. This package runs
DRAMDig across large *simulated* fleets (randomized presets +
:mod:`repro.dram.random_mapping`) on top of the existing supervised grid
runner, with a persistent cross-machine knowledge store: mappings
learned on one machine become priors on lookalike machines, which probe
only to *confirm* a cached hypothesis and fall back to the full search
on mismatch.

The robustness core is the **confirm-or-fallback protocol**:

* :mod:`repro.fleet.similarity` ranks cached hypotheses by
  :class:`~repro.machine.sysinfo.SystemInfo` similarity;
* :mod:`repro.fleet.confirm` runs a cheap vectorized probe campaign that
  checks the believed conflict structure against measured latencies;
* :mod:`repro.fleet.breaker` quarantines hypotheses that keep failing
  confirmation, so a poisoned or stale prior stops taxing the fleet;
* :mod:`repro.fleet.store` survives truncated, garbled or hand-edited
  store files by dropping the bad records (with
  :class:`~repro.faults.recovery.DegradationEvent`\\ s) and degrading to
  cold-start instead of crashing the run.

``dramdig fleet run`` on the CLI drives
:func:`repro.fleet.orchestrator.run_fleet`; the scaling artefact and the
``fleet`` section of ``BENCH_perf.json`` come from
:mod:`repro.fleet.perf`.
"""

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.confirm import ConfirmConfig, ConfirmOutcome, run_confirmation
from repro.fleet.orchestrator import (
    FleetConfig,
    FleetOutcome,
    render_fleet,
    run_fleet,
)
from repro.fleet.runner import CandidateVerdict, FleetMachineResult, run_fleet_cell
from repro.fleet.similarity import system_similarity
from repro.fleet.spec import (
    MachineSpec,
    adversarial_fleet,
    family_mapping,
    lookalike_fleet,
    materialize_mapping,
)
from repro.fleet.store import KnowledgeStore, StoreEntry

__all__ = [
    "CandidateVerdict",
    "CircuitBreaker",
    "ConfirmConfig",
    "ConfirmOutcome",
    "FleetConfig",
    "FleetMachineResult",
    "FleetOutcome",
    "KnowledgeStore",
    "MachineSpec",
    "StoreEntry",
    "adversarial_fleet",
    "family_mapping",
    "lookalike_fleet",
    "materialize_mapping",
    "render_fleet",
    "run_confirmation",
    "run_fleet",
    "run_fleet_cell",
    "system_similarity",
]
