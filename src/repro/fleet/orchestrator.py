"""Fleet orchestration: waves of machines over a shared knowledge store.

The orchestrator turns a fleet of :class:`~repro.fleet.spec.MachineSpec`
into grid cells (``repro.fleet.runner:run_fleet_cell``) and dispatches
them in *waves* through :func:`repro.evalsuite.gridrun.execute_grid`.
Between waves it folds the results back into the knowledge store: fresh
full-search mappings become new store entries, confirmations reset
circuit-breaker streaks, rejections feed them, and a tripped breaker
quarantines the hypothesis for the rest of the fleet (and, persisted,
for every later fleet). The first wave is exactly the family exemplars,
so a lookalike-heavy fleet pays each family's full search once and
confirms everything else.

Resume model — the run is crash-safe at two levels, both journal-backed:

* each machine cell is checkpointed by content fingerprint, so a
  SIGKILLed run resumed over the same journal re-executes only the
  missing machines;
* the knowledge store's *starting state* is journalled under a
  config-derived fingerprint before the first wave. A killed run leaves
  a store file with partial updates; replaying against that mutated
  state would offer different candidate lists, change cell fingerprints,
  and miss every checkpoint. Restoring the journalled baseline instead
  makes the resumed run bit-identical to an uninterrupted one.

The rendered artifact contains no filesystem paths and no wall-clock
values: it is a pure function of the fleet configuration, which is what
the chaos smoke's byte-identity assertion checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dram.serialization import mapping_from_dict, mapping_to_dict
from repro.faults.recovery import DegradationEvent
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.confirm import ConfirmConfig
from repro.fleet.runner import FleetMachineResult
from repro.fleet.spec import MachineSpec, adversarial_fleet, lookalike_fleet
from repro.fleet.store import KnowledgeStore, system_from_facts
from repro.logutil import get_logger
from repro.obs import telemetry
from repro.obs import tracing as obs
from repro.parallel import CellFailure, CheckpointJournal, GridCell, GridPolicy
from repro.parallel.grid import fingerprint_payload

__all__ = ["FleetConfig", "FleetOutcome", "run_fleet", "render_fleet"]

FLEET_ARTIFACT_FORMAT = "dramdig-fleet-v1"

_LOG = get_logger("repro.fleet.orchestrator")


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run's policy.

    Attributes:
        size: machines in the fleet.
        families: distinct ground-truth mapping families.
        profile: ``"lookalike"`` (every machine matches its family) or
            ``"adversarial"`` (imposters mixed in, see
            :func:`~repro.fleet.spec.adversarial_fleet`).
        seed: fleet composition seed.
        max_gib: cap on family geometry size (None = paper-scale range).
        mismatch_every: imposter cadence for the adversarial profile.
        store_path: knowledge-store file (None = in-memory, forgotten
            after the run).
        journal_path: checkpoint journal enabling ``--resume``.
        jobs: grid parallelism (None/0/1 = serial).
        wave: machines per dispatch wave after the exemplar wave.
        max_candidates / min_similarity: store shortlist policy.
        breaker_threshold: consecutive rejections that quarantine a
            hypothesis.
        confirm: confirmation campaign policy.
        resilient: run fallback searches with the full recovery stack.
        supervision: grid supervision policy (None = defaults when a
            journal is present, fail-fast otherwise).
    """

    size: int = 8
    families: int = 2
    profile: str = "lookalike"
    seed: int = 0
    max_gib: int | None = 8
    mismatch_every: int = 3
    store_path: str | None = None
    journal_path: str | None = None
    jobs: int | None = None
    wave: int = 4
    max_candidates: int = 3
    min_similarity: float = 0.5
    breaker_threshold: int = 3
    confirm: ConfirmConfig = ConfirmConfig()
    resilient: bool = False
    supervision: GridPolicy | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("fleet size must be positive")
        if self.profile not in ("lookalike", "adversarial"):
            raise ValueError(f"unknown fleet profile {self.profile!r}")
        if self.wave < 1:
            raise ValueError("wave must be positive")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be positive")

    def specs(self) -> list[MachineSpec]:
        """The fleet this config describes (pure function of the config)."""
        if self.profile == "adversarial":
            return adversarial_fleet(
                self.size,
                families=self.families,
                seed=self.seed,
                max_gib=self.max_gib,
                mismatch_every=self.mismatch_every,
            )
        return lookalike_fleet(
            self.size, families=self.families, seed=self.seed, max_gib=self.max_gib
        )

    def semantic_fingerprint(self) -> str:
        """Fingerprint of the fields that shape *results* (no paths, no
        parallelism): the store-baseline journal key."""
        return fingerprint_payload(
            "repro.fleet:config",
            {
                "size": self.size,
                "families": self.families,
                "profile": self.profile,
                "seed": self.seed,
                "max_gib": self.max_gib,
                "mismatch_every": self.mismatch_every,
                "max_candidates": self.max_candidates,
                "min_similarity": self.min_similarity,
                "breaker_threshold": self.breaker_threshold,
                "confirm": self.confirm,
                "resilient": self.resilient,
                "wave": self.wave,
            },
        )


@dataclass
class FleetOutcome:
    """Everything one fleet run produced.

    Attributes:
        config: the run's configuration.
        machines: per-machine results in fleet order; a machine whose
            cell failed outright holds its :class:`CellFailure`.
        events: degradation events the *orchestrator* observed —
            store-load drops, quarantines, cell failures. (Per-machine
            search degradations live on the machine results.)
        quarantined: hypothesis keys quarantined during this run.
        store_entries: knowledge-store size after the run.
        store_dropped: corrupt store records dropped at load.
    """

    config: FleetConfig
    machines: list
    events: list[DegradationEvent] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    store_entries: int = 0
    store_dropped: int = 0

    # ------------------------------------------------------------- summaries

    @property
    def results(self) -> list[FleetMachineResult]:
        """The machine results that completed (failures filtered out)."""
        return [
            result
            for result in self.machines
            if isinstance(result, FleetMachineResult)
        ]

    @property
    def failures(self) -> list[CellFailure]:
        return [item for item in self.machines if isinstance(item, CellFailure)]

    @property
    def all_correct(self) -> bool:
        """Every machine completed and recovered its true mapping."""
        return not self.failures and all(result.correct for result in self.results)

    def outcome_counts(self) -> dict:
        counts = {"confirmed": 0, "fallback": 0, "cold": 0, "failed": 0}
        for item in self.machines:
            if isinstance(item, FleetMachineResult):
                counts[item.outcome] += 1
            else:
                counts["failed"] += 1
        return counts

    def scaling_curve(self) -> list[dict]:
        """Amortized per-machine cost at fleet-size checkpoints.

        Checkpoints double from the family count up to the fleet size,
        measuring what the *prefix* fleet of that size would have cost.
        With exemplars front-loaded and the store warm afterwards, the
        amortized cost strictly decreases — the economics the knowledge
        store exists to buy.
        """
        results = self.results
        if not results or self.failures:
            return []
        sizes: list[int] = []
        mark = max(1, min(self.config.families, len(results)))
        while mark < len(results):
            sizes.append(mark)
            mark *= 2
        sizes.append(len(results))
        curve = []
        cumulative_measurements = 0
        cumulative_seconds = 0.0
        cursor = 0
        for size in sizes:
            while cursor < size:
                cumulative_measurements += results[cursor].measurements
                cumulative_seconds += results[cursor].sim_seconds
                cursor += 1
            curve.append(
                {
                    "machines": size,
                    "amortized_measurements": round(
                        cumulative_measurements / size, 2
                    ),
                    "amortized_sim_seconds": round(cumulative_seconds / size, 6),
                }
            )
        return curve

    # -------------------------------------------------------------- artifact

    def artifact(self) -> dict:
        """JSON-safe run artifact: pure function of the fleet config.

        Deliberately excludes filesystem paths, wall-clock readings,
        journal resume counts and store-load accidents — everything that
        can differ between an uninterrupted run and a killed-and-resumed
        one. Byte-identity of this artifact across those two runs is the
        resume contract the chaos smoke enforces.
        """
        results = self.results
        counts = self.outcome_counts()
        return {
            "format": FLEET_ARTIFACT_FORMAT,
            "fleet": {
                "size": self.config.size,
                "families": self.config.families,
                "profile": self.profile_label(),
                "seed": self.config.seed,
            },
            "machines": [
                (
                    {
                        "machine_id": item.machine_id,
                        "kind": item.kind,
                        "outcome": item.outcome,
                        "correct": item.correct,
                        "chosen_key": item.chosen_key,
                        "measurements": item.measurements,
                        "sim_seconds": item.sim_seconds,
                        "candidates_tried": len(item.verdicts),
                        "confirm_probes": sum(v.probes for v in item.verdicts),
                        "search_retries": item.search_retries,
                        "search_degradations": item.search_degradations,
                    }
                    if isinstance(item, FleetMachineResult)
                    else {
                        "machine_id": item.label,
                        "outcome": "failed",
                        "correct": False,
                        "reason": item.reason,
                    }
                )
                for item in self.machines
            ],
            "summary": {
                "outcomes": counts,
                "all_correct": self.all_correct,
                "quarantined": sorted(self.quarantined),
                "total_measurements": sum(r.measurements for r in results),
                "total_sim_seconds": round(
                    sum(r.sim_seconds for r in results), 6
                ),
                "confirm_probes": sum(
                    v.probes for r in results for v in r.verdicts
                ),
            },
            "scaling": self.scaling_curve(),
        }

    def profile_label(self) -> str:
        label = self.config.profile
        if label == "adversarial":
            label += f"(every={self.config.mismatch_every})"
        return label


def _candidate_payloads(store: KnowledgeStore, breaker: CircuitBreaker, spec, config):
    """Shortlist the store for one machine, as a JSON-safe cell payload."""
    from repro.fleet.spec import family_mapping
    from repro.machine.sysinfo import SystemInfo

    system = SystemInfo.from_geometry(family_mapping(spec.family_seed).geometry)
    candidates = []
    for entry in store.candidates_for(
        system, limit=config.max_candidates, min_similarity=config.min_similarity
    ):
        if breaker.is_open(entry.key):
            continue
        candidates.append(
            {
                "key": entry.key,
                "mapping": mapping_to_dict(entry.mapping),
                "compiled": entry.compiled,
            }
        )
    return candidates


def _wave_slices(size: int, families: int, wave: int) -> list[tuple[int, int]]:
    """Wave boundaries: the exemplars first, then fixed-size waves."""
    first = min(max(families, 1), size)
    slices = [(0, first)]
    start = first
    while start < size:
        end = min(start + wave, size)
        slices.append((start, end))
        start = end
    return slices


def run_fleet(config: FleetConfig) -> FleetOutcome:
    """Run the confirm-or-fallback protocol over a whole fleet."""
    specs = config.specs()
    journal = (
        CheckpointJournal(config.journal_path)
        if config.journal_path is not None
        else None
    )
    supervision = config.supervision
    if supervision is None and journal is not None:
        supervision = GridPolicy()

    store = KnowledgeStore(config.store_path)
    events: list[DegradationEvent] = list(store.events)
    if journal is not None:
        events.extend(journal.load_events)

    # Pin the store baseline in the journal: a resumed run must shortlist
    # from the same starting state the killed run saw, or cell
    # fingerprints shift and every checkpoint is missed.
    if journal is not None:
        baseline_key = fingerprint_payload(
            "repro.fleet:store-baseline", {"config": config.semantic_fingerprint()}
        )
        hit, baseline = journal.lookup(baseline_key)
        if hit:
            store.reset_from_records(baseline)
            _LOG.info(
                "restored knowledge-store baseline (%d entr%s) from journal",
                len(store),
                "y" if len(store) == 1 else "ies",
            )
        else:
            journal.record(
                baseline_key, "repro.fleet:store-baseline", store.to_records()
            )

    breaker = CircuitBreaker(threshold=config.breaker_threshold)
    for entry in store.entries.values():
        breaker.seed(entry.key, entry.streak, entry.quarantined)

    quarantined: list[str] = []
    machines: list = []

    with obs.span("fleet") as fleet_span:
        fleet_span.set("size", config.size)
        fleet_span.set("profile", config.profile)
        for event in events:
            obs.note_event(event)

        from repro.evalsuite.gridrun import execute_grid

        slices = _wave_slices(config.size, config.families, config.wave)
        for wave_index, (start, end) in enumerate(slices):
            wave_specs = specs[start:end]
            # Progress status line: routed through repro.logutil (stderr),
            # so --quiet silences it and the stdout artefact is untouched.
            _LOG.info(
                "wave %d/%d: dispatching %d machine(s) (%d-%d of %d)",
                wave_index + 1,
                len(slices),
                len(wave_specs),
                start + 1,
                end,
                config.size,
            )
            cells = [
                GridCell(
                    "repro.fleet.runner:run_fleet_cell",
                    {
                        "spec": spec.to_payload(),
                        "candidates": _candidate_payloads(
                            store, breaker, spec, config
                        ),
                        "confirm": config.confirm,
                        "resilient": config.resilient,
                    },
                )
                for spec in wave_specs
            ]
            results = execute_grid(
                cells,
                jobs=config.jobs,
                supervision=supervision,
                journal=journal,
            )
            for spec, result in zip(wave_specs, results):
                machines.append(result)
                if isinstance(result, CellFailure):
                    event = DegradationEvent(
                        step="fleet",
                        action="machine-failed",
                        detail=result.describe(),
                    )
                    events.append(obs.note_event(event))
                    continue
                # Fold the verdicts into the store and the breaker.
                for verdict in result.verdicts:
                    if verdict.confirmed:
                        store.record_confirmation(verdict.key)
                        breaker.success(verdict.key)
                        continue
                    store.record_failure(verdict.key)
                    if breaker.failure(verdict.key):
                        store.quarantine(verdict.key)
                        quarantined.append(verdict.key)
                        obs.inc("fleet.quarantines")
                        event = DegradationEvent(
                            step="fleet",
                            action="quarantine",
                            detail=(
                                f"hypothesis {verdict.key[:12]} rejected "
                                f"{config.breaker_threshold} times in a row "
                                f"(last: {verdict.reason} on "
                                f"{result.machine_id})"
                            ),
                        )
                        events.append(obs.note_event(event))
                if result.mapping is not None:
                    # A full search proved a mapping on this machine:
                    # store it (rehabilitating a quarantined twin) and
                    # close its breaker.
                    try:
                        learned = mapping_from_dict(result.mapping)
                        system = system_from_facts(result.system)
                    except Exception as error:  # pragma: no cover - defensive
                        event = DegradationEvent(
                            step="fleet",
                            action="store-reject",
                            detail=f"{result.machine_id}: {error}",
                        )
                        events.append(obs.note_event(event))
                    else:
                        entry = store.add(
                            learned,
                            system,
                            compiled=result.compiled,
                            source=result.machine_id,
                        )
                        breaker.success(entry.key)
            store.save()

            wave_counts = {"confirmed": 0, "fallback": 0, "cold": 0, "failed": 0}
            for item in machines[start:end]:
                if isinstance(item, FleetMachineResult):
                    wave_counts[item.outcome] += 1
                else:
                    wave_counts["failed"] += 1
            _LOG.info(
                "wave %d/%d folded: %d confirmed, %d fallback, %d cold, "
                "%d failed; store holds %d entr%s",
                wave_index + 1,
                len(slices),
                wave_counts["confirmed"],
                wave_counts["fallback"],
                wave_counts["cold"],
                wave_counts["failed"],
                len(store),
                "y" if len(store) == 1 else "ies",
            )
            if telemetry.current_bus() is not None:
                telemetry.emit(
                    "wave",
                    wave=wave_index + 1,
                    waves=len(slices),
                    machines=len(wave_specs),
                    confirmed=wave_counts["confirmed"],
                    fallback=wave_counts["fallback"],
                    cold=wave_counts["cold"],
                    failed_machines=wave_counts["failed"],
                    store_entries=len(store),
                )

        fleet_span.set("quarantined", len(quarantined))
        fleet_span.set(
            "failed", sum(1 for item in machines if isinstance(item, CellFailure))
        )

    return FleetOutcome(
        config=config,
        machines=machines,
        events=events,
        quarantined=quarantined,
        store_entries=len(store),
        store_dropped=store.dropped_records,
    )


def render_fleet(outcome: FleetOutcome) -> str:
    """Deterministic text report of a fleet run (stdout artefact)."""
    config = outcome.config
    lines = [
        "DRAMDig fleet run",
        "=================",
        (
            f"fleet: {config.size} machines, {config.families} famil"
            f"{'y' if config.families == 1 else 'ies'}, "
            f"profile={outcome.profile_label()}, seed={config.seed}"
        ),
        "",
        f"{'machine':<9} {'kind':<10} {'outcome':<10} {'correct':<8} "
        f"{'tried':>5} {'probes':>12} {'sim-s':>10}",
    ]
    for item in outcome.machines:
        if isinstance(item, FleetMachineResult):
            lines.append(
                f"{item.machine_id:<9} {item.kind:<10} {item.outcome:<10} "
                f"{('yes' if item.correct else 'NO'):<8} "
                f"{len(item.verdicts):>5} {item.measurements:>12} "
                f"{item.sim_seconds:>10.3f}"
            )
        else:
            lines.append(
                f"{item.label:<9} {'-':<10} {'FAILED':<10} {'NO':<8} "
                f"{'-':>5} {'-':>12} {'-':>10}  ({item.reason})"
            )
    counts = outcome.outcome_counts()
    lines += [
        "",
        (
            f"outcomes: {counts['confirmed']} confirmed, "
            f"{counts['fallback']} fallback, {counts['cold']} cold, "
            f"{counts['failed']} failed"
        ),
        f"all correct: {'yes' if outcome.all_correct else 'NO'}",
        f"quarantined hypotheses: {len(outcome.quarantined)}",
    ]
    curve = outcome.scaling_curve()
    if curve:
        lines += ["", "amortized cost per machine (prefix fleets):"]
        for point in curve:
            lines.append(
                f"  {point['machines']:>4} machines: "
                f"{point['amortized_measurements']:>12.2f} measurements, "
                f"{point['amortized_sim_seconds']:>10.3f} sim-s"
            )
    return "\n".join(lines) + "\n"


def save_artifact(outcome: FleetOutcome, path: str | Path) -> None:
    """Write the JSON artifact atomically."""
    from repro.ioutil import atomic_write

    atomic_write(path, json.dumps(outcome.artifact(), indent=2) + "\n")
