"""Cheap vectorized confirmation of a cached mapping hypothesis.

A full DRAMDig search costs on the order of a million pair measurements;
checking whether a *known candidate* mapping fits a machine costs a few
hundred. The campaign plans two pair populations under the candidate
belief — pairs predicted to row-conflict (same believed bank, different
believed row) and pairs predicted fast (different believed bank) —
measures them all in one vectorized
:meth:`~repro.machine.machine.SimulatedMachine.measure_latency_pairs`
sweep, and asks a calibration-free rank question: are the top-K
latencies exactly the K pairs the belief predicted to conflict?

A correct belief separates the populations almost perfectly (the
row-conflict latency delta dwarfs the noise). A wrong belief — a
poisoned store entry, a stale family prior, an imposter machine that
merely *reports* the family's SystemInfo — mispredicts enough pairs
that the ranked agreement collapses towards 0.5, far below the purity
threshold. The protocol is asymmetric on purpose: rejecting a true
hypothesis costs one redundant full search; accepting a false one
poisons the fleet's output, so the purity bar is set high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bits import parity_array
from repro.dram.belief import BeliefMapping
from repro.machine.allocator import PhysPages
from repro.machine.machine import SimulatedMachine

__all__ = [
    "ConfirmConfig",
    "ConfirmOutcome",
    "believed_banks",
    "believed_rows",
    "plan_confirmation",
    "run_confirmation",
]

_PAGE_SHIFT = 12
_LINE_SHIFT = 6  # pair addresses are cacheline-aligned, like the probes


@dataclass(frozen=True)
class ConfirmConfig:
    """Confirmation campaign policy.

    Attributes:
        pairs: pairs per predicted class (total probes = 2 x pairs).
        sample: addresses drawn from the allocation to plan pairs from.
        purity: minimum ranked agreement to accept the hypothesis.
        alloc_fraction: fraction of physical memory to allocate for the
            campaign (fragmented pages; row coverage does not matter
            here, bank diversity does).
        seed_salt: mixed into the per-machine campaign RNG stream.
    """

    pairs: int = 96
    sample: int = 4096
    purity: float = 0.92
    alloc_fraction: float = 0.25
    seed_salt: int = 0xC0F1

    def __post_init__(self) -> None:
        if self.pairs < 8:
            raise ValueError("pairs must be at least 8 for a stable verdict")
        if self.sample < 4 * self.pairs:
            raise ValueError("sample must be at least 4x pairs")
        if not 0.5 < self.purity <= 1.0:
            raise ValueError("purity must be in (0.5, 1]")
        if not 0 < self.alloc_fraction <= 1:
            raise ValueError("alloc_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ConfirmOutcome:
    """Verdict of one confirmation campaign.

    Attributes:
        confirmed: the hypothesis survives.
        probes: pair measurements spent.
        agreement: fraction of the top-K latencies that were predicted
            conflicts (1.0 = perfect separation; ~0.5 = belief useless).
        reason: ``"confirmed"``, ``"disagreement"`` or ``"plan-failed"``
            (the belief could not even produce both pair populations).
    """

    confirmed: bool
    probes: int
    agreement: float
    reason: str


def believed_banks(belief: BeliefMapping, addrs: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`BeliefMapping.bank_of` over a uint64 array."""
    addrs = np.asarray(addrs, dtype=np.uint64)
    banks = np.zeros(addrs.shape, dtype=np.uint64)
    for position, mask in enumerate(belief.bank_functions):
        banks |= parity_array(addrs, mask).astype(np.uint64) << np.uint64(position)
    return banks


def believed_rows(belief: BeliefMapping, addrs: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`BeliefMapping.row_of` over a uint64 array."""
    addrs = np.asarray(addrs, dtype=np.uint64)
    rows = np.zeros(addrs.shape, dtype=np.uint64)
    for index, position in enumerate(belief.row_bits):
        rows |= ((addrs >> np.uint64(position)) & np.uint64(1)) << np.uint64(index)
    return rows


def _sample_addresses(
    pages: PhysPages, rng: np.random.Generator, count: int
) -> np.ndarray:
    """Cacheline-aligned addresses spread over the allocated pages."""
    frames = pages.page_numbers
    if frames.size == 0:
        return np.empty(0, dtype=np.uint64)
    picks = rng.integers(0, frames.size, size=count)
    offsets = rng.integers(0, 1 << (_PAGE_SHIFT - _LINE_SHIFT), size=count)
    return (frames[picks] << np.uint64(_PAGE_SHIFT)) | (
        offsets.astype(np.uint64) << np.uint64(_LINE_SHIFT)
    )


def plan_confirmation(
    belief: BeliefMapping,
    addrs: np.ndarray,
    pairs: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Plan the campaign: (bases, partners, predicted_conflict).

    Builds ``pairs`` same-believed-bank / different-believed-row pairs
    and ``pairs`` different-believed-bank pairs from the sampled
    addresses, in a deterministic order. Returns None when the belief
    cannot supply both populations (degenerate bank structure — such a
    hypothesis cannot be confirmed and must fall back).
    """
    addrs = np.asarray(addrs, dtype=np.uint64)
    banks = believed_banks(belief, addrs)
    rows = believed_rows(belief, addrs)

    conflict_bases: list[int] = []
    conflict_partners: list[int] = []
    by_bank: dict[int, list[int]] = {}
    for index, bank in enumerate(banks.tolist()):
        bucket = by_bank.setdefault(bank, [])
        bucket.append(index)
    row_list = rows.tolist()
    addr_list = addrs.tolist()
    for bank in sorted(by_bank):
        bucket = by_bank[bank]
        cursor = 0
        while cursor + 1 < len(bucket) and len(conflict_bases) < pairs:
            left = bucket[cursor]
            # Find a partner in a different believed row.
            partner = None
            for probe in range(cursor + 1, len(bucket)):
                if row_list[bucket[probe]] != row_list[left]:
                    partner = bucket[probe]
                    break
            if partner is None:
                break
            conflict_bases.append(addr_list[left])
            conflict_partners.append(addr_list[partner])
            cursor += 2
        if len(conflict_bases) >= pairs:
            break

    fast_bases: list[int] = []
    fast_partners: list[int] = []
    bank_list = banks.tolist()
    cursor = 0
    while cursor + 1 < len(addr_list) and len(fast_bases) < pairs:
        if bank_list[cursor] != bank_list[cursor + 1]:
            fast_bases.append(addr_list[cursor])
            fast_partners.append(addr_list[cursor + 1])
            cursor += 2
        else:
            cursor += 1

    if len(conflict_bases) < pairs or len(fast_bases) < pairs:
        return None
    bases = np.array(conflict_bases + fast_bases, dtype=np.uint64)
    partners = np.array(conflict_partners + fast_partners, dtype=np.uint64)
    predicted = np.zeros(bases.shape, dtype=bool)
    predicted[: len(conflict_bases)] = True
    return bases, partners, predicted


def run_confirmation(
    machine: SimulatedMachine,
    pages: PhysPages,
    belief: BeliefMapping,
    rng: np.random.Generator,
    config: ConfirmConfig | None = None,
) -> ConfirmOutcome:
    """Run one confirmation campaign against a live machine.

    The verdict is calibration-free: with K pairs predicted to conflict,
    the K largest measured latencies must be (almost exactly) those
    pairs. No threshold is fitted, so the campaign spends nothing on
    calibration and cannot be skewed by a drifting probe baseline.
    """
    config = config if config is not None else ConfirmConfig()
    addrs = _sample_addresses(pages, rng, config.sample)
    plan = plan_confirmation(belief, addrs, config.pairs)
    if plan is None:
        return ConfirmOutcome(
            confirmed=False, probes=0, agreement=0.0, reason="plan-failed"
        )
    bases, partners, predicted = plan
    latencies = machine.measure_latency_pairs(bases, partners)
    conflict_count = int(predicted.sum())
    ranked = np.argsort(latencies, kind="stable")
    top = ranked[-conflict_count:]
    agreement = float(predicted[top].mean())
    confirmed = agreement >= config.purity
    return ConfirmOutcome(
        confirmed=confirmed,
        probes=int(bases.size),
        agreement=round(agreement, 6),
        reason="confirmed" if confirmed else "disagreement",
    )
