"""SystemInfo similarity: which cached hypothesis fits this machine best?

The knowledge store ranks its entries against a new machine's
:class:`~repro.machine.sysinfo.SystemInfo` facts before any probe is
spent. Similarity is a *prior*, not a verdict: the Sudoku observation
(arXiv:2506.15918) is that mappings cluster into families correlated
with platform facts, and the Knock-Knock lesson (arXiv:2509.19568) is
that platforms violate such correlations often enough that every
shortlisted hypothesis must still be confirmed against measured
conflicts before it is trusted.

Scores are weighted agreement over the dmidecode/decode-dimms facts.
Total memory size is a hard gate (handled by the store, not here): a
mapping for a different address width cannot even be decoded against
this machine's addresses, so it is never a candidate regardless of how
well the soft facts agree.
"""

from __future__ import annotations

from repro.machine.sysinfo import SystemInfo

__all__ = ["system_similarity"]

# Weighted facts, descending influence on mapping family membership:
# the DDR generation and bank topology shape the function count and the
# bit ranges; channel/rank interleaving shapes the low functions; ECC
# barely correlates but breaks exact ties in favour of true twins.
_WEIGHTS = (
    ("generation", 0.30),
    ("banks_per_rank", 0.20),
    ("channels", 0.20),
    ("ranks_per_dimm", 0.15),
    ("dimms_per_channel", 0.10),
    ("ecc", 0.05),
)


def system_similarity(a: SystemInfo, b: SystemInfo) -> float:
    """Weighted fact agreement in [0, 1]; 1.0 means identical facts.

    ``total_bytes`` is deliberately excluded — the store already gates
    candidates on exact size (address-width compatibility), so including
    it here would only flatten the ranking among the survivors.
    """
    score = 0.0
    for field, weight in _WEIGHTS:
        if getattr(a, field) == getattr(b, field):
            score += weight
    return round(score, 6)
