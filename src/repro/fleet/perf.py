"""Fleet amortization bench: what the knowledge store buys at scale.

One lookalike-heavy fleet, run cold-start-per-machine in spirit (the
family exemplars' full searches *are* the cold baseline) and with the
confirm-or-fallback protocol for everyone else. The section reports the
amortized per-machine cost curve, the amortization speedup of the warm
fleet over an all-cold fleet of the same size, and the structural
properties the perf gate holds as floors: every machine correct, and
the prefix-amortized cost strictly decreasing in both measurements and
simulated seconds.

Costs here are *simulated-machine* costs (pair measurements, simulated
seconds), not host wall-clock: they are deterministic, hardware
independent, and exactly the quantity the fleet economics argument is
about.
"""

from __future__ import annotations

from repro.fleet.confirm import ConfirmConfig
from repro.fleet.orchestrator import FleetConfig, run_fleet

__all__ = ["FLEET_BENCH_CONFIG", "fleet_benches"]

FLEET_BENCH_CONFIG = FleetConfig(
    size=16,
    families=2,
    profile="lookalike",
    seed=7,
    max_gib=8,
    wave=4,
    confirm=ConfirmConfig(),
)


def _strictly_decreasing(values: list[float]) -> bool:
    return all(later < earlier for earlier, later in zip(values, values[1:]))


def fleet_benches(config: FleetConfig = FLEET_BENCH_CONFIG) -> dict:
    """Run the bench fleet and distil the BENCH ``fleet`` section."""
    outcome = run_fleet(config)
    results = outcome.results
    if outcome.failures or not results:
        raise RuntimeError(
            "fleet bench run lost machines: "
            + "; ".join(f.describe() for f in outcome.failures)
        )
    curve = outcome.scaling_curve()
    counts = outcome.outcome_counts()

    # Cold baseline: what this fleet would cost if every machine ran the
    # full search — the mean cost of the machines that actually did.
    cold = [r for r in results if r.outcome == "cold"]
    if not cold:
        raise RuntimeError("fleet bench produced no cold-start machines")
    cold_measurements = sum(r.measurements for r in cold) / len(cold)
    cold_sim_seconds = sum(r.sim_seconds for r in cold) / len(cold)
    amortized_measurements = sum(r.measurements for r in results) / len(results)
    amortized_sim_seconds = sum(r.sim_seconds for r in results) / len(results)

    return {
        "fleet_size": config.size,
        "families": config.families,
        "profile": config.profile,
        "seed": config.seed,
        "outcomes": counts,
        "all_correct": outcome.all_correct,
        "cold_measurements_per_machine": round(cold_measurements, 2),
        "cold_sim_seconds_per_machine": round(cold_sim_seconds, 6),
        "amortized_measurements_per_machine": round(amortized_measurements, 2),
        "amortized_sim_seconds_per_machine": round(amortized_sim_seconds, 6),
        "amortization_speedup": round(
            cold_measurements / amortized_measurements, 3
        ),
        "confirm_probes_per_confirmed_machine": (
            round(
                sum(
                    sum(v.probes for v in r.verdicts)
                    for r in results
                    if r.outcome == "confirmed"
                )
                / max(counts["confirmed"], 1),
                2,
            )
        ),
        "strictly_decreasing_measurements": _strictly_decreasing(
            [point["amortized_measurements"] for point in curve]
        ),
        "strictly_decreasing_sim_seconds": _strictly_decreasing(
            [point["amortized_sim_seconds"] for point in curve]
        ),
        "scaling": curve,
    }
