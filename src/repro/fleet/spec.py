"""Simulated fleet composition: families, lookalikes and imposters.

A fleet is a list of :class:`MachineSpec`, each naming the *family* it
belongs to (a seed that deterministically expands to a geometry and a
ground-truth mapping via :mod:`repro.dram.random_mapping`) and a
per-machine seed for the machine's own noise stream. Lookalikes share
their family's mapping exactly — the situation the knowledge store
exploits. A ``mismatch`` machine is the adversarial case: it reports the
*same* :class:`~repro.machine.sysinfo.SystemInfo` facts as its family
(same geometry, same DIMMs) but its controller wires a different
mapping, so a cached family hypothesis looks perfect by similarity and
is only caught by the confirmation probes.

Everything here is a pure function of seeds: the orchestrator's parent
process and its grid workers both call :func:`materialize_mapping` from
the spec payload and get bit-identical ground truth, which is what lets
fleet cells run under the content-fingerprinted checkpoint journal.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import lru_cache

import numpy as np

from repro.dram.mapping import AddressMapping
from repro.dram.random_mapping import random_geometry, random_mapping

__all__ = [
    "MachineSpec",
    "adversarial_fleet",
    "family_mapping",
    "lookalike_fleet",
    "materialize_mapping",
]

GIB = 2**30

# Salt mixed into family seeds so fleet seed 0 / family 0 is not the
# same RNG stream as a user's hand-built default_rng(0) machine.
_FAMILY_SALT = 0x5EED_F1EE7


@dataclass(frozen=True)
class MachineSpec:
    """One machine of a simulated fleet.

    Attributes:
        machine_id: stable human-readable id ("m003").
        family_seed: seed expanding to the family's geometry + mapping.
        machine_seed: the machine's own noise/allocation seed.
        kind: ``"lookalike"`` (ground truth == family mapping) or
            ``"mismatch"`` (same SystemInfo, different mapping).
        variant: selects which mismatch deformation to apply (ignored
            for lookalikes).
    """

    machine_id: str
    family_seed: int
    machine_seed: int
    kind: str = "lookalike"
    variant: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("lookalike", "mismatch"):
            raise ValueError(f"unknown machine kind {self.kind!r}")

    def to_payload(self) -> dict:
        """JSON/pickle-safe dict form for grid-cell payloads."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "MachineSpec":
        return cls(**payload)


@lru_cache(maxsize=256)
def family_mapping(family_seed: int) -> AddressMapping:
    """The family's ground-truth mapping (deterministic in the seed)."""
    rng = np.random.default_rng(family_seed)
    geometry = random_geometry(rng)
    return random_mapping(rng, geometry)


def _mismatch_mapping(base: AddressMapping, variant: int) -> AddressMapping:
    """A valid mapping that shares ``base``'s geometry but differs.

    Toggles one *row* bit in one bank function. The functions' projection
    onto the non-row, non-column bits is untouched, so the matrix stays a
    bijection and the functions stay independent; but a lone row bit is
    never inside the old span (its projection is zero, every nonzero
    combination's is not), so the bank span — and hence every same-bank
    prediction — provably changes. Row and column membership are left
    alone on purpose: deforming a column bit can make the column-versus-
    hash-bit classification genuinely ambiguous, and an imposter must be
    *learnable* by the fallback search, just not confirmable from the
    family prior. The machine's SystemInfo is a function of the geometry
    alone, so the imposter is indistinguishable until probed.
    """
    functions = list(base.bank_functions)
    index = variant % len(functions)
    row = base.row_bits[(variant // len(functions)) % len(base.row_bits)]
    functions[index] ^= 1 << row
    return AddressMapping(
        geometry=base.geometry,
        bank_functions=tuple(functions),
        row_bits=base.row_bits,
        column_bits=base.column_bits,
    )


def materialize_mapping(spec: MachineSpec) -> AddressMapping:
    """Ground-truth mapping of one fleet machine (pure function of spec)."""
    base = family_mapping(spec.family_seed)
    if spec.kind == "lookalike":
        return base
    return _mismatch_mapping(base, spec.variant)


def _family_seeds(seed: int, families: int, max_gib: int | None) -> list[int]:
    """Deterministic family seeds, optionally capped by memory size.

    ``max_gib`` exists so tests and the perf harness can keep fleets on
    small geometries (a 32 GiB machine costs real wall-clock in the
    allocator and the search) without losing determinism: candidates are
    scanned in a fixed order and filtered, never sampled.
    """
    if families < 1:
        raise ValueError("families must be positive")
    seeds: list[int] = []
    candidate = 0
    while len(seeds) < families:
        family_seed = _FAMILY_SALT + (seed << 16) + candidate
        candidate += 1
        if max_gib is not None:
            geometry = random_geometry(np.random.default_rng(family_seed))
            if geometry.total_bytes > max_gib * GIB:
                continue
        seeds.append(family_seed)
    return seeds


def _machine_seed(seed: int, index: int) -> int:
    return (seed << 24) + 7919 * index + 13


def lookalike_fleet(
    size: int,
    families: int = 2,
    seed: int = 0,
    max_gib: int | None = None,
) -> list[MachineSpec]:
    """A lookalike-heavy fleet: every machine truly matches its family.

    The first ``families`` machines are the family exemplars (the cold
    starts); the rest cycle round-robin through the families. With the
    exemplars front-loaded, the amortized per-machine cost is strictly
    decreasing once the exemplars are paid — the scaling-curve shape the
    ROADMAP's success metric asks for.
    """
    if size < 1:
        raise ValueError("fleet size must be positive")
    families = min(families, size)
    seeds = _family_seeds(seed, families, max_gib)
    specs = []
    for index in range(size):
        specs.append(
            MachineSpec(
                machine_id=f"m{index:03d}",
                family_seed=seeds[index % families],
                machine_seed=_machine_seed(seed, index),
            )
        )
    return specs


def adversarial_fleet(
    size: int,
    families: int = 2,
    seed: int = 0,
    max_gib: int | None = None,
    mismatch_every: int = 3,
) -> list[MachineSpec]:
    """A hostile fleet: every ``mismatch_every``-th lookalike is an imposter.

    Imposters report their family's SystemInfo but wire a different
    mapping, so similarity ranks the family hypothesis first and only
    the confirmation probes can reject it. Family exemplars stay genuine
    (index < ``families``) so the store does learn real priors to
    defend.
    """
    if mismatch_every < 2:
        raise ValueError("mismatch_every must be at least 2")
    specs = lookalike_fleet(size, families, seed, max_gib)
    adversarial = []
    for index, spec in enumerate(specs):
        if index >= min(families, size) and index % mismatch_every == 0:
            spec = MachineSpec(
                machine_id=spec.machine_id,
                family_seed=spec.family_seed,
                machine_seed=spec.machine_seed,
                kind="mismatch",
                variant=index,
            )
        adversarial.append(spec)
    return adversarial
