"""The per-machine fleet worker: confirm a cached hypothesis or fall back.

One grid cell == one machine. The payload carries everything the worker
needs — the :class:`~repro.fleet.spec.MachineSpec` (pure seeds), the
shortlisted knowledge-store candidates (mapping + compiled payloads, as
JSON-safe dicts), and the :class:`~repro.fleet.confirm.ConfirmConfig` —
so the cell is a pure function of its payload: the checkpoint journal
can cache it by content fingerprint, and serial and multi-worker runs
produce identical results and identical ``fleet.*`` metrics.

The protocol per machine:

1. try each candidate in similarity order with a cheap confirmation
   campaign (:func:`~repro.fleet.confirm.run_confirmation`);
2. first confirmed candidate wins — its compiled form is registered with
   the process's translation service (healing a corrupt compiled payload
   by recompiling, see
   :meth:`~repro.service.translation.TranslationService.register_serialized`);
3. no survivor → full DRAMDig search (outcome ``"fallback"`` when
   candidates were offered and all rejected, ``"cold"`` when the store
   had nothing for this machine).

Correctness is always scored against the machine's ground truth — the
whole point of confirm-or-fallback is that a poisoned prior may cost
probes but can never cost a wrong mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.belief import BeliefMapping
from repro.dram.serialization import mapping_from_dict, mapping_to_dict
from repro.fleet.confirm import ConfirmConfig, run_confirmation
from repro.fleet.spec import MachineSpec, materialize_mapping
from repro.fleet.store import system_to_facts
from repro.machine.machine import SimulatedMachine
from repro.obs import tracing as obs
from repro.service.translation import default_service, mapping_fingerprint

__all__ = ["CandidateVerdict", "FleetMachineResult", "run_fleet_cell"]


@dataclass(frozen=True)
class CandidateVerdict:
    """One candidate hypothesis's confirmation verdict on one machine.

    Attributes:
        key: the hypothesis's knowledge-store key (mapping fingerprint).
        confirmed: the candidate survived the campaign.
        agreement: ranked agreement achieved (0.0 for invalid claims).
        probes: pair measurements the campaign spent.
        reason: ``"confirmed"``, ``"disagreement"``, ``"plan-failed"`` or
            ``"invalid"`` (the mapping payload failed revalidation).
    """

    key: str
    confirmed: bool
    agreement: float
    probes: int
    reason: str


@dataclass
class FleetMachineResult:
    """Everything the orchestrator needs back from one fleet machine.

    JSON/pickle-safe by construction (dicts, not mapping objects): it
    crosses the worker boundary and is cached by the checkpoint journal.

    Attributes:
        machine_id / kind: echo of the spec.
        outcome: ``"confirmed"``, ``"fallback"`` or ``"cold"``.
        chosen_key: fingerprint of the mapping this machine ended up with.
        correct: recovered mapping is equivalent to the ground truth.
        verdicts: per-candidate confirmation verdicts, in offer order.
        measurements / sim_seconds: total probe cost on this machine
            (confirmation campaigns plus any fallback search).
        mapping / compiled: the learned mapping's serialised forms —
            populated only for fallback/cold machines (confirmed machines
            reuse the store's existing entry).
        system: the machine's SystemInfo facts (store entry metadata).
        search_retries / search_degradations: fallback-search health.
    """

    machine_id: str
    kind: str
    outcome: str
    chosen_key: str
    correct: bool
    verdicts: list[CandidateVerdict] = field(default_factory=list)
    measurements: int = 0
    sim_seconds: float = 0.0
    mapping: dict | None = None
    compiled: dict | None = None
    system: dict = field(default_factory=dict)
    search_retries: int = 0
    search_degradations: int = 0


def run_fleet_cell(
    spec: dict,
    candidates: list[dict],
    confirm: ConfirmConfig | None = None,
    resilient: bool = False,
) -> FleetMachineResult:
    """Run the confirm-or-fallback protocol on one simulated machine.

    Args:
        spec: :meth:`MachineSpec.to_payload` dict.
        candidates: shortlisted store entries, each
            ``{"key", "mapping", "compiled"}`` with serialised payloads,
            best similarity first.
        confirm: campaign policy (default :class:`ConfirmConfig`).
        resilient: run any fallback search with the full recovery stack.
    """
    machine_spec = MachineSpec.from_payload(spec)
    confirm = confirm if confirm is not None else ConfirmConfig()
    truth = materialize_mapping(machine_spec)
    machine = SimulatedMachine(truth, seed=machine_spec.machine_seed)
    service = default_service()

    obs.inc("fleet.machines")
    with obs.span(f"machine:{machine_spec.machine_id}", clock=machine.clock) as span:
        span.set("kind", machine_spec.kind)
        span.set("candidates", len(candidates))

        verdicts: list[CandidateVerdict] = []
        chosen_mapping = None
        chosen_key = ""
        pages = None
        for index, candidate in enumerate(candidates):
            key = str(candidate.get("key", ""))
            try:
                mapping = mapping_from_dict(candidate["mapping"])
            except Exception:
                # A claim that does not survive revalidation cannot even
                # be probed; score it as a rejection so the breaker sees
                # the failure.
                obs.inc("fleet.confirm_rejects")
                verdicts.append(
                    CandidateVerdict(
                        key=key,
                        confirmed=False,
                        agreement=0.0,
                        probes=0,
                        reason="invalid",
                    )
                )
                continue
            if pages is None:
                pages = machine.allocate(
                    int(machine.total_bytes * confirm.alloc_fraction),
                    strategy="fragmented",
                )
            rng = np.random.default_rng(
                [machine_spec.machine_seed, confirm.seed_salt, index]
            )
            belief = BeliefMapping.from_mapping(mapping)
            # Child span so the machine span's measurement total
            # telescopes: confirm probes + any search measurements must
            # sum exactly to machine.stats.measurements, and the trace
            # validator holds us to it.
            with obs.span(f"confirm:{index}", clock=machine.clock) as confirm_span:
                outcome = run_confirmation(machine, pages, belief, rng, confirm)
                confirm_span.set("key", key)
                confirm_span.set("confirmed", outcome.confirmed)
                confirm_span.set("measurements", outcome.probes)
            obs.inc("fleet.confirm_probes", outcome.probes)
            verdicts.append(
                CandidateVerdict(
                    key=key,
                    confirmed=outcome.confirmed,
                    agreement=outcome.agreement,
                    probes=outcome.probes,
                    reason=outcome.reason,
                )
            )
            if outcome.confirmed:
                obs.inc("fleet.confirm_hits")
                chosen_mapping = mapping
                chosen_key = key
                # Share the store's compiled form process-locally; a
                # corrupt compiled payload heals by recompiling.
                service.register_serialized(
                    mapping, candidate.get("compiled"), system=machine.sysinfo()
                )
                break
            obs.inc("fleet.confirm_rejects")

        learned_mapping_dict = None
        learned_compiled_dict = None
        search_retries = 0
        search_degradations = 0
        if chosen_mapping is None:
            if candidates:
                outcome_name = "fallback"
                obs.inc("fleet.fallbacks")
            else:
                outcome_name = "cold"
                obs.inc("fleet.cold_starts")
            config = DramDigConfig.resilient() if resilient else DramDigConfig()
            result = DramDig(config).run(machine)
            chosen_mapping = result.mapping
            chosen_key = mapping_fingerprint(result.mapping)
            search_retries = result.retries
            search_degradations = len(result.degradation)
            learned_mapping_dict = mapping_to_dict(result.mapping)
            from repro.dram.serialization import compiled_to_dict

            learned_compiled_dict = compiled_to_dict(result.mapping.compiled)
        else:
            outcome_name = "confirmed"

        correct = chosen_mapping.equivalent_to(machine.ground_truth)
        span.set("outcome", outcome_name)
        span.set("correct", correct)
        span.set("measurements", machine.stats.measurements)
        return FleetMachineResult(
            machine_id=machine_spec.machine_id,
            kind=machine_spec.kind,
            outcome=outcome_name,
            chosen_key=chosen_key,
            correct=bool(correct),
            verdicts=verdicts,
            measurements=int(machine.stats.measurements),
            sim_seconds=round(float(machine.elapsed_seconds), 6),
            mapping=learned_mapping_dict,
            compiled=learned_compiled_dict,
            system=system_to_facts(machine.sysinfo()),
            search_retries=search_retries,
            search_degradations=search_degradations,
        )
