"""Command-line interface: ``dramdig`` / ``python -m repro``.

Subcommands mirror the paper:

* ``dramdig run No.6``        — reverse-engineer one machine with DRAMDig.
* ``dramdig compare No.6``    — run DRAMDig, DRAMA and Xiao on one machine.
* ``dramdig explain No.6``    — the bit-layout diagram of a ground truth.
* ``dramdig hammer No.2``     — reverse-engineer, then run rowhammer tests.
* ``dramdig translate No.2 --phys 0x1ed2f00`` — compiled phys↔DRAM queries.
* ``dramdig table1|table2|figure2|table3`` — regenerate a paper artefact.
* ``dramdig fleet run --fleet-size 16`` — DRAMDig across a simulated fleet
  with a persistent cross-machine knowledge store.
* ``dramdig campaign run`` — rowhammer flip-yield campaign fuzzer
  (variants × mitigations × machines) over the supervised grid.
* ``dramdig campaign leaderboard ART.json`` — render a saved campaign.
* ``dramdig obs tail RUN.stream`` — render a live telemetry stream.
* ``dramdig obs diff A.jsonl B.jsonl`` — attribute a slowdown to a span
  subtree, ``critical-path`` the heaviest chain, ``history`` the run log.
* ``dramdig list``            — show the machine presets.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.baselines.drama import DramaTool
from repro.baselines.xiao import XiaoTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.belief import BeliefMapping
from repro.dram.errors import ReproError
from repro.dram.explain import explain_mapping
from repro.dram.presets import TABLE2_ORDER, preset
from repro.dram.serialization import save_mapping
from repro.evalsuite import (
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
    run_figure2,
    run_table1,
    run_table2,
    run_table3,
)
from repro.faults import FaultInjector, get_profile, profile_names
from repro.logutil import get_logger, setup_logging
from repro.obs.history import DEFAULT_HISTORY_PATH
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.assess import assess_vulnerability
from repro.rowhammer.hammer import HammerConfig

__all__ = ["main"]

_LOG = get_logger("repro.cli")


def _jobs_arg(text: str) -> int:
    """Worker count for the evaluation grid: a positive int, or -1 (all CPUs).

    Rejected at the argparse layer so ``--jobs 0`` / ``--jobs -8`` fail
    with a usage message instead of surfacing later as an opaque
    multiprocessing error.
    """
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if jobs == 0 or jobs < -1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive integer or -1 for all CPUs (got {jobs})"
        )
    return jobs


def _retries_arg(text: str) -> int:
    """Non-negative pipeline restart budget."""
    try:
        retries = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if retries < 0:
        raise argparse.ArgumentTypeError(
            f"--max-retries must be non-negative (got {retries})"
        )
    return retries


def _grid_retries_arg(text: str) -> int:
    """Non-negative per-cell retry budget for supervised grid runs."""
    try:
        retries = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if retries < 0:
        raise argparse.ArgumentTypeError(
            f"--grid-retries must be non-negative (got {retries})"
        )
    return retries


def _batch_cells_arg(text: str) -> int:
    """Positive per-task cell batch size for the evaluation grid."""
    try:
        batch = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if batch < 1:
        raise argparse.ArgumentTypeError(
            f"--batch-cells must be a positive integer (got {batch})"
        )
    return batch


def _seconds_arg(text: str) -> float:
    """Positive wall-clock budget in seconds."""
    try:
        seconds = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if seconds <= 0:
        raise argparse.ArgumentTypeError(
            f"timeout must be a positive number of seconds (got {text})"
        )
    return seconds


def _tests_arg(text: str) -> int:
    """At least one timed test."""
    try:
        tests = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if tests < 1:
        raise argparse.ArgumentTypeError(
            f"--tests must be a positive integer (got {tests})"
        )
    return tests


def _duration_arg(text: str) -> float:
    """Positive simulated test length (minutes or seconds, per flag)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"test duration must be positive (got {text})"
        )
    return value


def _decoy_rows_arg(text: str) -> int:
    """Non-negative decoy-row count for many-sided hammering."""
    try:
        decoys = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if decoys < 0:
        raise argparse.ArgumentTypeError(
            f"--decoy-rows must be non-negative (got {decoys})"
        )
    return decoys


def _vulnerability_arg(text: str) -> float:
    """Weak-cell density override: a probability-like value in [0, 1]."""
    try:
        vulnerability = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if not 0.0 <= vulnerability <= 1.0:
        raise argparse.ArgumentTypeError(
            f"--vulnerability must be within [0, 1] (got {text})"
        )
    return vulnerability


def _grid_options(args):
    """Fold the crash-safety flags into (supervision, journal).

    Any of ``--cell-timeout``/``--run-deadline``/``--grid-retries``
    switches the grid to the supervised engine; ``--resume`` alone does
    too (a journal only makes sense with checkpointing on). With none of
    the flags the seed fail-fast path runs, byte for byte.
    """
    from repro.parallel import GridPolicy

    supervision = None
    if (
        args.cell_timeout is not None
        or args.run_deadline is not None
        or args.grid_retries is not None
    ):
        supervision = GridPolicy(
            cell_timeout_s=args.cell_timeout,
            run_deadline_s=args.run_deadline,
            retries=args.grid_retries if args.grid_retries is not None else 0,
        )
    elif args.resume is not None:
        supervision = GridPolicy()
    return supervision, args.resume


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dramdig",
        description="DRAMDig reproduction (DAC 2020) on a simulated memory substrate",
    )
    parser.add_argument("--seed", type=int, default=1, help="machine seed (default 1)")
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="threshold for status/diagnostic lines on stderr (default info)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress status lines (log only warnings and errors); "
        "artefact output on stdout is unaffected",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="append live progress events (grid cells, fleet waves, "
        "campaign trials, pipeline phases) to this JSONL stream while "
        "the command runs; watch it with 'dramdig obs tail --follow PATH'",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        nargs="?",
        const=str(DEFAULT_HISTORY_PATH),
        default=None,
        help="append this run's wall/simulated totals and metric snapshot "
        f"to a run-history file (default {DEFAULT_HISTORY_PATH}); "
        "inspect with 'dramdig obs history'",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="run DRAMDig on one machine preset")
    run_cmd.add_argument("machine", choices=TABLE2_ORDER)
    run_cmd.add_argument(
        "--save", metavar="PATH", help="write the recovered mapping as JSON"
    )
    run_cmd.add_argument(
        "--noise-profile",
        choices=profile_names(),
        default=None,
        metavar="PROFILE",
        help="inject a deterministic fault profile "
        f"({', '.join(profile_names())}) and enable the adaptive "
        "recovery stack",
    )
    run_cmd.add_argument(
        "--max-retries",
        type=_retries_arg,
        default=None,
        metavar="N",
        help="override the whole-pipeline restart budget",
    )
    run_cmd.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL trace (spans + metrics) of the run here",
    )

    compare_cmd = commands.add_parser(
        "compare", help="run DRAMDig, DRAMA and Xiao et al. on one machine"
    )
    compare_cmd.add_argument("machine", choices=TABLE2_ORDER)

    explain_cmd = commands.add_parser(
        "explain", help="show a machine's ground-truth bit layout"
    )
    explain_cmd.add_argument("machine", choices=TABLE2_ORDER)

    hammer_cmd = commands.add_parser(
        "hammer", help="reverse-engineer, then run double-sided rowhammer tests"
    )
    hammer_cmd.add_argument("machine", choices=TABLE2_ORDER)
    hammer_cmd.add_argument(
        "--tests", type=_tests_arg, default=5, help="timed tests (default 5)"
    )
    hammer_cmd.add_argument(
        "--minutes",
        type=_duration_arg,
        default=5.0,
        help="minutes per test (default 5; must be positive)",
    )
    hammer_cmd.add_argument(
        "--decoy-rows",
        type=_decoy_rows_arg,
        default=0,
        metavar="N",
        help="extra rows hammered per window (TRRespass-style many-sided "
        "pattern; default 0: plain double-sided)",
    )
    hammer_cmd.add_argument(
        "--vulnerability",
        type=_vulnerability_arg,
        default=None,
        metavar="DENSITY",
        help="override the preset's weak-cell density (a value in [0, 1])",
    )

    translate_cmd = commands.add_parser(
        "translate",
        help="query the compiled phys↔DRAM translation service",
        description="Compile a mapping (preset ground truth or a JSON file "
        "saved with 'run --save') into its GF(2) matrix pair and answer "
        "translation queries through the cached service.",
    )
    translate_cmd.add_argument(
        "machine",
        nargs="?",
        choices=TABLE2_ORDER,
        help="preset whose ground-truth mapping to compile "
        "(or use --mapping PATH)",
    )
    translate_cmd.add_argument(
        "--mapping",
        metavar="PATH",
        default=None,
        help="compile a mapping JSON written by 'run --save' instead of a preset",
    )
    translate_cmd.add_argument(
        "--phys",
        nargs="+",
        metavar="ADDR",
        default=None,
        help="physical addresses (decimal or 0x-hex) to translate to "
        "bank/row/column",
    )
    translate_cmd.add_argument(
        "--dram",
        nargs="+",
        metavar="BANK,ROW,COL",
        default=None,
        help="DRAM coordinates to encode back to physical addresses",
    )
    translate_cmd.add_argument(
        "--same-bank",
        type=int,
        metavar="BANK",
        default=None,
        dest="same_bank",
        help="emit --count physical addresses that all map to this bank",
    )
    translate_cmd.add_argument(
        "--aggressors",
        type=int,
        metavar="BANK",
        default=None,
        help="emit --count double-sided aggressor sets (victim, above, "
        "below) in this bank",
    )
    translate_cmd.add_argument(
        "--count", type=int, default=4, help="set size for generator queries"
    )
    translate_cmd.add_argument(
        "--column", type=int, default=0, help="column for generator queries"
    )
    translate_cmd.add_argument(
        "--stride",
        type=int,
        default=3,
        help="victim-row spacing for --aggressors (default 3: disjoint sets)",
    )
    translate_cmd.add_argument(
        "--stats",
        action="store_true",
        help="print the service's cache/counter stats afterwards",
    )

    commands.add_parser("list", help="list machine presets")
    report_cmd = commands.add_parser(
        "report", help="regenerate every artefact into one markdown report"
    )
    report_cmd.add_argument("--out", metavar="PATH", help="write the report here")
    table1_cmd = commands.add_parser("table1", help="regenerate Table I (tool comparison)")
    commands.add_parser("table2", help="regenerate Table II (mappings, 9 machines)")
    figure2_cmd = commands.add_parser("figure2", help="regenerate Figure 2 (time costs)")
    table3_cmd = commands.add_parser(
        "table3", help="regenerate Table III (rowhammer flips)"
    )
    table3_cmd.add_argument(
        "--tests", type=int, default=5, help="tests per machine (default 5)"
    )

    from repro.rowhammer.campaign import (
        CAMPAIGN_MACHINES,
        mitigation_names,
        variant_names,
    )

    campaign_cmd = commands.add_parser(
        "campaign",
        help="rowhammer flip-yield campaign fuzzer over the supervised grid",
    )
    campaign_sub = campaign_cmd.add_subparsers(
        dest="campaign_command", required=True
    )
    campaign_run_cmd = campaign_sub.add_parser(
        "run",
        help="sweep hammering variants × mitigation stacks × machines",
        description="Enumerate a deterministic sweep space (hammering "
        "variants × mitigation stacks × machine presets × seeds), run "
        "every trial as a supervised grid cell, and rank configurations "
        "on a bit-flip-yield leaderboard. With --resume the campaign is "
        "crash-safe: completed trials replay from the journal and the "
        "leaderboard artifact is byte-identical to an uninterrupted run.",
    )
    campaign_run_cmd.add_argument(
        "--machines", nargs="+", choices=TABLE2_ORDER,
        default=list(CAMPAIGN_MACHINES), metavar="NAME",
        help="machine presets to sweep "
        f"(default: {' '.join(CAMPAIGN_MACHINES)})",
    )
    campaign_run_cmd.add_argument(
        "--variants", nargs="+", choices=variant_names(),
        default=list(variant_names()), metavar="VARIANT",
        help=f"hammering variants ({', '.join(variant_names())}; "
        "default: all)",
    )
    campaign_run_cmd.add_argument(
        "--mitigations", nargs="+", choices=mitigation_names(),
        default=list(mitigation_names()), metavar="STACK",
        help=f"mitigation stacks ({', '.join(mitigation_names())}; "
        "default: all)",
    )
    campaign_run_cmd.add_argument(
        "--tests", type=_tests_arg, default=2, metavar="N",
        help="timed tests per (machine, variant, mitigation) combination "
        "(default 2)",
    )
    campaign_run_cmd.add_argument(
        "--duration", type=_duration_arg, default=120.0, metavar="SECONDS",
        help="simulated length of each timed test (default 120)",
    )
    campaign_run_cmd.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the dramdig-campaign-v1 JSON artifact here",
    )
    campaign_board_cmd = campaign_sub.add_parser(
        "leaderboard",
        help="render the leaderboard of a saved campaign artifact",
    )
    campaign_board_cmd.add_argument("artifact", metavar="PATH")

    for grid_cmd in (
        report_cmd, table1_cmd, figure2_cmd, table3_cmd, campaign_run_cmd
    ):
        grid_cmd.add_argument(
            "--jobs",
            type=_jobs_arg,
            default=None,
            metavar="N",
            help="worker processes for the evaluation grid "
            "(default: serial; -1 = all CPUs; results are bit-identical)",
        )
        grid_cmd.add_argument(
            "--batch-cells",
            type=_batch_cells_arg,
            default=None,
            metavar="K",
            help="bundle K consecutive grid cells into one worker task "
            "(default 1; cuts per-task dispatch overhead; results are "
            "bit-identical)",
        )
        grid_cmd.add_argument(
            "--pool-mode",
            choices=("persistent", "fresh"),
            default="persistent",
            help="worker pool lifecycle: 'persistent' keeps a warmed pool "
            "alive and reuses it across grids in one process, 'fresh' "
            "builds and tears down a pool per grid (default persistent)",
        )
        grid_cmd.add_argument(
            "--resume",
            metavar="JOURNAL",
            default=None,
            help="checkpoint journal path: completed cells are recorded "
            "there and skipped when the run is restarted (results are "
            "bit-identical to an uninterrupted run)",
        )
        grid_cmd.add_argument(
            "--cell-timeout",
            type=_seconds_arg,
            default=None,
            metavar="SECONDS",
            help="kill and fail any grid cell running longer than this "
            "(enables the supervised engine)",
        )
        grid_cmd.add_argument(
            "--run-deadline",
            type=_seconds_arg,
            default=None,
            metavar="SECONDS",
            help="salvage whatever finished once the whole grid run "
            "exceeds this budget (enables the supervised engine)",
        )
        grid_cmd.add_argument(
            "--grid-retries",
            type=_grid_retries_arg,
            default=None,
            metavar="N",
            help="retry a failed grid cell up to N times with exponential "
            "backoff before recording it as FAILED (enables the "
            "supervised engine)",
        )
        grid_cmd.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="write one merged JSONL trace of the whole grid run here "
            "(per-cell span files are stitched across worker processes; "
            "journal-resumed cells appear as 'cached' spans)",
        )

    fleet_cmd = commands.add_parser(
        "fleet",
        help="run DRAMDig across a simulated fleet with a shared knowledge store",
    )
    fleet_sub = fleet_cmd.add_subparsers(dest="fleet_command", required=True)
    fleet_run_cmd = fleet_sub.add_parser(
        "run",
        help="confirm-or-fallback over a randomized fleet",
        description="Generate a deterministic fleet of simulated machines "
        "(randomized geometries and mappings grouped into families), run "
        "the confirm-or-fallback protocol over it, and fold what every "
        "machine learned into a persistent cross-machine knowledge store.",
    )
    fleet_run_cmd.add_argument(
        "--fleet-size", type=int, default=8, metavar="N",
        help="machines in the fleet (default 8)",
    )
    fleet_run_cmd.add_argument(
        "--families", type=int, default=2, metavar="N",
        help="distinct ground-truth mapping families (default 2)",
    )
    fleet_run_cmd.add_argument(
        "--profile", choices=("lookalike", "adversarial"), default="lookalike",
        help="fleet composition: 'lookalike' (every machine matches its "
        "family) or 'adversarial' (imposters report their family's "
        "SystemInfo but wire a different mapping)",
    )
    fleet_run_cmd.add_argument(
        "--mismatch-every", type=int, default=3, metavar="K",
        help="adversarial profile: every K-th non-exemplar machine is an "
        "imposter (default 3)",
    )
    fleet_run_cmd.add_argument(
        "--max-gib", type=int, default=8, metavar="G",
        help="cap family geometries at G GiB (default 8; 0 = uncapped)",
    )
    fleet_run_cmd.add_argument(
        "--knowledge-store", metavar="PATH", default=None,
        help="persistent knowledge-store file shared across fleet runs "
        "(default: in-memory, forgotten after the run)",
    )
    fleet_run_cmd.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="checkpoint journal path: completed machines are recorded "
        "there and skipped when the run is restarted (artifacts are "
        "byte-identical to an uninterrupted run)",
    )
    fleet_run_cmd.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes per dispatch wave (default: serial)",
    )
    fleet_run_cmd.add_argument(
        "--wave", type=int, default=4, metavar="N",
        help="machines dispatched per wave after the exemplar wave "
        "(store updates land between waves; default 4)",
    )
    fleet_run_cmd.add_argument(
        "--max-candidates", type=int, default=3, metavar="N",
        help="store hypotheses offered to each machine (default 3)",
    )
    fleet_run_cmd.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive confirmation failures that quarantine a "
        "hypothesis (default 3)",
    )
    fleet_run_cmd.add_argument(
        "--resilient", action="store_true",
        help="run fallback searches with the full recovery stack",
    )
    fleet_run_cmd.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON fleet artifact (machines, summary, scaling "
        "curve) here",
    )
    fleet_run_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write one merged JSONL trace of the fleet run here "
        "(per-machine spans are stitched across worker processes)",
    )

    trace_cmd = commands.add_parser(
        "trace", help="inspect a JSONL trace written with --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_summary_cmd = trace_sub.add_parser(
        "summary",
        help="render the span tree (text flamegraph) and metrics table, "
        "and verify the trace's accounting consistency",
    )
    trace_summary_cmd.add_argument("path", metavar="TRACE")
    trace_summary_cmd.add_argument(
        "--strict",
        action="store_true",
        help="flag unclosed and orphaned spans as inconsistencies "
        "(default: tolerate them — a trace salvaged from a killed run "
        "renders its in-flight spans as UNCLOSED instead of failing)",
    )

    obs_cmd = commands.add_parser(
        "obs", help="live telemetry streams and cross-run trace analytics"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_tail_cmd = obs_sub.add_parser(
        "tail",
        help="render a telemetry stream written with --telemetry",
        description="Render the events of a --telemetry JSONL stream as "
        "human-readable lines. With --follow the stream is polled for "
        "new complete lines, so an in-flight run can be watched live "
        "from another terminal.",
    )
    obs_tail_cmd.add_argument("stream", metavar="STREAM")
    obs_tail_cmd.add_argument(
        "--follow", "-f", action="store_true",
        help="keep watching the stream for new events (Ctrl-C to stop)",
    )
    obs_tail_cmd.add_argument(
        "--interval", type=_seconds_arg, default=0.5, metavar="SECONDS",
        help="poll interval with --follow (default 0.5)",
    )
    obs_diff_cmd = obs_sub.add_parser(
        "diff",
        help="span-level A/B diff of two traces (exit 1 on regression)",
        description="Aggregate two traces per span path on the simulated "
        "clock, report where the second one got slower, and attribute "
        "the growth to the worst subtree. Subtrees cached or failed on "
        "either side are excluded from both, so a journal-resumed run "
        "diffs as exactly equal to its from-scratch twin.",
    )
    obs_diff_cmd.add_argument("base", metavar="BASE_TRACE")
    obs_diff_cmd.add_argument("other", metavar="OTHER_TRACE")
    obs_diff_cmd.add_argument(
        "--tolerance", type=float, default=0.01, metavar="FRACTION",
        help="fractional growth of the total simulated time tolerated "
        "before the pair counts as a regression (default 0.01)",
    )
    obs_diff_cmd.add_argument(
        "--limit", type=int, default=15, metavar="N",
        help="span paths shown, largest growth first (default 15; 0 = all)",
    )
    obs_critical_cmd = obs_sub.add_parser(
        "critical-path",
        help="heaviest root-to-leaf chain through a trace's span tree",
    )
    obs_critical_cmd.add_argument("trace_path", metavar="TRACE")
    obs_critical_cmd.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="steps shown from the root (default: the whole chain)",
    )
    obs_history_cmd = obs_sub.add_parser(
        "history",
        help="render the run history and flag regressions",
        description="Render the trailing entries of a run-history file "
        "written with --history and compare each command's newest run "
        "against its trailing window (simulated clock at 5%%, wall "
        "clock at 100%%).",
    )
    obs_history_cmd.add_argument(
        "path", metavar="HISTORY", nargs="?",
        default=str(DEFAULT_HISTORY_PATH),
        help=f"history file (default {DEFAULT_HISTORY_PATH})",
    )
    obs_history_cmd.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trailing runs each command's newest run is compared "
        "against (default 5)",
    )
    obs_history_cmd.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="history rows rendered (default 20; 0 = all)",
    )
    obs_history_cmd.add_argument(
        "--check", action="store_true",
        help="exit 1 when any command's newest run regresses",
    )
    return parser


def _command_run(args) -> int:
    machine_preset = preset(args.machine)
    faults = None
    config = DramDigConfig()
    if args.noise_profile is not None:
        faults = FaultInjector(get_profile(args.noise_profile), seed=args.seed)
        config = DramDigConfig.resilient(config)
    if args.max_retries is not None:
        config = dataclasses.replace(config, max_retries=args.max_retries)
    machine = SimulatedMachine.from_preset(
        machine_preset, seed=args.seed, faults=faults
    )
    _LOG.info(
        "Reverse-engineering %s (%s, %s)",
        args.machine,
        machine_preset.microarchitecture,
        machine_preset.geometry.describe(),
    )
    if args.noise_profile is not None:
        _LOG.info(
            "noise profile: %s (adaptive recovery enabled)", args.noise_profile
        )
    result = DramDig(config).run(machine)
    print(result.summary())
    verdict = result.mapping.equivalent_to(machine_preset.mapping)
    print(f"matches ground truth: {'yes' if verdict else 'NO'}")
    if args.save:
        save_mapping(result.mapping, args.save)
        print(f"mapping saved to {args.save}")
    return 0 if verdict else 1


def _command_compare(args) -> int:
    machine_preset = preset(args.machine)
    print(f"== DRAMDig on {args.machine} ==")
    machine = SimulatedMachine.from_preset(machine_preset, seed=args.seed)
    result = DramDig().run(machine)
    print(result.summary())

    print(f"\n== DRAMA on {args.machine} ==")
    machine = SimulatedMachine.from_preset(machine_preset, seed=args.seed)
    drama = DramaTool(seed=args.seed).run(machine)
    if drama.belief is None:
        print(f"timed out after {drama.seconds:.0f} simulated seconds "
              f"({drama.attempts} attempts)")
    else:
        agrees = drama.belief.hammer_equivalent(machine_preset.mapping)
        print(f"finished in {drama.seconds:.0f} s, {drama.attempts} attempts, "
              f"hammer-equivalent to truth: {agrees}")

    print(f"\n== Xiao et al. on {args.machine} ==")
    machine = SimulatedMachine.from_preset(machine_preset, seed=args.seed)
    try:
        xiao = XiaoTool().run(machine)
    except ReproError as error:
        print(f"failed: {error}")
    else:
        agrees = xiao.belief.hammer_equivalent(machine_preset.mapping)
        print(f"finished in {xiao.seconds:.0f} s, "
              f"hammer-equivalent to truth: {agrees}")
    return 0


def _command_explain(args) -> int:
    print(explain_mapping(preset(args.machine).mapping))
    return 0


def _command_hammer(args) -> int:
    machine_preset = preset(args.machine)
    machine = SimulatedMachine.from_preset(machine_preset, seed=args.seed)
    _LOG.info("Reverse-engineering %s with DRAMDig ...", args.machine)
    result = DramDig().run(machine)
    print(f"mapping recovered in {result.total_seconds:.0f} simulated seconds")
    vulnerability = (
        args.vulnerability
        if args.vulnerability is not None
        else machine_preset.hammer_vulnerability
    )
    report = assess_vulnerability(
        machine,
        BeliefMapping.from_mapping(result.mapping),
        vulnerability=vulnerability,
        tests=args.tests,
        config=HammerConfig(duration_seconds=args.minutes * 60.0),
        seed=args.seed,
        decoy_rows=args.decoy_rows,
    )
    print(report.summary())
    return 0


def _command_translate(args) -> int:
    import numpy as np

    from repro.dram.serialization import load_mapping
    from repro.service.translation import default_service

    if (args.machine is None) == (args.mapping is None):
        _LOG.error("provide exactly one of MACHINE or --mapping PATH")
        return 2
    if args.mapping is not None:
        try:
            mapping = load_mapping(args.mapping)
        except (OSError, ValueError, KeyError, ReproError) as error:
            _LOG.error("cannot load mapping %s: %s", args.mapping, error)
            return 1
        label = args.mapping
    else:
        mapping = preset(args.machine).mapping
        label = args.machine

    service = default_service()
    key = service.register(mapping)
    compiled = service.compiled(key)
    print(
        f"{label}: {compiled.banks} banks × {compiled.rows} rows × "
        f"{compiled.columns} columns, key {key[:16]}…"
    )

    if args.phys is not None:
        try:
            addrs = np.array([int(text, 0) for text in args.phys], dtype=np.uint64)
        except ValueError as error:
            _LOG.error("bad --phys address: %s", error)
            return 2
        banks, rows, columns = service.translate(key, addrs)
        for addr, bank, row, column in zip(addrs, banks, rows, columns):
            print(f"0x{int(addr):012x} -> bank {int(bank)} row {int(row)} "
                  f"col {int(column)}")
    if args.dram is not None:
        try:
            triples = [
                tuple(int(part, 0) for part in text.split(","))
                for text in args.dram
            ]
            if any(len(triple) != 3 for triple in triples):
                raise ValueError("expected BANK,ROW,COL")
        except ValueError as error:
            _LOG.error("bad --dram coordinate: %s", error)
            return 2
        banks = np.array([t[0] for t in triples], dtype=np.uint64)
        rows = np.array([t[1] for t in triples], dtype=np.uint64)
        columns = np.array([t[2] for t in triples], dtype=np.uint64)
        for (bank, row, column), addr in zip(
            triples, service.encode(key, banks, rows, columns)
        ):
            print(f"bank {bank} row {row} col {column} -> 0x{int(addr):012x}")
    if args.same_bank is not None:
        addrs = service.same_bank_addresses(
            key, args.same_bank, args.count, args.column
        )
        print(f"bank {args.same_bank}, column {args.column}: "
              + " ".join(f"0x{int(addr):012x}" for addr in addrs))
    if args.aggressors is not None:
        victims, above, below = service.adjacent_row_sets(
            key, args.aggressors, args.count, args.column, args.stride
        )
        for victim, upper, lower in zip(victims, above, below):
            print(f"victim 0x{int(victim):012x}  above 0x{int(upper):012x}  "
                  f"below 0x{int(lower):012x}")
    if args.stats:
        stats = service.stats()
        print("service: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _command_list(_args) -> int:
    for name in TABLE2_ORDER:
        machine_preset = preset(name)
        print(f"{name}: {machine_preset.microarchitecture} {machine_preset.cpu}, "
              f"{machine_preset.geometry.describe()}")
    return 0


def _command_fleet(args) -> int:
    from repro.fleet import FleetConfig, render_fleet, run_fleet
    from repro.fleet.orchestrator import save_artifact

    config = FleetConfig(
        size=args.fleet_size,
        families=args.families,
        profile=args.profile,
        seed=args.seed,
        max_gib=args.max_gib if args.max_gib else None,
        mismatch_every=args.mismatch_every,
        store_path=args.knowledge_store,
        journal_path=args.resume,
        jobs=args.jobs,
        wave=args.wave,
        max_candidates=args.max_candidates,
        breaker_threshold=args.breaker_threshold,
        resilient=args.resilient,
    )
    _LOG.info(
        "fleet: %d machines, %d families, profile=%s, store=%s",
        config.size,
        config.families,
        config.profile,
        config.store_path or "(in-memory)",
    )
    outcome = run_fleet(config)
    print(render_fleet(outcome), end="")
    for event in outcome.events:
        _LOG.warning("fleet degradation: %s", event.describe())
    if args.out:
        save_artifact(outcome, args.out)
        _LOG.info("fleet artifact written to %s", args.out)
    # A fleet run is only a success when every machine completed and
    # recovered its true mapping — quarantines and fallbacks are fine,
    # wrong mappings are not.
    return 0 if outcome.all_correct else 1


def _command_campaign(args) -> int:
    from repro.rowhammer.campaign import (
        CampaignSpec,
        load_artifact,
        render_artifact,
        render_campaign,
        run_campaign,
        save_artifact,
    )

    if args.campaign_command == "leaderboard":
        try:
            artifact = load_artifact(args.artifact)
        except (OSError, ValueError) as error:
            _LOG.error("cannot load campaign artifact %s: %s", args.artifact, error)
            return 1
        print(render_artifact(artifact))
        return 1 if artifact.get("failures") else 0

    spec = CampaignSpec(
        machines=tuple(args.machines),
        variants=tuple(args.variants),
        mitigations=tuple(args.mitigations),
        tests=args.tests,
        duration_seconds=args.duration,
        seed=args.seed,
    )
    supervision, journal = _grid_options(args)
    _LOG.info(
        "campaign: %d cells (%d machines × %d variants × %d mitigations "
        "× %d tests), ~%d hammer trials",
        spec.cell_count,
        len(spec.machines),
        len(spec.variants),
        len(spec.mitigations),
        spec.tests,
        spec.cell_count * spec.hammer_trials_per_test(),
    )
    outcome = run_campaign(
        spec,
        jobs=args.jobs,
        supervision=supervision,
        journal=journal,
        batch_cells=args.batch_cells,
        pool_mode=args.pool_mode,
    )
    print(render_campaign(outcome))
    if args.out:
        save_artifact(outcome, args.out)
        _LOG.info("campaign artifact written to %s", args.out)
    # A campaign with unrecovered cells is a partial sweep; the manifest
    # says so loudly and the exit code must agree.
    return 1 if outcome.failures else 0


def _command_trace(args) -> int:
    from repro.obs.export import load_trace
    from repro.obs.summary import render_summary, validate_trace

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as error:
        _LOG.error("cannot read trace %s: %s", args.path, error)
        return 1
    print(render_summary(trace))
    problems = validate_trace(trace, strict=args.strict)
    for problem in problems:
        _LOG.error("trace inconsistency: %s", problem)
    return 1 if problems else 0


def _command_obs_tail(args) -> int:
    from repro.obs.telemetry import render_event

    path = Path(args.stream)
    if not args.follow and not path.exists():
        _LOG.error("no telemetry stream at %s", path)
        return 1

    offset = 0

    def drain() -> None:
        """Render every *complete* new line; leave a torn tail unread."""
        nonlocal offset
        if not path.exists():
            return
        with open(path, "rb") as stream:
            stream.seek(offset)
            chunk = stream.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        for raw in chunk[: end + 1].splitlines():
            try:
                event = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if isinstance(event, dict) and "kind" in event:
                print(render_event(event), flush=True)
        offset += end + 1

    drain()
    if not args.follow:
        return 0
    try:
        while True:
            time.sleep(args.interval)
            drain()
    except KeyboardInterrupt:
        return 0


def _command_obs(args) -> int:
    if args.obs_command == "tail":
        return _command_obs_tail(args)
    if args.obs_command == "diff":
        from repro.obs.analytics import diff_traces, render_diff
        from repro.obs.export import load_trace

        try:
            base = load_trace(args.base)
            other = load_trace(args.other)
        except (OSError, ValueError) as error:
            _LOG.error("cannot read trace: %s", error)
            return 1
        diff = diff_traces(base, other, tolerance=args.tolerance)
        print(render_diff(diff, limit=args.limit))
        return 1 if diff.regression else 0
    if args.obs_command == "critical-path":
        from repro.obs.analytics import render_critical_path
        from repro.obs.export import load_trace

        try:
            trace = load_trace(args.trace_path)
        except (OSError, ValueError) as error:
            _LOG.error("cannot read trace %s: %s", args.trace_path, error)
            return 1
        print(render_critical_path(trace, limit=args.limit))
        return 0
    if args.obs_command == "history":
        from repro.obs.history import (
            detect_regressions,
            load_history,
            render_history,
        )

        entries = load_history(args.path)
        print(render_history(entries, window=args.window, limit=args.limit))
        if args.check and detect_regressions(entries, window=args.window):
            return 1
        return 0
    raise AssertionError(
        f"unhandled obs command {args.obs_command}"
    )  # pragma: no cover


def _dispatch_command(args) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "explain":
        return _command_explain(args)
    if args.command == "hammer":
        return _command_hammer(args)
    if args.command == "translate":
        return _command_translate(args)
    if args.command == "list":
        return _command_list(args)
    if args.command == "report":
        from repro.evalsuite.report import ReportConfig, generate_report

        supervision, journal = _grid_options(args)
        report = generate_report(
            ReportConfig(
                seed=args.seed,
                jobs=args.jobs,
                supervision=supervision,
                journal=journal,
                batch_cells=args.batch_cells,
                pool_mode=args.pool_mode,
            ),
            path=args.out,
        )
        if args.out:
            print(f"report written to {args.out}")
        else:
            print(report)
        # Supervised sections flag unrecovered cells with an explicit
        # manifest; a partial report must not exit 0.
        return 1 if "grid failures (" in report else 0
    if args.command == "table1":
        supervision, journal = _grid_options(args)
        verdicts = run_table1(
            seed=args.seed, jobs=args.jobs, supervision=supervision, journal=journal,
            batch_cells=args.batch_cells, pool_mode=args.pool_mode,
        )
        print(render_table1(verdicts))
        return 1 if any(verdict.grid_failed for verdict in verdicts) else 0
    if args.command == "table2":
        print(render_table2(run_table2(seed=args.seed)))
        return 0
    if args.command == "figure2":
        from repro.parallel import CellFailure

        supervision, journal = _grid_options(args)
        points = run_figure2(
            seed=args.seed, jobs=args.jobs, supervision=supervision, journal=journal,
            batch_cells=args.batch_cells, pool_mode=args.pool_mode,
        )
        print(render_figure2(points))
        return 1 if any(isinstance(point, CellFailure) for point in points) else 0
    if args.command == "table3":
        from repro.parallel import CellFailure

        supervision, journal = _grid_options(args)
        rows = run_table3(
            seed=args.seed,
            tests=args.tests,
            jobs=args.jobs,
            supervision=supervision,
            journal=journal,
            batch_cells=args.batch_cells,
            pool_mode=args.pool_mode,
        )
        print(render_table3(rows))
        return 1 if any(isinstance(row, CellFailure) for row in rows) else 0
    if args.command == "fleet":
        return _command_fleet(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "obs":
        return _command_obs(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _execute(args) -> tuple[int, object]:
    """Dispatch the command, under a tracer when ``--trace`` was given.

    Returns ``(exit code, tracer-or-None)``. The trace export sits in a
    ``finally`` so an interrupted run still salvages a partial trace:
    its in-flight spans come out with status ``open`` and ``dramdig
    trace summary`` renders them as ``UNCLOSED`` partial accounting.
    """
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return _dispatch_command(args), None

    from repro.obs import tracing as obs
    from repro.obs.export import export_trace

    tracer = obs.Tracer()
    try:
        with obs.activate(tracer):
            code = _dispatch_command(args)
    finally:
        export_trace(
            trace_path, tracer, meta={"command": args.command, "seed": args.seed}
        )
        _LOG.info("trace written to %s", trace_path)
    return code, tracer


def _record_history(args, code: int, wall_s: float, tracer) -> None:
    """Append one run record to the ``--history`` file.

    The simulated total and the metric snapshot come from the tracer, so
    they are present only when the run was also traced; an untraced run
    records wall seconds alone (and regression detection falls back to
    the wide wall-clock threshold).
    """
    from repro.obs.history import record_run

    sim_ns = None
    metrics = None
    if tracer is not None:
        from repro.obs.analytics import span_weight_index
        from repro.obs.export import TraceFile

        weights = span_weight_index(TraceFile(spans=list(tracer.spans)))
        total = sum(
            weights[record.span_id]
            for record in tracer.spans
            if record.parent_id is None
        )
        sim_ns = total if total > 0 else None
        metrics = tracer.metrics.snapshot()
    record_run(
        args.history,
        command=args.command,
        wall_s=wall_s,
        sim_ns=sim_ns,
        metrics=metrics,
        extra={"seed": args.seed, "code": code},
    )
    _LOG.info("history entry appended to %s", args.history)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    With ``--trace PATH`` the whole command runs under an activated
    tracer, and the collected spans and metrics are exported as one
    JSONL file afterwards — grid commands stitch their workers' span
    files into the same trace. With ``--telemetry PATH`` a live event
    bus is activated for the same extent and progress events stream to
    PATH as they happen. Without the flags both globals stay ``None``
    and every instrumented hot path reduces to a single is-None test.
    """
    args = _build_parser().parse_args(argv)
    setup_logging(args.log_level, quiet=args.quiet)
    started = time.perf_counter()
    if args.telemetry:
        from repro.obs import telemetry

        bus = telemetry.TelemetryBus(args.telemetry, source="main")
        with telemetry.activate_bus(bus):
            telemetry.emit("run-start", command=args.command, seed=args.seed)
            code, tracer = _execute(args)
            telemetry.emit(
                "run-end",
                command=args.command,
                code=code,
                wall_s=round(time.perf_counter() - started, 6),
            )
    else:
        code, tracer = _execute(args)
    if args.history is not None:
        _record_history(args, code, time.perf_counter() - started, tracer)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
