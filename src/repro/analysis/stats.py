"""Latency statistics: robust separation of a bimodal timing distribution.

The row-buffer timing channel produces two latency populations — "fast"
(same row, or different banks) and "slow" (row-buffer conflict: same bank,
different rows). On real hardware and in our simulator both populations are
noisy and occasionally contaminated by refresh-induced outliers, so tools
must *calibrate* a decision threshold rather than hard-code one. This module
implements the calibration: trimmed summary statistics, an Otsu-style
two-class split, and a quality metric for the split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencyThreshold",
    "find_threshold",
    "calibrate_threshold",
    "trimmed_mean",
    "median_of",
]


def trimmed_mean(samples: np.ndarray, trim_fraction: float = 0.1) -> float:
    """Mean of ``samples`` after trimming ``trim_fraction`` from each tail.

    Used to summarise a batch of latency measurements while discarding
    refresh-collision spikes.
    """
    if not 0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size == 0:
        raise ValueError("cannot take the trimmed mean of an empty sample")
    cut = int(data.size * trim_fraction)
    trimmed = data[cut : data.size - cut] if cut else data
    return float(trimmed.mean())


def median_of(samples: np.ndarray) -> float:
    """Median latency of a batch — the paper-style robust summary."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot take the median of an empty sample")
    return float(np.median(data))


@dataclass(frozen=True)
class LatencyThreshold:
    """A calibrated fast/slow decision threshold.

    Attributes:
        cutoff: latencies strictly above this value are classified "slow"
            (row-buffer conflict).
        fast_mode: estimated centre of the fast population.
        slow_mode: estimated centre of the slow population.
        separation: ``(slow_mode - fast_mode) / fast_mode`` — the relative
            gap; real row conflicts sit around 30-60% on Intel parts.
    """

    cutoff: float
    fast_mode: float
    slow_mode: float
    separation: float

    def is_slow(self, latency: float) -> bool:
        """Classify one latency summary."""
        return latency > self.cutoff

    def classify(self, latencies: np.ndarray) -> np.ndarray:
        """Vectorized classification; returns a boolean array (True = slow)."""
        return np.asarray(latencies, dtype=np.float64) > self.cutoff


def find_threshold(samples: np.ndarray, min_separation: float = 0.08) -> LatencyThreshold:
    """Calibrate a fast/slow threshold from a mixed latency sample.

    Implements Otsu's method on the empirical distribution: choose the cut
    that maximises between-class variance. ``samples`` should mix conflict
    and non-conflict measurements (the calibration phase of every tool
    measures a few hundred random address pairs, which naturally mixes both).

    Raises:
        ValueError: if the sample looks unimodal — the two class centres are
            closer than ``min_separation`` relative to the fast centre. On
            real machines this is what happens when the timing loop is broken
            (e.g. no cache flush); callers surface it as a calibration error.
    """
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size < 8:
        raise ValueError(f"need at least 8 samples to calibrate, got {data.size}")
    # Otsu over the sorted sample: evaluate every split point k, where the
    # fast class is data[:k] and the slow class data[k:].
    totals = np.cumsum(data)
    total = totals[-1]
    counts = np.arange(1, data.size, dtype=np.float64)
    mean_fast = totals[:-1] / counts
    mean_slow = (total - totals[:-1]) / (data.size - counts)
    weight_fast = counts / data.size
    weight_slow = 1.0 - weight_fast
    between_var = weight_fast * weight_slow * (mean_slow - mean_fast) ** 2
    split = int(np.argmax(between_var))
    fast_mode = float(np.median(data[: split + 1]))
    slow_mode = float(np.median(data[split + 1 :]))
    if fast_mode <= 0:
        raise ValueError("non-positive latencies in calibration sample")
    separation = (slow_mode - fast_mode) / fast_mode
    if separation < min_separation:
        raise ValueError(
            "latency sample looks unimodal "
            f"(separation {separation:.3f} < {min_separation}); "
            "timing channel not observable"
        )
    cutoff = (fast_mode + slow_mode) / 2.0
    return LatencyThreshold(
        cutoff=cutoff, fast_mode=fast_mode, slow_mode=slow_mode, separation=separation
    )


def calibrate_threshold(
    reference: np.ndarray,
    mixed: np.ndarray,
    min_separation: float = 0.08,
    fence_sigmas: float = 4.0,
) -> LatencyThreshold:
    """Reference-anchored calibration, robust to large latency spikes.

    Otsu's method (:func:`find_threshold`) fits the split with the largest
    between-class variance, which a heavy tail of preemption/refresh spikes
    hijacks: the best split lands between the spikes and everything else,
    and the true fast/slow structure is lost. Careful tools avoid this by
    anchoring the fast population with *reference pairs* that are
    guaranteed conflict-free — two addresses within the same OS page share
    their row bits, so they are either the same row or different banks,
    never same-bank-different-row.

    Args:
        reference: latencies of known-fast (same-page) pairs.
        mixed: latencies of random pairs (a fast/slow mixture).
        min_separation: required relative gap between the populations.
        fence_sigmas: how many robust sigmas above the fast mode the slow
            candidate region starts.

    Raises:
        ValueError: when no slow population is visible above the fence or
            the separation is below ``min_separation``.
    """
    reference = np.asarray(reference, dtype=np.float64)
    mixed = np.asarray(mixed, dtype=np.float64)
    if reference.size < 8:
        raise ValueError(f"need at least 8 reference samples, got {reference.size}")
    if mixed.size < 16:
        raise ValueError(f"need at least 16 mixed samples, got {mixed.size}")
    fast_mode = float(np.median(reference))
    mad = float(np.median(np.abs(reference - fast_mode)))
    sigma = max(1.4826 * mad, 0.5)
    fence = fast_mode + fence_sigmas * sigma + 2.0
    candidates = mixed[mixed > fence]
    if candidates.size < max(4, int(0.004 * mixed.size)):
        raise ValueError(
            "no slow population above the reference fence "
            f"({candidates.size} candidates); timing channel not observable"
        )
    # The legitimate slow population clusters at the bottom of the
    # candidate range; spikes spread far above. A low quantile is a robust
    # slow-mode estimate under both.
    slow_mode = float(np.percentile(candidates, 25.0))
    separation = (slow_mode - fast_mode) / fast_mode
    if separation < min_separation:
        raise ValueError(
            f"fast/slow separation {separation:.3f} below {min_separation}; "
            "timing channel not observable"
        )
    return LatencyThreshold(
        cutoff=(fast_mode + slow_mode) / 2.0,
        fast_mode=fast_mode,
        slow_mode=slow_mode,
        separation=separation,
    )
