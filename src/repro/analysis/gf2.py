"""Linear algebra over GF(2) on XOR masks.

A bank address function is a linear form over GF(2): the output bit is the
XOR (parity) of a subset of physical-address bits, so the function *is* its
bit mask. Sets of bank functions therefore form a vector space, and two
reverse-engineered mappings are equivalent exactly when their function sets
span the same subspace. Algorithm 3 of the paper needs rank computation
("remove redundant" = drop masks that are linear combinations of
higher-priority ones) and this module is also what the test-suite uses to
verify recovered mappings against ground truth.

Masks are plain Python integers, so there is no width limit.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "rank",
    "is_independent",
    "in_span",
    "reduce_to_basis",
    "row_echelon",
    "reduced_row_echelon",
    "span_equal",
    "span",
    "solve_xor",
    "nullspace_basis",
    "solve_parity_system",
    "invert",
]


def solve_parity_system(
    equations: Sequence[tuple[int, int]], width: int
) -> int | None:
    """Solve ``parity(mask & x) == target`` over GF(2) for all equations.

    ``equations`` are (coefficient mask, target bit) pairs over ``width``
    unknowns. Returns one solution (free variables zero) or ``None`` when
    the system is inconsistent. Used to *repair* probe masks into the
    kernel of a bank map (fine-grained detection) and by attackers to aim
    aggressor rows under a believed mapping.
    """
    basis: list[tuple[int, int]] = []  # (reduced coefficient mask, target)
    for mask, target in equations:
        if not 0 <= mask < (1 << width):
            raise ValueError(f"equation mask {mask:#x} exceeds width {width}")
        for element_mask, element_target in basis:
            if mask ^ element_mask < mask:
                mask ^= element_mask
                target ^= element_target
        if mask:
            basis.append((mask, target))
            basis.sort(reverse=True)
        elif target:
            return None
    solution = 0
    for mask, target in sorted(basis, key=lambda e: e[0]):
        lead = mask.bit_length() - 1
        lower = mask & ~(1 << lead)
        value = target ^ ((lower & solution).bit_count() & 1)
        solution |= value << lead
    for mask, target in equations:
        if ((mask & solution).bit_count() & 1) != target:
            return None
    return solution


def row_echelon(masks: Iterable[int]) -> list[int]:
    """Return a row-echelon basis (sorted by descending leading bit) of the
    span of ``masks``.

    Standard Gaussian elimination: each basis element has a unique leading
    (highest) bit, and the basis is returned with leading bits strictly
    decreasing.
    """
    basis: list[int] = []
    for mask in masks:
        if mask < 0:
            raise ValueError(f"mask must be non-negative, got {mask}")
        reduced = mask
        for element in basis:
            if reduced ^ element < reduced:
                reduced ^= element
        if reduced:
            basis.append(reduced)
            basis.sort(reverse=True)
    return basis


def rank(masks: Iterable[int]) -> int:
    """Dimension of the GF(2) span of ``masks``."""
    return len(row_echelon(masks))


def is_independent(masks: Sequence[int]) -> bool:
    """True when no mask is a linear combination of the others (and none is
    zero)."""
    return rank(masks) == len(masks)


def in_span(mask: int, basis_masks: Iterable[int]) -> bool:
    """True when ``mask`` is a XOR combination of ``basis_masks``.

    The zero mask is in every span (the empty combination).
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    reduced = mask
    for element in row_echelon(basis_masks):
        if reduced ^ element < reduced:
            reduced ^= element
    return reduced == 0


def reduce_to_basis(masks: Sequence[int]) -> list[int]:
    """Drop masks that are linear combinations of *earlier* masks, keeping
    the original order of the survivors.

    This implements the paper's priority rule: callers sort candidates by
    priority (fewest bits first) and the first independent subset wins.
    E.g. with (14,18), (15,19), (14,15,18,19) the third is redundant.
    """
    kept: list[int] = []
    for mask in masks:
        if mask and not in_span(mask, kept):
            kept.append(mask)
    return kept


def span_equal(masks_a: Iterable[int], masks_b: Iterable[int]) -> bool:
    """True when the two mask sets span the same GF(2) subspace.

    Row-echelon bases with the convention of :func:`row_echelon` are
    canonical once fully reduced, so we fully reduce both and compare.
    """
    return _reduced_row_echelon(masks_a) == _reduced_row_echelon(masks_b)


def span(masks: Sequence[int]) -> list[int]:
    """Every non-zero element of the span of ``masks``.

    Exponential in rank — intended for the small function sets (≤ ~8) that
    appear in bank-hash analysis.
    """
    basis = row_echelon(masks)
    elements: set[int] = set()
    for combo in range(1, 1 << len(basis)):
        value = 0
        for index, element in enumerate(basis):
            if combo >> index & 1:
                value ^= element
        elements.add(value)
    return sorted(elements)


def solve_xor(masks: Sequence[int], target: int) -> list[int] | None:
    """Find a subset of ``masks`` whose XOR equals ``target``, or ``None``.

    Returns the subset as a list of the original masks. Used by tests to
    exhibit the linear combination behind a redundant bank function.
    """
    basis: list[tuple[int, int]] = []  # (reduced mask, combination bitmap)
    for index, mask in enumerate(masks):
        reduced, combo = mask, 1 << index
        for element, element_combo in basis:
            if reduced ^ element < reduced:
                reduced ^= element
                combo ^= element_combo
        if reduced:
            basis.append((reduced, combo))
            basis.sort(reverse=True)
    reduced, combo = target, 0
    for element, element_combo in basis:
        if reduced ^ element < reduced:
            reduced ^= element
            combo ^= element_combo
    if reduced:
        return None
    return [masks[i] for i in range(len(masks)) if combo >> i & 1]


def reduced_row_echelon(masks: Iterable[int]) -> list[int]:
    """Fully reduced (canonical) row-echelon form of the span.

    Each basis element's leading bit appears in no other element, so the
    result is the unique canonical basis of the span (sorted descending).
    """
    basis = row_echelon(masks)
    for i in range(len(basis)):
        for j in range(len(basis)):
            if i != j and basis[i] ^ basis[j] < basis[i]:
                basis[i] ^= basis[j]
    return sorted(basis, reverse=True)


# Backwards-compatible private alias (used before the function was public).
_reduced_row_echelon = reduced_row_echelon


def invert(rows: Sequence[int], width: int | None = None) -> list[int] | None:
    """Invert the square GF(2) matrix whose row ``i`` is the mask ``rows[i]``.

    The matrix maps an input vector ``x`` (a ``width``-bit integer) to the
    output vector whose bit ``i`` is ``parity(rows[i] & x)``. The inverse
    ``inv`` satisfies ``parity(inv[j] & y)`` = bit ``j`` of ``x`` for
    ``y`` the output vector — i.e. applying ``inv`` to an output recovers
    the input. This is the compile step of the blacksmith-style
    ``DRAM_MTX``/``ADDR_MTX`` pair: the forward matrix is assembled from a
    mapping's selectors and bank functions, and its inverse turns a DRAM
    address back into the unique physical address.

    Returns ``None`` when the matrix is singular (not a bijection) —
    callers translating a *validated* mapping treat that as an internal
    error, while callers compiling an unvalidated belief surface it as a
    typed exception.

    Raises:
        ValueError: when the matrix is not square (``len(rows) != width``)
            or a row has bits at or above ``width``.
    """
    if width is None:
        width = len(rows)
    if len(rows) != width:
        raise ValueError(
            f"matrix is not square: {len(rows)} rows over {width} columns"
        )
    limit = 1 << width
    for row in rows:
        if not 0 <= row < limit:
            raise ValueError(f"row {row:#x} exceeds width {width}")
    # Gauss-Jordan over (mask, tracker) pairs: the tracker records which
    # original output rows were folded into each working row, so once the
    # mask side reaches the identity the tracker side *is* the inverse.
    basis: list[tuple[int, int]] = []  # echelon rows, distinct leading bits
    for index in range(width):
        mask, tracker = rows[index], 1 << index
        for basis_mask, basis_tracker in basis:
            if mask ^ basis_mask < mask:
                mask ^= basis_mask
                tracker ^= basis_tracker
        if mask == 0:
            return None  # dependent rows: singular
        basis.append((mask, tracker))
        basis.sort(reverse=True)
    # Jordan step: clear every non-leading bit. Since the rank equals the
    # width, each remaining bit is some other row's lead, so full
    # reduction leaves exactly one bit per row — the identity.
    for i in range(width):
        for j in range(width):
            if i != j and basis[i][0] ^ basis[j][0] < basis[i][0]:
                basis[i] = (
                    basis[i][0] ^ basis[j][0],
                    basis[i][1] ^ basis[j][1],
                )
    inverse = [0] * width
    for mask, tracker in basis:
        inverse[mask.bit_length() - 1] = tracker
    return inverse


def nullspace_basis(rows: Sequence[int], width: int) -> list[int]:
    """Basis of ``{m : parity(m & row) == 0 for every row}`` in GF(2)^width.

    ``rows`` are equation masks over ``width`` variables. This is the core
    of bank-address-function detection: the XOR masks constant across a
    same-bank address pile are exactly the nullspace of the pile's address
    differences.

    Returns one basis vector per free column, i.e. ``width - rank(rows)``
    vectors (all non-zero, mutually independent).
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    limit = 1 << width
    for row in rows:
        if not 0 <= row < limit:
            raise ValueError(f"row {row:#x} exceeds width {width}")
    basis = reduced_row_echelon(rows)
    pivots = {mask.bit_length() - 1 for mask in basis}
    vectors = []
    for free in range(width):
        if free in pivots:
            continue
        vector = 1 << free
        for mask in basis:
            if mask >> free & 1:
                vector |= 1 << (mask.bit_length() - 1)
        vectors.append(vector)
    return vectors
