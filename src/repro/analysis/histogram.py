"""ASCII latency histograms — how every tool author actually debugs the
timing channel.

The first thing anyone reverse-engineering DRAM does is plot a histogram
of pair latencies and look for the two humps. This module renders that
plot in plain text so examples, CLI output and failing-test diagnostics
can show the channel the algorithms are standing on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Histogram", "build_histogram", "render_histogram"]


@dataclass(frozen=True)
class Histogram:
    """A binned latency distribution.

    Attributes:
        edges: bin edges (length = bins + 1).
        counts: per-bin sample counts.
    """

    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def mode_bin(self) -> int:
        """Index of the fullest bin."""
        return int(np.argmax(self.counts))


def build_histogram(
    samples: np.ndarray, bins: int = 40, clip_percentile: float = 99.5
) -> Histogram:
    """Bin a latency sample, clipping the far spike tail for readability.

    Args:
        samples: latency values (ns).
        bins: bin count.
        clip_percentile: samples above this percentile are folded into the
            last bin (preemption spikes would otherwise stretch the axis).
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 2:
        raise ValueError("need at least 2 bins")
    ceiling = float(np.percentile(data, clip_percentile))
    floor = float(data.min())
    if ceiling <= floor:
        ceiling = floor + 1.0
    clipped = np.minimum(data, ceiling)
    counts, edges = np.histogram(clipped, bins=bins, range=(floor, ceiling))
    return Histogram(edges=edges, counts=counts)


def render_histogram(
    histogram: Histogram, width: int = 50, cutoff: float | None = None
) -> str:
    """Render one bar per bin; optionally mark a classifier cutoff line."""
    peak = max(int(histogram.counts.max()), 1)
    lines = []
    cutoff_drawn = cutoff is None
    for index in range(histogram.counts.size):
        low = histogram.edges[index]
        high = histogram.edges[index + 1]
        if not cutoff_drawn and cutoff < high:
            lines.append(f"{'-' * 12}  <- cutoff {cutoff:.1f} ns")
            cutoff_drawn = True
        count = int(histogram.counts[index])
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"{low:7.1f}-{high:7.1f}  {count:>5}  {bar}")
    if not cutoff_drawn:
        lines.append(f"{'-' * 12}  <- cutoff {cutoff:.1f} ns")
    return "\n".join(lines)
