"""Small array utilities shared by the allocator and the tools.

:func:`sorted_unique`: numpy 2.x routes ``np.unique`` for integer
arrays through a hash table (``_unique_hash``) that profiles an order
of magnitude slower than a plain sort on the multi-hundred-thousand-
frame arrays the simulated allocator and DRAMA's pool sampling produce
— and those callers only ever need the classic sorted-unique contract.
Sorting and masking repeats returns exactly what ``np.unique`` returns,
just much faster.

:func:`isin_sorted`: membership against a table the caller already
holds sorted. ``np.isin`` re-sorts its test array on every call, which
the partition/clustering loops pay thousands of times against member
sets that are sorted by construction; a binary search over the sorted
table returns the same mask without the sort.
"""

from __future__ import annotations

import numpy as np

__all__ = ["isin_sorted", "sorted_unique"]


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values of a 1-D array; equals ``np.unique(values)``.

    The equivalence (and therefore that swapping the implementations cannot
    change any simulation output) is pinned by a property test in
    ``tests/analysis/test_bits.py``.
    """
    values = np.asarray(values)
    if values.size <= 1:
        return values.copy()
    ordered = np.sort(values)
    keep = np.empty(ordered.shape, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def isin_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Element-wise membership of ``values`` in an already-sorted ``table``.

    Equals ``np.isin(values, table)`` whenever ``table`` is sorted
    ascending (duplicates allowed) — pinned by a property test in
    ``tests/analysis/test_arrays.py`` — but skips ``np.isin``'s internal
    sort of the table, which dominates on the partition loop's
    thousands of shrinking membership queries.
    """
    values = np.asarray(values)
    table = np.asarray(table)
    if table.size == 0:
        return np.zeros(values.shape, dtype=bool)
    indices = np.searchsorted(table, values)
    np.minimum(indices, table.size - 1, out=indices)
    return table[indices] == values
