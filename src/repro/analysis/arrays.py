"""Small array utilities shared by the allocator and the tools.

Currently one function: :func:`sorted_unique`. numpy 2.x routes
``np.unique`` for integer arrays through a hash table
(``_unique_hash``) that profiles an order of magnitude slower than a
plain sort on the multi-hundred-thousand-frame arrays the simulated
allocator and DRAMA's pool sampling produce — and those callers only
ever need the classic sorted-unique contract. Sorting and masking
repeats returns exactly what ``np.unique`` returns, just much faster.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sorted_unique"]


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values of a 1-D array; equals ``np.unique(values)``.

    The equivalence (and therefore that swapping the implementations cannot
    change any simulation output) is pinned by a property test in
    ``tests/analysis/test_bits.py``.
    """
    values = np.asarray(values)
    if values.size <= 1:
        return values.copy()
    ordered = np.sort(values)
    keep = np.empty(ordered.shape, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]
