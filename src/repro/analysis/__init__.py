"""Analysis primitives: bit manipulation, GF(2) linear algebra, latency stats."""

from repro.analysis.bits import (
    bit,
    bits_of_mask,
    deposit_bits,
    extract_bits,
    format_mask,
    highest_bit,
    iter_submasks,
    lowest_bit,
    mask_of_bits,
    parity,
    parity_array,
    popcount,
)
from repro.analysis.gf2 import (
    in_span,
    is_independent,
    rank,
    reduce_to_basis,
    row_echelon,
    solve_xor,
    span,
    span_equal,
)
from repro.analysis.histogram import Histogram, build_histogram, render_histogram
from repro.analysis.repair import kernel_repair
from repro.analysis.stats import (
    LatencyThreshold,
    calibrate_threshold,
    find_threshold,
    median_of,
    trimmed_mean,
)

__all__ = [
    "bit",
    "bits_of_mask",
    "deposit_bits",
    "extract_bits",
    "format_mask",
    "highest_bit",
    "iter_submasks",
    "lowest_bit",
    "mask_of_bits",
    "parity",
    "parity_array",
    "popcount",
    "in_span",
    "is_independent",
    "rank",
    "reduce_to_basis",
    "row_echelon",
    "solve_xor",
    "span",
    "span_equal",
    "Histogram",
    "build_histogram",
    "render_histogram",
    "kernel_repair",
    "LatencyThreshold",
    "calibrate_threshold",
    "find_threshold",
    "median_of",
    "trimmed_mean",
]
