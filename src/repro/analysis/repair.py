"""Kernel repair: compensate a probe mask against a set of XOR functions.

Several components need the same operation: given a candidate flip mask
and a set of bank address functions, find extra bits to flip so the whole
mask lies in the *kernel* of the bank map (every function's parity
preserved — the two addresses stay in the same bank). The fine-grained
detector repairs its row probes this way, Xiao et al.'s partner search
compensates against its channel templates, and attackers repair aggressor
addresses under their believed mapping.

The search prefers repairs that are *low single bits* (on Intel layouts
low bits are column/bank wires, never rows, so they cannot fake a
row-conflict), then low pairs, then any GF(2) solution.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.bits import parity
from repro.analysis.gf2 import solve_parity_system

__all__ = ["kernel_repair"]


def kernel_repair(
    candidate: int, functions: Sequence[int], available: Sequence[int]
) -> int | None:
    """Find a repair mask over ``available`` bits.

    Returns the smallest-preference mask ``r`` (disjoint from ``candidate``)
    such that ``parity((candidate ^ r) & f)`` is 0 for every function; 0
    when no repair is needed; None when the system is unsolvable.

    Args:
        candidate: the bits the caller wants to flip.
        functions: XOR masks whose parity must be preserved.
        available: bit positions the repair may use (must not intersect
            ``candidate``); tried in ascending order.
    """
    targets = tuple(parity(candidate & f) for f in functions)
    if not any(targets):
        return 0
    positions = sorted(available)
    for position in positions:
        if candidate >> position & 1:
            raise ValueError(
                f"available bit {position} overlaps the candidate mask"
            )
    syndromes = {
        position: tuple(parity((1 << position) & f) for f in functions)
        for position in positions
    }
    # Single low bits first.
    for position in positions:
        if syndromes[position] == targets:
            return 1 << position
    # Then low pairs.
    for index, first in enumerate(positions):
        for second in positions[index + 1 :]:
            combined = tuple(
                a ^ b for a, b in zip(syndromes[first], syndromes[second])
            )
            if combined == targets:
                return (1 << first) | (1 << second)
    # General GF(2) solve as the fallback.
    equations = []
    for row_index in range(len(functions)):
        coefficients = 0
        for column, position in enumerate(positions):
            coefficients |= syndromes[position][row_index] << column
        equations.append((coefficients, targets[row_index]))
    solution = solve_parity_system(equations, len(positions))
    if solution is None:
        return None
    repair = 0
    for column, position in enumerate(positions):
        if solution >> column & 1:
            repair |= 1 << position
    return repair
