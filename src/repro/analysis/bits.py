"""Bit-level utilities used throughout the reverse-engineering pipeline.

DRAM address mappings are expressed as sets of physical-address *bit
positions* (row bits, column bits) and XOR *masks* (bank address functions).
This module provides the scalar and vectorized primitives for manipulating
both representations: parity, popcount, mask/position conversion, and
bit extraction/deposit (software equivalents of the x86 ``pext``/``pdep``
instructions, which hardware memory controllers effectively implement in
wiring).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "bit",
    "bits_of_mask",
    "mask_of_bits",
    "popcount",
    "parity",
    "parity_array",
    "extract_bits",
    "deposit_bits",
    "lowest_bit",
    "highest_bit",
    "iter_submasks",
    "format_mask",
]


def bit(position: int) -> int:
    """Return an integer with only ``position`` set.

    >>> bit(6)
    64
    """
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return 1 << position


def bits_of_mask(mask: int) -> tuple[int, ...]:
    """Return the sorted bit positions set in ``mask``.

    >>> bits_of_mask(0b10010)
    (1, 4)
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    positions = []
    position = 0
    while mask:
        if mask & 1:
            positions.append(position)
        mask >>= 1
        position += 1
    return tuple(positions)


def mask_of_bits(positions: Iterable[int]) -> int:
    """Return the mask with all ``positions`` set.

    >>> mask_of_bits([1, 4])
    18
    """
    mask = 0
    for position in positions:
        mask |= bit(position)
    return mask


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError(f"popcount of negative value {value}")
    return value.bit_count()


def parity(value: int) -> int:
    """XOR of all bits of ``value`` (0 or 1)."""
    if value < 0:
        raise ValueError(f"parity of negative value {value}")
    return value.bit_count() & 1


def parity_array(values: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized ``parity(value & mask)`` over a uint64 array.

    This is the hot primitive of the simulator: evaluating one bank address
    function over a pool of physical addresses.
    """
    masked = np.bitwise_and(values.astype(np.uint64), np.uint64(mask))
    return (np.bitwise_count(masked) & np.uint64(1)).astype(np.uint8)


def extract_bits(value: int, positions: Sequence[int]) -> int:
    """Gather the bits of ``value`` at ``positions`` into a compact integer.

    ``positions[0]`` becomes bit 0 of the result, ``positions[1]`` bit 1, and
    so on — the software analogue of ``pext``. Memory controllers use exactly
    this operation to form row and column indices from scattered physical
    address bits.

    >>> extract_bits(0b101000, [3, 5])
    3
    """
    result = 0
    for index, position in enumerate(positions):
        result |= ((value >> position) & 1) << index
    return result


def deposit_bits(value: int, positions: Sequence[int]) -> int:
    """Scatter the low bits of ``value`` to ``positions`` — inverse of
    :func:`extract_bits`.

    >>> deposit_bits(0b11, [3, 5])
    40
    """
    result = 0
    for index, position in enumerate(positions):
        result |= ((value >> index) & 1) << position
    return result


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit of ``mask``.

    >>> lowest_bit(0b10100)
    2
    """
    if mask <= 0:
        raise ValueError(f"mask must be positive, got {mask}")
    return (mask & -mask).bit_length() - 1


def highest_bit(mask: int) -> int:
    """Position of the highest set bit of ``mask``.

    >>> highest_bit(0b10100)
    4
    """
    if mask <= 0:
        raise ValueError(f"mask must be positive, got {mask}")
    return mask.bit_length() - 1


def iter_submasks(mask: int):
    """Yield every non-empty submask of ``mask`` in increasing order.

    Uses the standard ``(sub - mask) & mask`` enumeration trick; the number of
    submasks is ``2**popcount(mask) - 1``.
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    sub = mask & -mask if mask else 0
    while sub:
        yield sub
        if sub == mask:
            return
        sub = (sub - mask) & mask


def format_mask(mask: int) -> str:
    """Render an XOR mask the way the paper writes bank address functions.

    >>> format_mask(mask_of_bits([14, 17]))
    '(14, 17)'
    """
    return "(" + ", ".join(str(b) for b in bits_of_mask(mask)) + ")"
