"""Bit-level utilities used throughout the reverse-engineering pipeline.

DRAM address mappings are expressed as sets of physical-address *bit
positions* (row bits, column bits) and XOR *masks* (bank address functions).
This module provides the scalar and vectorized primitives for manipulating
both representations: parity, popcount, mask/position conversion, and
bit extraction/deposit (software equivalents of the x86 ``pext``/``pdep``
instructions, which hardware memory controllers effectively implement in
wiring).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "bit",
    "bits_of_mask",
    "mask_of_bits",
    "popcount",
    "parity",
    "parity_array",
    "parity_table_16",
    "packed_parity_tables",
    "extract_tables",
    "gather_xor",
    "extract_bits",
    "deposit_bits",
    "lowest_bit",
    "highest_bit",
    "iter_submasks",
    "format_mask",
]

SLICE_BITS = 16
SLICE_MASK = np.uint64((1 << SLICE_BITS) - 1)


def bit(position: int) -> int:
    """Return an integer with only ``position`` set.

    >>> bit(6)
    64
    """
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return 1 << position


def bits_of_mask(mask: int) -> tuple[int, ...]:
    """Return the sorted bit positions set in ``mask``.

    >>> bits_of_mask(0b10010)
    (1, 4)
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    positions = []
    position = 0
    while mask:
        if mask & 1:
            positions.append(position)
        mask >>= 1
        position += 1
    return tuple(positions)


def mask_of_bits(positions: Iterable[int]) -> int:
    """Return the mask with all ``positions`` set.

    >>> mask_of_bits([1, 4])
    18
    """
    mask = 0
    for position in positions:
        mask |= bit(position)
    return mask


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError(f"popcount of negative value {value}")
    return value.bit_count()


def parity(value: int) -> int:
    """XOR of all bits of ``value`` (0 or 1)."""
    if value < 0:
        raise ValueError(f"parity of negative value {value}")
    return value.bit_count() & 1


def parity_array(values: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized ``parity(value & mask)`` over a uint64 array.

    This is the hot primitive of the simulator: evaluating one bank address
    function over a pool of physical addresses. ``np.bitwise_count`` returns
    uint8, so keeping the final AND in uint8 avoids the uint64 round-trip
    (one widening copy plus one narrowing copy per call) the naive spelling
    pays.
    """
    masked = np.bitwise_and(np.asarray(values, dtype=np.uint64), np.uint64(mask))
    return np.bitwise_count(masked) & np.uint8(1)


_PARITY16: np.ndarray | None = None


def parity_table_16() -> np.ndarray:
    """The shared 65536-entry uint8 table of 16-bit word parities.

    Built once per process (64 KiB, stays in L2); every packed decode table
    derives from it.
    """
    global _PARITY16
    if _PARITY16 is None:
        folded = np.arange(1 << SLICE_BITS, dtype=np.uint16)
        for shift in (8, 4, 2, 1):
            folded ^= folded >> np.uint16(shift)
        _PARITY16 = (folded & np.uint16(1)).astype(np.uint8)
    return _PARITY16


def _packed_dtype(count: int):
    if count <= 8:
        return np.uint8
    if count <= 16:
        return np.uint16
    if count <= 32:
        return np.uint32
    return np.uint64


def packed_parity_tables(
    masks: Sequence[int],
) -> tuple[tuple[np.uint64, np.ndarray], ...]:
    """Per-16-bit-slice lookup tables evaluating *all* ``masks`` at once.

    For address slice ``s`` (bits ``[16s, 16s+16)``) the table entry for
    slice value ``v`` packs the parity contribution of ``v`` to every mask:
    bit ``i`` of ``table[v]`` is ``parity(v & (masks[i] >> 16s))``. A full
    decode is then one gather per touched slice XORed together — constant
    work regardless of how many masks there are. Slices no mask touches are
    omitted entirely.

    Returns tuples of ``(shift, table)`` where ``shift`` is the uint64
    right-shift selecting the slice.
    """
    if not masks:
        return ()
    par16 = parity_table_16()
    values = np.arange(1 << SLICE_BITS, dtype=np.intp)
    dtype = _packed_dtype(len(masks))
    tables: list[tuple[np.uint64, np.ndarray]] = []
    top = max(mask.bit_length() for mask in masks)
    for index_slice in range((top + SLICE_BITS - 1) // SLICE_BITS):
        table = np.zeros(1 << SLICE_BITS, dtype=dtype)
        touched = False
        for position, mask in enumerate(masks):
            slice_mask = (mask >> (SLICE_BITS * index_slice)) & int(SLICE_MASK)
            if not slice_mask:
                continue
            touched = True
            table ^= par16[values & slice_mask].astype(dtype) << dtype(position)
        if touched:
            tables.append((np.uint64(SLICE_BITS * index_slice), table))
    return tuple(tables)


def extract_tables(
    positions: Sequence[int],
) -> tuple[tuple[np.uint64, np.ndarray], ...]:
    """Per-16-bit-slice lookup tables for :func:`extract_bits` (pext).

    ``table[v]`` holds the compacted output bits contributed by slice value
    ``v``; distinct slices contribute disjoint output bits, so a full
    extraction is the XOR (equivalently OR) of one gather per touched slice.
    """
    if not positions:
        return ()
    values = np.arange(1 << SLICE_BITS, dtype=np.uint16)
    tables: list[tuple[np.uint64, np.ndarray]] = []
    top = max(positions) + 1
    for index_slice in range((top + SLICE_BITS - 1) // SLICE_BITS):
        low = SLICE_BITS * index_slice
        table = np.zeros(1 << SLICE_BITS, dtype=np.uint64)
        touched = False
        for output_bit, position in enumerate(positions):
            if not low <= position < low + SLICE_BITS:
                continue
            touched = True
            table |= ((values >> np.uint16(position - low)) & np.uint16(1)).astype(
                np.uint64
            ) << np.uint64(output_bit)
        if touched:
            tables.append((np.uint64(low), table))
    return tuple(tables)


def gather_xor(
    addrs: np.ndarray, tables: tuple[tuple[np.uint64, np.ndarray], ...]
) -> np.ndarray | None:
    """XOR-combine the per-slice table gathers for ``addrs`` (uint64).

    Returns ``None`` when ``tables`` is empty (no mask touches any bit) so
    callers can substitute an appropriately-typed zero array.
    """
    out = None
    for shift, table in tables:
        indices = ((addrs >> shift) & SLICE_MASK).astype(np.intp)
        contribution = table[indices]
        if out is None:
            out = contribution
        else:
            out ^= contribution
    return out


def extract_bits(value: int, positions: Sequence[int]) -> int:
    """Gather the bits of ``value`` at ``positions`` into a compact integer.

    ``positions[0]`` becomes bit 0 of the result, ``positions[1]`` bit 1, and
    so on — the software analogue of ``pext``. Memory controllers use exactly
    this operation to form row and column indices from scattered physical
    address bits.

    >>> extract_bits(0b101000, [3, 5])
    3
    """
    result = 0
    for index, position in enumerate(positions):
        result |= ((value >> position) & 1) << index
    return result


def deposit_bits(value: int, positions: Sequence[int]) -> int:
    """Scatter the low bits of ``value`` to ``positions`` — inverse of
    :func:`extract_bits`.

    >>> deposit_bits(0b11, [3, 5])
    40
    """
    result = 0
    for index, position in enumerate(positions):
        result |= ((value >> index) & 1) << position
    return result


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit of ``mask``.

    >>> lowest_bit(0b10100)
    2
    """
    if mask <= 0:
        raise ValueError(f"mask must be positive, got {mask}")
    return (mask & -mask).bit_length() - 1


def highest_bit(mask: int) -> int:
    """Position of the highest set bit of ``mask``.

    >>> highest_bit(0b10100)
    4
    """
    if mask <= 0:
        raise ValueError(f"mask must be positive, got {mask}")
    return mask.bit_length() - 1


def iter_submasks(mask: int):
    """Yield every non-empty submask of ``mask`` in increasing order.

    Uses the standard ``(sub - mask) & mask`` enumeration trick; the number of
    submasks is ``2**popcount(mask) - 1``.
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    sub = mask & -mask if mask else 0
    while sub:
        yield sub
        if sub == mask:
            return
        sub = (sub - mask) & mask


def format_mask(mask: int) -> str:
    """Render an XOR mask the way the paper writes bank address functions.

    >>> format_mask(mask_of_bits([14, 17]))
    '(14, 17)'
    """
    return "(" + ", ".join(str(b) for b in bits_of_mask(mask)) + ")"
