"""JSONL trace format: export, render, load.

One trace file describes one traced command. Line 1 is a header object::

    {"type": "header", "format": "dramdig-trace", "version": 1, ...}

followed by one ``{"type": "span", ...}`` object per span in id order
(ids are creation order, so the file reads top-down like the run ran)
and a single trailing ``{"type": "metrics", "counters": ..., "histograms":
...}`` object with the run's merged metric totals.

Files are written through :func:`repro.ioutil.atomic_write`, so a trace
is either absent or complete — a consumer never sees a torn file, even
when the writing process is killed mid-export. Loading is strict about
the header (wrong format/version fails loudly) but tolerant of span
field evolution via :meth:`SpanRecord.from_json` defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write
from repro.obs.tracing import SpanRecord, Tracer

__all__ = ["TRACE_FORMAT", "TRACE_VERSION", "TraceFile", "export_trace",
           "load_trace", "render_trace"]

TRACE_FORMAT = "dramdig-trace"
TRACE_VERSION = 1


@dataclass
class TraceFile:
    """A loaded trace: header metadata, spans in id order, metric totals."""

    header: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def counters(self) -> dict:
        return self.metrics.get("counters", {})

    @property
    def histograms(self) -> dict:
        return self.metrics.get("histograms", {})


def render_trace(tracer: Tracer, meta: dict | None = None) -> str:
    """Serialise a tracer's spans and metrics to JSONL text.

    Spans still on the tracer's live stack — an export fired while the
    run was mid-flight, e.g. the CLI salvaging a trace after an
    interrupt — are written with status ``open`` so the summary can
    render them as ``UNCLOSED`` partial accounting instead of mistaking
    a zero-duration span for a completed one.
    """
    header = {"type": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION}
    if meta:
        header.update(meta)
    open_ids = {record.span_id for record in getattr(tracer, "_stack", ())}
    lines = [json.dumps(header, sort_keys=True)]
    for record in sorted(tracer.spans, key=lambda span: span.span_id):
        serialized = record.to_json()
        if record.span_id in open_ids and serialized["status"] == "ok":
            serialized["status"] = "open"
        lines.append(json.dumps(serialized, sort_keys=True))
    metrics = {"type": "metrics"}
    metrics.update(tracer.metrics.snapshot())
    lines.append(json.dumps(metrics, sort_keys=True))
    return "\n".join(lines) + "\n"


def export_trace(
    path: str | Path, tracer: Tracer, meta: dict | None = None
) -> None:
    """Atomically write ``tracer``'s trace to ``path`` as JSONL."""
    atomic_write(path, render_trace(tracer, meta))


def load_trace(path: str | Path) -> TraceFile:
    """Parse a JSONL trace written by :func:`export_trace`.

    Raises:
        ValueError: when the file is empty, is not a dramdig trace, or
            declares an unsupported version.
    """
    trace = TraceFile()
    first = True
    for line_number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_number}: not valid JSON: {error}"
            ) from error
        if first:
            if record.get("format") != TRACE_FORMAT:
                raise ValueError(
                    f"{path}: not a {TRACE_FORMAT} file "
                    f"(format={record.get('format')!r})"
                )
            if record.get("version") != TRACE_VERSION:
                raise ValueError(
                    f"{path}: unsupported trace version {record.get('version')!r} "
                    f"(expected {TRACE_VERSION})"
                )
            trace.header = record
            first = False
            continue
        kind = record.get("type")
        if kind == "span":
            trace.spans.append(SpanRecord.from_json(record))
        elif kind == "metrics":
            trace.metrics = {
                "counters": record.get("counters", {}),
                "histograms": record.get("histograms", {}),
            }
    if first:
        raise ValueError(f"{path}: empty trace file")
    trace.spans.sort(key=lambda span: span.span_id)
    return trace
