"""Trace rendering and consistency checking (``dramdig trace summary``).

Renders a loaded trace as a text flamegraph — the span tree indented by
depth, each line carrying simulated seconds, wall seconds and the span's
measurement attribution — followed by a metrics table. The same module
is CI's parse/consistency gate: :func:`validate_trace` re-derives the
structural invariants a well-formed trace must satisfy (unique ids,
resolvable parents, non-negative simulated durations) and the accounting
identity the paper's cost claims rest on — a parent span's measurement
count equals the sum of its children's, all the way from the pipeline
phases up through retry attempts to each run's root.
"""

from __future__ import annotations

from repro.obs.export import TraceFile
from repro.obs.tracing import SpanRecord

__all__ = ["render_summary", "validate_trace"]


def _children_index(spans: list[SpanRecord]) -> dict[int | None, list[SpanRecord]]:
    children: dict[int | None, list[SpanRecord]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.span_id)
    return children


def validate_trace(trace: TraceFile, strict: bool = False) -> list[str]:
    """Structural and accounting checks; returns problem descriptions.

    An empty list means the trace is internally consistent. Checked:

    * span ids are unique and every ``parent`` id refers to a span;
    * simulated durations are non-negative where both bounds exist;
    * **measurement telescoping**: wherever a span carries a numeric
      ``measurements`` attribute *and* has children that do, the
      children's measurements sum exactly to the parent's. This is the
      per-phase accounting identity: phases sum to their attempt,
      attempts sum to their run.

    By default the checks are lenient toward traces salvaged from
    interrupted runs: spans still open at export time (status ``open``)
    and spans whose parent never made it into the file are rendered with
    partial accounting instead of flagged, and a telescoping parent is
    skipped when it (or any measured child) is still open — an
    in-flight phase hasn't finished counting. ``strict=True`` restores
    the pre-hardening behaviour, treating open and orphaned spans as
    problems; CI's consistency gate runs strict, because the traces it
    checks come from runs that completed.
    """
    problems: list[str] = []
    by_id: dict[int, SpanRecord] = {}
    for span in trace.spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id} ({span.path})")
        by_id[span.span_id] = span
    for span in trace.spans:
        if span.parent_id is not None and span.parent_id not in by_id and strict:
            problems.append(
                f"span {span.span_id} ({span.path}) has unknown parent "
                f"{span.parent_id}"
            )
        if span.status == "open" and strict:
            problems.append(
                f"span {span.span_id} ({span.path}) was never closed"
            )
        sim_ns = span.sim_ns
        if sim_ns is not None and sim_ns < 0:
            problems.append(
                f"span {span.span_id} ({span.path}) has negative simulated "
                f"duration {sim_ns}"
            )

    children = _children_index(trace.spans)
    for span in trace.spans:
        own = span.attrs.get("measurements")
        if not isinstance(own, (int, float)):
            continue
        counted = [
            child
            for child in children.get(span.span_id, [])
            if isinstance(child.attrs.get("measurements"), (int, float))
        ]
        if not counted:
            continue
        if not strict and (
            span.status == "open"
            or any(child.status == "open" for child in counted)
        ):
            continue
        total = sum(child.attrs["measurements"] for child in counted)
        if total != own:
            problems.append(
                f"span {span.span_id} ({span.path}) claims {own} measurements "
                f"but its children sum to {total}"
            )
    return problems


def _format_span(span: SpanRecord, depth: int, width: int) -> str:
    label = "  " * depth + span.name
    sim_ns = span.sim_ns
    sim = f"{sim_ns / 1e9:10.2f}" if sim_ns is not None else " " * 9 + "-"
    wall = f"{span.wall_s:9.3f}"
    extras = []
    if span.status == "open":
        # A span the run never got to close (killed/interrupted mid-way):
        # its timings are partial, not wrong.
        extras.append("UNCLOSED")
    elif span.status != "ok":
        extras.append(span.status.upper())
    measurements = span.attrs.get("measurements")
    if isinstance(measurements, (int, float)):
        extras.append(f"measurements={int(measurements)}")
    for key in sorted(span.attrs):
        if key in ("measurements", "error"):
            continue
        extras.append(f"{key}={span.attrs[key]}")
    if "error" in span.attrs:
        extras.append(f"error={span.attrs['error']}")
    suffix = ("  " + " ".join(extras)) if extras else ""
    return f"{label:<{width}}{sim}{wall}{suffix}"


def render_summary(trace: TraceFile) -> str:
    """The span-tree flamegraph plus the metrics table, as plain text."""
    lines: list[str] = []
    header = trace.header
    described = ", ".join(
        f"{key}={header[key]}"
        for key in sorted(header)
        if key not in ("type", "format", "version")
    )
    lines.append(f"trace: {header.get('format')} v{header.get('version')}"
                 + (f" ({described})" if described else ""))
    lines.append("")

    if trace.spans:
        children = _children_index(trace.spans)
        width = max(
            (2 * _depth(span, trace) + len(span.name) for span in trace.spans),
            default=0,
        )
        width = max(width + 2, 28)
        lines.append(f"{'span':<{width}}{'sim-s':>10}{'wall-s':>9}")

        def walk(span: SpanRecord, depth: int) -> None:
            lines.append(_format_span(span, depth, width))
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in children.get(None, []):
            walk(root, 0)
        # Orphans — spans whose parent never reached the file (a run
        # killed between a child's export and its parent's) — still
        # deserve rendering: walk them as extra roots, flagged.
        known = {span.span_id for span in trace.spans}
        for span in trace.spans:
            if span.parent_id is not None and span.parent_id not in known:
                lines.append(
                    f"(orphan: parent {span.parent_id} missing from trace)"
                )
                walk(span, 0)
    else:
        lines.append("(no spans)")

    counters = trace.counters
    histograms = trace.histograms
    if counters or histograms:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(counters):
            lines.append(f"  {name:<42}{counters[name]:>12}")
        for name in sorted(histograms):
            stats = histograms[name]
            count = stats.get("count", 0)
            mean = stats.get("total", 0.0) / count if count else float("nan")
            quantiles = "".join(
                f" {key}={stats[key]:.1f}"
                for key in ("p50", "p95", "p99")
                if isinstance(stats.get(key), (int, float))
            )
            lines.append(
                f"  {name:<42}{count:>12}  "
                f"mean={mean:.1f} min={stats.get('min')} max={stats.get('max')}"
                f"{quantiles}"
            )
    return "\n".join(lines)


def _depth(span: SpanRecord, trace: TraceFile) -> int:
    # Depth from the recorded path: paths are slash-joined from the root,
    # which survives merging (ids are rewritten, paths are re-prefixed).
    return span.path.count("/")
