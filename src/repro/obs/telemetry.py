"""Live telemetry: an append-only JSONL event stream for in-flight runs.

PR 4's tracing answers *what happened* after a run finishes; the
telemetry bus answers *what is happening now*. While a grid, fleet wave
or rowhammer campaign is in flight, the supervisor and its worker
processes append one JSON object per event — cell completions with
done/failed/cached tallies and an ETA, wave folds, campaign trial
yields, pipeline phase completions — to a single stream file. Appends go
through :func:`repro.ioutil.atomic_append` (one ``O_APPEND`` write per
line), so lines from concurrently finishing workers never shear each
other and a tail reader only ever sees whole events. ``dramdig obs
tail`` renders the stream live; the determinism tests compare streams
through :func:`canonical_events`.

Activation model — the same process-wide one-global discipline
:mod:`repro.obs.tracing` pinned:

* :func:`activate_bus` installs a :class:`TelemetryBus` for a dynamic
  extent (the CLI does this when ``--telemetry PATH`` is given);
* :func:`emit` is the module-level hook instrumented code calls; with no
  active bus it is one global load plus an ``is None`` test — no dict,
  no JSON, no I/O. Telemetry off must cost nothing, because the hooks
  sit inside the supervisor's per-cell settle loop and the campaign's
  per-trial path;
* grid workers get the stream path through the reserved
  ``_telemetry_path`` payload key (``_``-prefixed, so journal
  fingerprints ignore it — a run with telemetry on resumes a journal
  written with it off, and vice versa).

Event schema: every event carries ``kind`` plus bookkeeping fields
(``seq`` per-process counter, ``wall`` epoch seconds, ``pid``,
``source``). The bookkeeping fields are inherently nondeterministic and
are stripped by :func:`canonical_events`, as are the derived progress
fields (``eta_s``, ``wall_s``, ``done`` — completion *order* differs
between ``--jobs 1`` and ``--jobs N`` even though the completion *set*
does not).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.ioutil import atomic_append

__all__ = [
    "TELEMETRY_PATH_KEY",
    "TelemetryBus",
    "VOLATILE_FIELDS",
    "activate_bus",
    "canonical_events",
    "current_bus",
    "emit",
    "estimate_eta_s",
    "load_events",
    "render_event",
    "telemetry_cells",
]

# Reserved grid-cell payload key carrying the stream path into worker
# processes. Underscore-prefixed: fingerprint_payload ignores it, and
# execute_cell strips it before the task function sees the payload.
TELEMETRY_PATH_KEY = "_telemetry_path"

# Fields stripped before determinism comparisons. ``wall``/``pid``/
# ``seq``/``source`` are bookkeeping; ``wall_s``/``eta_s`` are derived
# from wall time; ``done``/``failed``/``cached`` are running progress
# tallies whose value at any given event depends on worker completion
# order even when the completion *set* is identical.
VOLATILE_FIELDS = frozenset(
    {"seq", "wall", "pid", "source", "wall_s", "eta_s", "done", "failed", "cached"}
)


class TelemetryBus:
    """Appends events to one JSONL stream file.

    A bus is cheap to construct and holds no file handle between events:
    each :meth:`emit` opens, appends one line, and closes. That is what
    makes the stream safe to share between the parent and any number of
    worker processes — there is no buffered state to lose on SIGKILL,
    and every line that reached the file is complete.
    """

    def __init__(self, path: str | Path, source: str = "main") -> None:
        self.path = Path(path)
        self.source = source
        self._seq = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one event and return the record that was written."""
        self._seq += 1
        record = {
            "kind": kind,
            "seq": self._seq,
            "wall": time.time(),
            "pid": os.getpid(),
            "source": self.source,
        }
        record.update(fields)
        atomic_append(self.path, json.dumps(record, sort_keys=True))
        return record


# Process-wide activation state, mirroring tracing._ACTIVE: plain module
# global so the off-path cost of an emit() hook is one load + is-None.
_BUS: TelemetryBus | None = None


def current_bus() -> TelemetryBus | None:
    """The active bus, or None when telemetry is off."""
    return _BUS


@contextmanager
def activate_bus(bus: TelemetryBus):
    """Install ``bus`` as the process-wide telemetry sink for the extent."""
    global _BUS
    previous = _BUS
    _BUS = bus
    try:
        yield bus
    finally:
        _BUS = previous


def emit(kind: str, **fields) -> None:
    """Emit one event on the active bus (no-op when telemetry is off)."""
    bus = _BUS
    if bus is not None:
        bus.emit(kind, **fields)


def telemetry_cells(cells, path: str | Path) -> list:
    """Copies of grid cells with the telemetry stream path injected.

    The injected key is reserved (``_``-prefixed): stripped by
    :func:`~repro.parallel.grid.execute_cell` before the task function
    runs, and excluded from checkpoint-journal fingerprints — a run with
    telemetry on shares journal entries with one where it is off.
    """
    destination = str(path)
    out = []
    for cell in cells:
        payload = dict(cell.payload)
        payload[TELEMETRY_PATH_KEY] = destination
        out.append(dataclasses.replace(cell, payload=payload))
    return out


def estimate_eta_s(elapsed_s: float, done: int, total: int) -> float | None:
    """Remaining wall seconds, assuming completed cells predict the rest.

    The estimate is a straight rate extrapolation: elapsed/done times
    the remaining count. It is deliberately naive — journal-cached cells
    settle near-instantly and batched cells settle in bursts, so early
    ETAs on a resumed or batched grid can be far off until enough
    *executed* cells have landed (documented in docs/observability.md).
    """
    if done <= 0 or total <= done:
        return 0.0 if total <= done else None
    return (elapsed_s / done) * (total - done)


def load_events(path: str | Path) -> list[dict]:
    """Parse a telemetry stream, tolerating a torn final line.

    A reader racing the writers (``obs tail``, the kill/resume smoke
    gate) may catch the file between the open and the append of the very
    first event, or — on filesystems without atomic ``O_APPEND``
    semantics — a sheared line. Unparseable lines are skipped rather
    than fatal: the stream is advisory, and a missing heartbeat must
    never crash the monitor watching for missing heartbeats.
    """
    source = Path(path)
    if not source.exists():
        return []
    events: list[dict] = []
    for line in source.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "kind" in record:
            events.append(record)
    return events


def canonical_events(events: list[dict], fold_cached: bool = False) -> list[dict]:
    """Deterministic view of a stream for cross-run comparison.

    Strips the :data:`VOLATILE_FIELDS` and sorts the remainder, so two
    streams compare equal exactly when the same *set* of events was
    emitted — regardless of worker completion order, process ids or
    wall-clock timing. With ``fold_cached=True`` a ``cached`` cell
    status is rewritten to ``ok``: a journal-resumed run reports resumed
    cells as cached where a from-scratch run reports them as executed,
    and for stream-equivalence purposes both mean "this cell's result
    was delivered".
    """
    canonical = []
    for event in events:
        record = {
            key: value
            for key, value in event.items()
            if key not in VOLATILE_FIELDS
        }
        if fold_cached and record.get("status") == "cached":
            record["status"] = "ok"
        canonical.append(record)
    canonical.sort(key=lambda record: json.dumps(record, sort_keys=True))
    return canonical


def render_event(event: dict) -> str:
    """One human-readable line for ``dramdig obs tail``."""
    kind = event.get("kind", "?")
    clock = time.strftime("%H:%M:%S", time.localtime(event.get("wall", 0)))
    source = event.get("source", "?")
    if kind == "cell":
        done = event.get("done")
        total = event.get("total")
        eta = event.get("eta_s")
        eta_text = f" eta={eta:.1f}s" if isinstance(eta, (int, float)) else ""
        return (
            f"{clock} [{source}] cell {event.get('cell', '?')} "
            f"{event.get('status', '?')} ({done}/{total}"
            f" failed={event.get('failed', 0)}"
            f" cached={event.get('cached', 0)}){eta_text}"
        )
    if kind == "wave":
        return (
            f"{clock} [{source}] wave {event.get('wave', '?')}"
            f"/{event.get('waves', '?')} folded:"
            f" confirmed={event.get('confirmed', 0)}"
            f" fallback={event.get('fallback', 0)}"
            f" cold={event.get('cold', 0)}"
            f" failed={event.get('failed_machines', 0)}"
            f" store={event.get('store_entries', 0)}"
        )
    if kind == "trial":
        return (
            f"{clock} [{source}] trial {event.get('trial', '?')}"
            f" flips={event.get('flips', 0)}"
            f" tests={event.get('tests', 0)}"
        )
    if kind == "phase":
        sim_ns = event.get("sim_ns")
        sim = f" sim={sim_ns / 1e9:.2f}s" if isinstance(sim_ns, (int, float)) else ""
        return (
            f"{clock} [{source}] phase {event.get('phase', '?')}"
            f" measurements={event.get('measurements', 0)}{sim}"
        )
    detail = {
        key: value
        for key, value in sorted(event.items())
        if key not in ("kind", "seq", "wall", "pid", "source")
    }
    text = " ".join(f"{key}={value}" for key, value in detail.items())
    return f"{clock} [{source}] {kind}" + (f" {text}" if text else "")
