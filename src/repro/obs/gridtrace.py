"""Cross-process trace capture and merge for the evaluation grid.

A traced grid run has two halves:

* **cell side** — :func:`repro.parallel.grid.execute_cell` finds the
  reserved ``_trace_*`` payload keys this module injected, runs the cell
  under its own fresh :class:`~repro.obs.tracing.Tracer` (one root span
  per cell), and writes the cell's spans + metrics to a private JSONL
  file via :func:`~repro.ioutil.atomic_write`. This works identically
  in-process (``--jobs 1``) and in a spawned worker, because
  :func:`~repro.obs.tracing.activate` isolates the cell's span stack
  either way — the merged trace cannot depend on where a cell ran.
* **parent side** — after the grid completes, :func:`stitch_cell_traces`
  walks the cells *in submission order*, grafting each cell file under
  the grid span (ids re-allocated, paths re-prefixed, metrics folded
  in). A cell with no file is either a journal hit (``--resume``) —
  recorded as a ``cached`` span, zero re-execution — or a
  :class:`~repro.parallel.supervisor.CellFailure`, recorded as a
  ``failed`` span carrying the failure's reason and attempt count.

The reserved keys start with ``_`` and are therefore excluded from
:func:`~repro.parallel.grid.fingerprint_cell`: a traced run and an
untraced run share checkpoint-journal fingerprints, so tracing can be
turned on for a resumed run (or off for a fresh one) without
invalidating the journal.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from pathlib import Path

from repro.obs.export import export_trace, load_trace
from repro.obs.tracing import SpanRecord, Tracer, activate

__all__ = [
    "TRACE_DIR_KEY",
    "TRACE_LABEL_KEY",
    "TRACE_NAME_KEY",
    "cell_label",
    "run_cell_traced",
    "stitch_cell_traces",
    "traced_cells",
]

TRACE_DIR_KEY = "_trace_dir"
TRACE_NAME_KEY = "_trace_name"
TRACE_LABEL_KEY = "_trace_label"


def cell_label(payload: dict, index: int) -> str:
    """Display label for one cell: its payload ``name``, or its index."""
    name = payload.get("name")
    return str(name) if name is not None else f"cell#{index}"


def traced_cells(cells: Sequence, trace_dir: str | Path) -> list:
    """Copies of ``cells`` with per-cell trace destinations injected.

    The injected keys are reserved (``_``-prefixed): stripped before the
    worker function is called and ignored by cell fingerprinting.
    """
    directory = str(trace_dir)
    out = []
    for index, cell in enumerate(cells):
        payload = dict(cell.payload)
        payload[TRACE_DIR_KEY] = directory
        payload[TRACE_NAME_KEY] = f"cell-{index:04d}"
        payload[TRACE_LABEL_KEY] = cell_label(cell.payload, index)
        out.append(dataclasses.replace(cell, payload=payload))
    return out


def run_cell_traced(function, kwargs: dict, payload: dict):
    """Execute one cell under its own tracer; write its trace on success.

    The file is written only when the cell completes: a failed attempt
    leaves no partial trace behind (a supervised retry that later
    succeeds writes the successful attempt; a cell that never succeeds
    is represented by the parent as a ``failed`` span instead).
    """
    tracer = Tracer()
    label = payload.get(TRACE_LABEL_KEY, kwargs.get("name", "cell"))
    with activate(tracer):
        with tracer.span(f"cell:{label}") as scope:
            value = function(**kwargs)
            scope.set("task_ok", True)
    destination = Path(payload[TRACE_DIR_KEY]) / f"{payload[TRACE_NAME_KEY]}.jsonl"
    export_trace(destination, tracer, meta={"cell": label})
    return value


def _graft(tracer: Tracer, parent: SpanRecord, spans: list[SpanRecord]) -> None:
    """Re-id and re-parent a cell's spans under the parent grid span."""
    id_map: dict[int, int] = {}
    for span in sorted(spans, key=lambda record: record.span_id):
        id_map[span.span_id] = tracer.next_id()
    for span in sorted(spans, key=lambda record: record.span_id):
        tracer.adopt(
            dataclasses.replace(
                span,
                span_id=id_map[span.span_id],
                parent_id=(
                    id_map[span.parent_id]
                    if span.parent_id is not None
                    else parent.span_id
                ),
                path=f"{parent.path}/{span.path}",
                attrs=dict(span.attrs),
            )
        )


def stitch_cell_traces(
    tracer: Tracer,
    grid_span: SpanRecord,
    cells: Sequence,
    results: Sequence,
    trace_dir: str | Path,
) -> dict:
    """Merge per-cell trace files into the parent tracer, in cell order.

    Returns ``{"executed": n, "cached": n, "failed": n}``. Cells are
    classified by evidence: a trace file means the cell executed (at
    least once) to completion; no file plus a
    :class:`~repro.parallel.supervisor.CellFailure` result slot means it
    failed; no file plus a real result means the checkpoint journal
    supplied the value without re-execution (``cached``).
    """
    from repro.parallel.supervisor import CellFailure

    tally = {"executed": 0, "cached": 0, "failed": 0}
    for index, cell in enumerate(cells):
        label = cell_label(cell.payload, index)
        source = Path(trace_dir) / f"cell-{index:04d}.jsonl"
        if source.exists():
            cell_trace = load_trace(source)
            _graft(tracer, grid_span, cell_trace.spans)
            tracer.metrics.merge_snapshot(cell_trace.metrics)
            tally["executed"] += 1
            continue
        result = results[index] if index < len(results) else None
        if isinstance(result, CellFailure):
            status = "failed"
            attrs = {"reason": result.reason, "attempts": result.attempts}
            if result.detail:
                attrs["detail"] = result.detail
        else:
            status = "cached"
            attrs = {}
        name = f"cell:{label}"
        tracer.adopt(
            SpanRecord(
                span_id=tracer.next_id(),
                parent_id=grid_span.span_id,
                name=name,
                path=f"{grid_span.path}/{name}",
                status=status,
                attrs=attrs,
            )
        )
        tally[status] += 1
    return tally
