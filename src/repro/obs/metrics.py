"""Metrics registry: named counters and summary histograms.

Deliberately small: the registry exists to make the paper's measurement
accounting inspectable (pair measurements, conflict verdicts, probe
recalibrations, pivot retries, pile sizes, grid attempts), not to be a
general telemetry system. Histograms store summary statistics
(count/total/min/max) rather than raw samples so a trace file stays a
few KB and cross-process merging is a pure fold.

Everything here is deterministic given a deterministic run: counters and
histogram statistics depend only on what the instrumented code did, never
on wall-clock time, so two bit-identical runs produce bit-identical
metric snapshots — the property the trace-determinism tests pin.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["BUCKET_BOUNDS", "HistogramStats", "MetricsRegistry", "bucket_index"]

# Fixed log-spaced bucket upper bounds shared by every histogram:
# mantissas 1.0/1.25/1.5/1.75 at every binary exponent from 2^-30 to
# 2^40 (~1e-9 .. ~2e12 — probe nanoseconds through sweep byte counts).
# Each bound is mantissa * 2^e with an exactly-representable mantissa,
# so bucket assignment is bit-reproducible across platforms and the
# derived p50/p95/p99 are deterministic — the property the shuffle-order
# merge test pins. The geometric step is 1.14x-1.25x, bounding quantile
# estimation error to one step.
_BUCKET_MANTISSAS = (1.0, 1.25, 1.5, 1.75)
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    mantissa * 2.0 ** exponent
    for exponent in range(-30, 41)
    for mantissa in _BUCKET_MANTISSAS
)
_OVERFLOW_BUCKET = len(BUCKET_BOUNDS)


def bucket_index(value: float) -> int:
    """Index of the first bucket whose upper bound is >= ``value``.

    Values at or below zero land in bucket 0; values beyond the last
    bound land in the overflow bucket (whose "bound" is the observed
    max at quantile time).
    """
    if value <= BUCKET_BOUNDS[0]:
        return 0
    return bisect_left(BUCKET_BOUNDS, value)


@dataclass
class HistogramStats:
    """Summary statistics of one observed value stream.

    Alongside count/total/min/max, samples are tallied into the fixed
    log-spaced :data:`BUCKET_BOUNDS`, stored sparsely (bucket index →
    count). Buckets add under merge, so quantile estimates survive the
    cross-process fold without shipping raw samples.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float | None:
        """Deterministic quantile estimate from the bucket tallies.

        Returns the upper bound of the bucket holding the ``q``-th
        sample, clamped into ``[min, max]`` so p50 of a single sample is
        that sample, not its bucket ceiling. None on an empty histogram.
        """
        if not self.count:
            return None
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                bound = (
                    self.max if index >= _OVERFLOW_BUCKET else BUCKET_BOUNDS[index]
                )
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - bucket counts always sum to count

    def as_dict(self) -> dict:
        data = {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.count:
            # JSON object keys are strings; sorted for stable bytes.
            data["buckets"] = {
                str(index): self.buckets[index] for index in sorted(self.buckets)
            }
            data["p50"] = self.quantile(0.50)
            data["p95"] = self.quantile(0.95)
            data["p99"] = self.quantile(0.99)
        return data

    def merge(self, other: "HistogramStats | dict") -> None:
        """Fold another histogram (or its ``as_dict`` form) into this one.

        Count/total/buckets add and min/max take extrema — every part of
        the fold is commutative and associative, and the quantiles are
        *derived* from the folded buckets rather than folded themselves,
        so merge order cannot change any reported statistic.
        """
        if isinstance(other, dict):
            count = int(other.get("count", 0))
            if not count:
                return
            self.count += count
            self.total += float(other.get("total", 0.0))
            other_min, other_max = other.get("min"), other.get("max")
            if other_min is not None and other_min < self.min:
                self.min = float(other_min)
            if other_max is not None and other_max > self.max:
                self.max = float(other_max)
            for key, tally in (other.get("buckets") or {}).items():
                index = int(key)
                self.buckets[index] = self.buckets.get(index, 0) + int(tally)
            return
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, tally in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + tally


class MetricsRegistry:
    """Counters and histograms accumulated during one traced run."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, HistogramStats] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramStats()
        histogram.observe(value)

    def snapshot(self) -> dict:
        """JSON-ready dump with deterministically sorted keys."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a grid worker) into this
        registry. Counters add; histograms merge their summary stats. The
        fold is commutative and associative, so merge order — worker
        completion order, cell index order — cannot change the result."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.inc(name, int(value))
        for name, stats in (snapshot.get("histograms") or {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramStats()
            histogram.merge(stats)
