"""Metrics registry: named counters and summary histograms.

Deliberately small: the registry exists to make the paper's measurement
accounting inspectable (pair measurements, conflict verdicts, probe
recalibrations, pivot retries, pile sizes, grid attempts), not to be a
general telemetry system. Histograms store summary statistics
(count/total/min/max) rather than raw samples so a trace file stays a
few KB and cross-process merging is a pure fold.

Everything here is deterministic given a deterministic run: counters and
histogram statistics depend only on what the instrumented code did, never
on wall-clock time, so two bit-identical runs produce bit-identical
metric snapshots — the property the trace-determinism tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HistogramStats", "MetricsRegistry"]


@dataclass
class HistogramStats:
    """Summary statistics of one observed value stream."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, other: "HistogramStats | dict") -> None:
        """Fold another histogram (or its ``as_dict`` form) into this one."""
        if isinstance(other, dict):
            count = int(other.get("count", 0))
            if not count:
                return
            self.count += count
            self.total += float(other.get("total", 0.0))
            other_min, other_max = other.get("min"), other.get("max")
            if other_min is not None and other_min < self.min:
                self.min = float(other_min)
            if other_max is not None and other_max > self.max:
                self.max = float(other_max)
            return
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """Counters and histograms accumulated during one traced run."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, HistogramStats] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramStats()
        histogram.observe(value)

    def snapshot(self) -> dict:
        """JSON-ready dump with deterministically sorted keys."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a grid worker) into this
        registry. Counters add; histograms merge their summary stats. The
        fold is commutative and associative, so merge order — worker
        completion order, cell index order — cannot change the result."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.inc(name, int(value))
        for name, stats in (snapshot.get("histograms") or {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramStats()
            histogram.merge(stats)
