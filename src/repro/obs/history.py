"""Run history: fold each run's totals into ``.dramdig/history.jsonl``.

Every telemetry-enabled run appends one record — command, wall seconds,
simulated nanoseconds, the run's metric snapshot — to an append-only
history file (:func:`repro.ioutil.atomic_append`, same torn-line
tolerance as the telemetry stream). ``dramdig obs history`` renders the
trailing entries and runs :func:`detect_regressions`: the newest run of
each command is compared against the mean of its trailing window, on the
*simulated* clock where one was recorded (deterministic — any growth is
a real cost change, not noise) and on wall clock with a much wider
threshold otherwise.

The metric fold over history entries reuses
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so it is a
commutative pure fold: replaying history in any order produces the same
aggregate (pinned by the order-independence test).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.ioutil import atomic_append
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_FORMAT",
    "HISTORY_VERSION",
    "Regression",
    "detect_regressions",
    "fold_history_metrics",
    "load_history",
    "record_run",
    "render_history",
]

HISTORY_FORMAT = "dramdig-history"
HISTORY_VERSION = 1
DEFAULT_HISTORY_PATH = Path(".dramdig") / "history.jsonl"

# Simulated time is deterministic: 5% growth is a real regression, not
# noise. Wall time is whatever the host was doing: only flag a doubling.
SIM_REGRESSION_THRESHOLD = 0.05
WALL_REGRESSION_THRESHOLD = 1.0


def record_run(
    path: str | Path,
    command: str,
    wall_s: float,
    sim_ns: float | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """Append one run record to the history file and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "format": HISTORY_FORMAT,
        "version": HISTORY_VERSION,
        "wall": time.time(),
        "command": command,
        "wall_s": wall_s,
        "sim_ns": sim_ns,
        "metrics": metrics or {},
    }
    if extra:
        record.update(extra)
    atomic_append(target, json.dumps(record, sort_keys=True))
    return record


def load_history(path: str | Path) -> list[dict]:
    """Parse a history file, skipping torn or foreign lines."""
    source = Path(path)
    if not source.exists():
        return []
    entries: list[dict] = []
    for line in source.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(record, dict)
            and record.get("format") == HISTORY_FORMAT
            and record.get("version") == HISTORY_VERSION
        ):
            entries.append(record)
    return entries


def fold_history_metrics(entries: list[dict]) -> MetricsRegistry:
    """Merge every entry's metric snapshot into one registry.

    Pure fold over :meth:`MetricsRegistry.merge_snapshot` — commutative
    and associative, so the aggregate is independent of entry order.
    """
    registry = MetricsRegistry()
    for entry in entries:
        snapshot = entry.get("metrics")
        if isinstance(snapshot, dict):
            registry.merge_snapshot(snapshot)
    return registry


@dataclass
class Regression:
    """One flagged run-vs-trailing-window slowdown."""

    command: str
    clock: str  # "sim" or "wall"
    latest: float
    trailing_mean: float
    window: int

    @property
    def ratio(self) -> float:
        return self.latest / self.trailing_mean if self.trailing_mean else float("inf")

    def describe(self) -> str:
        unit = "sim-ns" if self.clock == "sim" else "wall-s"
        return (
            f"{self.command}: latest {self.clock} {self.latest:.3g} {unit} is "
            f"{self.ratio:.2f}x the trailing-{self.window} mean "
            f"{self.trailing_mean:.3g}"
        )


def detect_regressions(entries: list[dict], window: int = 5) -> list[Regression]:
    """Compare each command's newest run against its trailing window.

    A command needs at least two entries to be judged. The newest entry
    is compared on the simulated clock when both it and the window have
    one (threshold :data:`SIM_REGRESSION_THRESHOLD`); otherwise on wall
    clock (threshold :data:`WALL_REGRESSION_THRESHOLD`).
    """
    by_command: dict[str, list[dict]] = {}
    for entry in entries:
        by_command.setdefault(str(entry.get("command", "?")), []).append(entry)

    findings: list[Regression] = []
    for command in sorted(by_command):
        runs = by_command[command]
        if len(runs) < 2:
            continue
        latest = runs[-1]
        trailing = runs[-(window + 1):-1]

        sim_latest = latest.get("sim_ns")
        sim_window = [
            run["sim_ns"] for run in trailing if run.get("sim_ns") is not None
        ]
        if sim_latest is not None and sim_window:
            mean = sum(sim_window) / len(sim_window)
            if mean > 0 and sim_latest > mean * (1.0 + SIM_REGRESSION_THRESHOLD):
                findings.append(
                    Regression(
                        command=command,
                        clock="sim",
                        latest=float(sim_latest),
                        trailing_mean=mean,
                        window=len(sim_window),
                    )
                )
            continue

        wall_latest = latest.get("wall_s")
        wall_window = [
            run["wall_s"] for run in trailing if run.get("wall_s") is not None
        ]
        if wall_latest is not None and wall_window:
            mean = sum(wall_window) / len(wall_window)
            if mean > 0 and wall_latest > mean * (1.0 + WALL_REGRESSION_THRESHOLD):
                findings.append(
                    Regression(
                        command=command,
                        clock="wall",
                        latest=float(wall_latest),
                        trailing_mean=mean,
                        window=len(wall_window),
                    )
                )
    return findings


def render_history(entries: list[dict], window: int = 5, limit: int = 20) -> str:
    """Trailing history table plus any regression findings."""
    if not entries:
        return "(no history)"
    lines = [f"{'when':<20}{'command':<28}{'wall-s':>10}{'sim-s':>12}"]
    for entry in entries[-limit:] if limit > 0 else entries:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(entry.get("wall", 0))
        )
        sim_ns = entry.get("sim_ns")
        sim = f"{sim_ns / 1e9:12.2f}" if sim_ns is not None else f"{'-':>12}"
        lines.append(
            f"{when:<20}{str(entry.get('command', '?')):<28}"
            f"{entry.get('wall_s', 0.0):10.3f}{sim}"
        )
    findings = detect_regressions(entries, window=window)
    lines.append("")
    if findings:
        for finding in findings:
            lines.append(f"regression: {finding.describe()}")
    else:
        lines.append(f"no regressions against the trailing-{window} window")
    return "\n".join(lines)
