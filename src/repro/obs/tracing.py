"""Hierarchical tracing spans over simulated and wall clocks.

A **span** covers one named unit of work — a pipeline phase, a retry
attempt, a grid cell — and records both clocks: the *simulated* clock
(:class:`~repro.machine.clock.SimClock`, the paper's cost accounting)
when the instrumented code has one, and host wall-clock seconds always.
Spans nest: the active span is tracked on a process-wide stack, so a
probe recalibration that fires during Algorithm 2 lands under
``dramdig/attempt-1/partition`` without the probe knowing anything about
the pipeline above it.

Activation model (process-wide, matching the one-run-per-process grid
workers):

* :func:`activate` installs a :class:`Tracer` and *resets the span-path
  stack*, so a grid cell traced in-process nests identically to the same
  cell traced in a worker process — a requirement for the jobs=1 vs
  jobs=N trace-determinism guarantee;
* :func:`span` opens a span under the active tracer; with no tracer it
  returns a shared null span that only maintains the name stack (a list
  append/pop — the "zero-cost when off" budget);
* :func:`inc` / :func:`observe` / :func:`note_event` are no-ops without
  an active tracer, and instrumented hot paths are expected to guard any
  *computation* of a metric value behind :func:`current_tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "activate",
    "current_path",
    "current_tracer",
    "inc",
    "note_event",
    "observe",
    "span",
]


@dataclass
class SpanRecord:
    """One completed (or open) span.

    Attributes:
        span_id: unique id within its trace (1-based, creation order).
        parent_id: enclosing span's id, or None for a root span.
        name: the unit of work ("calibrate", "attempt-1", "cell:...").
        path: slash-joined names from the root ("dramdig/attempt-1/fine").
        status: "ok", "error" (an exception escaped the span), "cached"
            (a grid cell restored from the checkpoint journal instead of
            executed), "failed" (a grid cell that exhausted its
            attempts) or "open" (still in flight when the trace was
            exported — a salvaged trace from an interrupted run).
        sim_start_ns / sim_end_ns: simulated-clock bounds, when the span
            had a :class:`~repro.machine.clock.SimClock`; None otherwise.
        wall_s: host wall-clock duration. Nondeterministic by nature —
            excluded from trace-determinism comparisons.
        attrs: free-form JSON-safe details ("measurements", "piles", ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    path: str
    status: str = "ok"
    sim_start_ns: float | None = None
    sim_end_ns: float | None = None
    wall_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def sim_ns(self) -> float | None:
        """Simulated duration, or None when the span had no sim clock."""
        if self.sim_start_ns is None or self.sim_end_ns is None:
            return None
        return self.sim_end_ns - self.sim_start_ns

    def to_json(self) -> dict:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "path": self.path,
            "status": self.status,
            "sim_start_ns": self.sim_start_ns,
            "sim_end_ns": self.sim_end_ns,
            "sim_ns": self.sim_ns,
            "wall_s": self.wall_s,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, record: dict) -> "SpanRecord":
        return cls(
            span_id=int(record["id"]),
            parent_id=(None if record.get("parent") is None else int(record["parent"])),
            name=str(record.get("name", "")),
            path=str(record.get("path", "")),
            status=str(record.get("status", "ok")),
            sim_start_ns=record.get("sim_start_ns"),
            sim_end_ns=record.get("sim_end_ns"),
            wall_s=float(record.get("wall_s") or 0.0),
            attrs=dict(record.get("attrs") or {}),
        )


class _SpanScope:
    """Context manager for one live span under a tracer."""

    __slots__ = ("_tracer", "_record", "_clock", "_wall_start")

    def __init__(self, tracer: "Tracer", record: SpanRecord, clock) -> None:
        self._tracer = tracer
        self._record = record
        self._clock = clock
        self._wall_start = 0.0

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span (JSON-safe values only)."""
        self._record.attrs[key] = value

    @property
    def record(self) -> SpanRecord:
        return self._record

    def __enter__(self) -> "_SpanScope":
        self._wall_start = time.perf_counter()
        if self._clock is not None:
            self._record.sim_start_ns = self._clock.elapsed_ns
        _PATH.append(self._record.name)
        self._tracer._stack.append(self._record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._record.wall_s = time.perf_counter() - self._wall_start
        if self._clock is not None:
            self._record.sim_end_ns = self._clock.elapsed_ns
        if exc_type is not None:
            self._record.status = "error"
            self._record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._stack.pop()
        _PATH.pop()
        return False


class _NullSpan:
    """Stand-in span when no tracer is active.

    Keeps the name stack current (so :func:`current_path` — and through
    it :class:`~repro.faults.recovery.DegradationEvent` attribution —
    works in untraced runs too) but records nothing. ``set`` is a no-op.
    Re-entrant: each ``span()`` call constructs a fresh instance, so
    nesting is safe.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        _PATH.append(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _PATH.pop()
        return False


NULL_SPAN = _NullSpan("")


class Tracer:
    """Collects spans and metrics for one traced run."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._stack: list[SpanRecord] = []
        self._next_id = 1

    def span(self, name: str, clock=None, **attrs) -> _SpanScope:
        """Open a child span of the currently active span.

        ``clock`` is a :class:`~repro.machine.clock.SimClock` (or any
        object with ``elapsed_ns``) used to stamp simulated-time bounds;
        omit it for spans with no simulated cost (grid orchestration).
        """
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            path=f"{parent.path}/{name}" if parent is not None else name,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        return _SpanScope(self, record, clock)

    def adopt(self, record: SpanRecord) -> None:
        """Attach an externally built span record (trace merging)."""
        self.spans.append(record)
        if record.span_id >= self._next_id:
            self._next_id = record.span_id + 1

    def next_id(self) -> int:
        """Allocate one span id (for adopted/merged records)."""
        allocated = self._next_id
        self._next_id += 1
        return allocated

    @property
    def current_span(self) -> SpanRecord | None:
        return self._stack[-1] if self._stack else None


# Process-wide activation state. Deliberately plain module globals, not
# contextvars: the grid model is one traced run per process (workers) or
# strictly nested activations in one thread (in-process serial cells),
# and a global read is what keeps the tracing-off cost of a hot-path
# guard to a single load+is-None test.
_ACTIVE: Tracer | None = None
_PATH: list[str] = []


def current_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _ACTIVE


def current_path() -> str:
    """Slash-joined names of the open spans (empty outside any span)."""
    return "/".join(_PATH)


@contextmanager
def activate(tracer: Tracer):
    """Install ``tracer`` as the active tracer for the dynamic extent.

    The span-path stack is swapped for a fresh one and restored on exit,
    so a nested activation (an in-process grid cell under a traced
    parent) starts from a clean root exactly like a worker process
    would — span paths must not depend on where the cell ran.
    """
    global _ACTIVE, _PATH
    previous_tracer, previous_path = _ACTIVE, _PATH
    _ACTIVE, _PATH = tracer, []
    try:
        yield tracer
    finally:
        _ACTIVE, _PATH = previous_tracer, previous_path


def span(name: str, clock=None, **attrs):
    """Open a span under the active tracer, or a null span without one."""
    tracer = _ACTIVE
    if tracer is None:
        return _NullSpan(name)
    return tracer.span(name, clock=clock, **attrs)


def inc(name: str, value: int = 1) -> None:
    """Increment a counter on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.observe(name, value)


def note_event(event):
    """Feed a :class:`~repro.faults.recovery.DegradationEvent` into the
    metrics registry and return it unchanged, so creation sites can wrap
    construction in place. Counted as ``degradation.<step>.<action>`` —
    the correlation between recovery actions and the span they fired in
    comes from the event's ``span`` field (set by the creation site from
    :func:`current_path`)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.inc(f"degradation.{event.step}.{event.action}")
    return event
