"""Cross-run trace analytics: critical path and span-level A/B diff.

Both tools consume the PR 4 trace format (:mod:`repro.obs.export`) and
reason over the *simulated* clock wherever one was recorded — that is
the paper's cost model and the only clock that is deterministic across
runs. Wall seconds are reported alongside but never gated on.

* :func:`critical_path` walks the span tree from the heaviest root,
  descending into the heaviest child at every level — the chain of
  spans a speedup must touch to move the total.
* :func:`diff_traces` aggregates both traces per span *path* and
  attributes a slowdown to the subtree with the largest simulated-time
  growth. Subtrees that are ``cached`` or ``failed`` on *either* side
  are excluded from both: a journal-resumed run records resumed cells
  as bodiless ``cached`` spans, and charging the other trace's full
  execution against zero would report every resume as a phantom
  speedup. What remains — cells actually executed on both sides — is
  deterministic simulated time, so a resumed run diffed against its
  from-scratch twin comes out exactly equal (the kill/resume smoke
  gate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.export import TraceFile
from repro.obs.tracing import SpanRecord

__all__ = [
    "DiffRow",
    "TraceDiff",
    "critical_path",
    "diff_traces",
    "render_critical_path",
    "render_diff",
    "span_weight_index",
]


def _children_index(spans: list[SpanRecord]) -> dict[int | None, list[SpanRecord]]:
    children: dict[int | None, list[SpanRecord]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.span_id)
    return children


def span_weight_index(trace: TraceFile) -> dict[int, float]:
    """Simulated weight per span id, filling gaps from below.

    A span that recorded sim bounds uses its own duration. A span with
    no sim clock (grid orchestration, ``cell:`` wrappers) inherits the
    sum of its children's weights, recursively — so the grid root ends
    up carrying the total simulated cost of everything under it and the
    critical-path descent never dead-ends on a bookkeeping span.
    """
    children = _children_index(trace.spans)
    weights: dict[int, float] = {}

    def weigh(span: SpanRecord) -> float:
        cached = weights.get(span.span_id)
        if cached is not None:
            return cached
        own = span.sim_ns
        if own is None:
            own = sum(weigh(child) for child in children.get(span.span_id, []))
        weights[span.span_id] = own
        return own

    for span in trace.spans:
        weigh(span)
    return weights


@dataclass
class _PathStep:
    span: SpanRecord
    weight_ns: float
    share: float  # fraction of the parent step's weight


def critical_path(trace: TraceFile) -> list[_PathStep]:
    """Heaviest root-to-leaf chain through the span tree.

    Ties break toward the earliest span id (submission order), keeping
    the output deterministic on grids of identical cells.
    """
    children = _children_index(trace.spans)
    weights = span_weight_index(trace)

    def heaviest(candidates: list[SpanRecord]) -> SpanRecord | None:
        best = None
        for span in candidates:
            if best is None or weights[span.span_id] > weights[best.span_id]:
                best = span
        return best

    steps: list[_PathStep] = []
    node = heaviest(children.get(None, []))
    parent_weight = None
    while node is not None:
        weight = weights[node.span_id]
        share = (weight / parent_weight) if parent_weight else 1.0
        steps.append(_PathStep(span=node, weight_ns=weight, share=share))
        parent_weight = weight if weight > 0 else None
        node = heaviest(children.get(node.span_id, []))
    return steps


def render_critical_path(trace: TraceFile, limit: int = 0) -> str:
    """Text rendering: one line per step, heaviest chain top-down."""
    steps = critical_path(trace)
    if limit > 0:
        steps = steps[:limit]
    if not steps:
        return "(no spans)"
    lines = [f"{'span':<48}{'sim-s':>10}{'share':>8}"]
    for depth, step in enumerate(steps):
        label = "  " * depth + step.span.name
        status = "" if step.span.status == "ok" else f"  {step.span.status.upper()}"
        lines.append(
            f"{label:<48}{step.weight_ns / 1e9:10.2f}{step.share:7.0%}{status}"
        )
    return "\n".join(lines)


def _excluded_prefixes(trace: TraceFile) -> set[str]:
    return {
        span.path
        for span in trace.spans
        if span.status in ("cached", "failed")
    }


def _aggregate(trace: TraceFile, excluded: set[str]) -> dict[str, dict]:
    """Per-path totals over spans outside the excluded subtrees."""
    totals: dict[str, dict] = {}
    for span in trace.spans:
        path = span.path
        if path in excluded or any(
            path.startswith(prefix + "/") for prefix in excluded
        ):
            continue
        entry = totals.setdefault(
            path, {"count": 0, "sim_ns": 0.0, "wall_s": 0.0, "has_sim": False}
        )
        entry["count"] += 1
        entry["wall_s"] += span.wall_s
        sim_ns = span.sim_ns
        if sim_ns is not None:
            entry["sim_ns"] += sim_ns
            entry["has_sim"] = True
    return totals


def _total_sim_ns(trace: TraceFile, excluded: set[str]) -> float:
    """Total simulated time, descending past clockless bookkeeping spans.

    A span with its own sim bounds contributes its duration; a span
    without (grid roots, ``cell:`` wrappers) contributes its children's
    total instead — never both, so nothing is double-counted. Excluded
    subtrees contribute zero on both sides of the diff.
    """
    children = _children_index(trace.spans)

    def weigh(span: SpanRecord) -> float:
        if span.path in excluded or any(
            span.path.startswith(prefix + "/") for prefix in excluded
        ):
            return 0.0
        own = span.sim_ns
        if own is not None:
            return own
        return sum(weigh(child) for child in children.get(span.span_id, []))

    return sum(weigh(root) for root in children.get(None, []))


@dataclass
class DiffRow:
    """One span path's aggregate on both sides."""

    path: str
    base_sim_ns: float | None
    other_sim_ns: float | None
    base_count: int
    other_count: int

    @property
    def delta_ns(self) -> float:
        return (self.other_sim_ns or 0.0) - (self.base_sim_ns or 0.0)


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces`."""

    rows: list[DiffRow]
    base_total_ns: float
    other_total_ns: float
    excluded_paths: list[str]
    tolerance: float

    @property
    def delta_ns(self) -> float:
        return self.other_total_ns - self.base_total_ns

    @property
    def regression(self) -> bool:
        """True when the second trace is slower beyond the tolerance."""
        if self.base_total_ns <= 0:
            return False
        return self.other_total_ns > self.base_total_ns * (1.0 + self.tolerance)

    @property
    def attribution(self) -> DiffRow | None:
        """The deepest path with the largest simulated-time growth."""
        worst = None
        for row in self.rows:
            if row.delta_ns <= 0:
                continue
            if worst is None or row.delta_ns > worst.delta_ns or (
                row.delta_ns == worst.delta_ns
                and row.path.count("/") > worst.path.count("/")
            ):
                worst = row
        return worst


def diff_traces(
    base: TraceFile, other: TraceFile, tolerance: float = 0.01
) -> TraceDiff:
    """Span-level A/B diff: where did the second trace get slower?

    ``tolerance`` is the fractional total-growth budget below which the
    pair counts as equal (``regression`` False). Simulated time is
    deterministic, so the default 1% exists only to absorb legitimate
    float accumulation differences, not measurement noise.
    """
    excluded = _excluded_prefixes(base) | _excluded_prefixes(other)
    base_totals = _aggregate(base, excluded)
    other_totals = _aggregate(other, excluded)

    rows: list[DiffRow] = []
    for path in sorted(set(base_totals) | set(other_totals)):
        base_entry = base_totals.get(path)
        other_entry = other_totals.get(path)
        rows.append(
            DiffRow(
                path=path,
                base_sim_ns=(
                    base_entry["sim_ns"]
                    if base_entry and base_entry["has_sim"]
                    else None
                ),
                other_sim_ns=(
                    other_entry["sim_ns"]
                    if other_entry and other_entry["has_sim"]
                    else None
                ),
                base_count=base_entry["count"] if base_entry else 0,
                other_count=other_entry["count"] if other_entry else 0,
            )
        )

    return TraceDiff(
        rows=rows,
        base_total_ns=_total_sim_ns(base, excluded),
        other_total_ns=_total_sim_ns(other, excluded),
        excluded_paths=sorted(excluded),
        tolerance=tolerance,
    )


def render_diff(diff: TraceDiff, limit: int = 15) -> str:
    """Text rendering of a trace diff, largest growth first."""
    lines = [
        f"total sim: base={diff.base_total_ns / 1e9:.3f}s "
        f"other={diff.other_total_ns / 1e9:.3f}s "
        f"delta={diff.delta_ns / 1e9:+.3f}s "
        f"({'REGRESSION' if diff.regression else 'ok'}, "
        f"tolerance {diff.tolerance:.0%})"
    ]
    if diff.excluded_paths:
        lines.append(
            f"excluded {len(diff.excluded_paths)} cached/failed subtree(s)"
        )
    interesting = [
        row
        for row in diff.rows
        if row.base_sim_ns is not None or row.other_sim_ns is not None
    ]
    interesting.sort(key=lambda row: (-abs(row.delta_ns), row.path))
    shown = interesting[:limit] if limit > 0 else interesting
    if shown:
        lines.append("")
        lines.append(f"{'path':<56}{'base-s':>10}{'other-s':>10}{'delta-s':>10}")
        for row in shown:
            base_text = (
                f"{row.base_sim_ns / 1e9:10.3f}"
                if row.base_sim_ns is not None
                else f"{'-':>10}"
            )
            other_text = (
                f"{row.other_sim_ns / 1e9:10.3f}"
                if row.other_sim_ns is not None
                else f"{'-':>10}"
            )
            lines.append(
                f"{row.path:<56}{base_text}{other_text}"
                f"{row.delta_ns / 1e9:+10.3f}"
            )
    attribution = diff.attribution
    if attribution is not None and diff.delta_ns > 0:
        lines.append("")
        lines.append(
            f"attribution: {attribution.path} grew by "
            f"{attribution.delta_ns / 1e9:.3f}s"
        )
    return "\n".join(lines)
