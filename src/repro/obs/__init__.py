"""Structured observability: tracing spans, metrics, trace export.

The DRAMDig paper's headline claims are *cost accounting* claims —
minutes-not-hours runtime, deterministic measurement counts per step —
and this package is what lets the reproduction verify them mechanically
instead of trusting one flat ``phase_seconds`` dict:

* :mod:`repro.obs.tracing` — hierarchical spans carrying both
  simulated-clock and wall-clock time, parented per pipeline step;
* :mod:`repro.obs.metrics` — a counters + histograms registry fed by the
  probe, the partitioner, the recovery stack and the grid supervisor;
* :mod:`repro.obs.export` — the JSONL trace format (written through
  :func:`repro.ioutil.atomic_write`, loadable for analysis);
* :mod:`repro.obs.gridtrace` — per-cell trace files written by grid
  workers and stitched into one merged trace by the parent, including
  ``cached`` spans for journal-resumed cells;
* :mod:`repro.obs.summary` — the ``dramdig trace summary`` renderer
  (span-tree text flamegraph + metrics table) and consistency gate.

Tracing is **zero-cost when off**: with no active tracer the
instrumented hot paths pay one ``is None`` test, and the pipeline pays a
handful of name pushes per run for step-path bookkeeping (so
:class:`~repro.faults.recovery.DegradationEvent` can always say *where*
it fired). No span objects, attribute dicts or metric updates are
allocated until :func:`activate` installs a :class:`Tracer`.
"""

from repro.obs.telemetry import (
    TelemetryBus,
    activate_bus,
    current_bus,
    emit,
)
from repro.obs.tracing import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    activate,
    current_path,
    current_tracer,
    inc,
    note_event,
    observe,
    span,
)

__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "TelemetryBus",
    "activate",
    "activate_bus",
    "current_bus",
    "current_path",
    "current_tracer",
    "emit",
    "inc",
    "note_event",
    "observe",
    "span",
]
