"""Cell batching: ship a chunk of grid cells as one pool task.

Submitting one :class:`~repro.parallel.grid.GridCell` per pool task
charges every cell a round trip of pickling, queueing and future
bookkeeping.  For sweeps of many small cells that overhead dominates,
so the grid runners can bundle ``batch_cells`` consecutive cells into a
single submitted task.  The worker runs the cells *in order* and
returns one marker per cell:

* ``("ok", value)`` — the cell's result;
* ``("error", detail)`` — the cell raised; ``detail`` is the stringified
  :class:`~repro.parallel.grid.CellExecutionError` (exceptions are
  captured per cell so one bad cell cannot poison its batch-mates'
  results, and so the marker list is always picklable).

Callers un-bundle the markers back into per-cell results, journal
entries and retry decisions — batching changes how work is *shipped*,
never what any cell computes, so artefacts stay byte-identical to the
unbatched (and serial) paths.  Chunks are built from *consecutive*
submission indices, which keeps a batch's journal records in the same
relative order the serial runner would write them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.parallel.grid import GridCell, execute_cell

__all__ = ["chunk_indices", "execute_cell_batch", "resolve_batch_cells"]


def resolve_batch_cells(batch_cells: int | None) -> int:
    """Normalise a ``--batch-cells`` value (None/0/1 = no batching)."""
    if batch_cells is None or batch_cells == 0:
        return 1
    if batch_cells < 0:
        raise ValueError(f"batch-cells must be positive, got {batch_cells}")
    return batch_cells


def chunk_indices(indices: Sequence[int], batch_cells: int) -> list[list[int]]:
    """Split ``indices`` into consecutive chunks of at most ``batch_cells``."""
    if batch_cells <= 1:
        return [[index] for index in indices]
    indices = list(indices)
    return [
        indices[start : start + batch_cells]
        for start in range(0, len(indices), batch_cells)
    ]


def execute_cell_batch(cells: Sequence[GridCell]) -> list[tuple[str, object]]:
    """Run a batch of cells in the current process; one marker per cell.

    The worker entry point for batched submissions.  Cells run in the
    order given; a cell that raises contributes an ``("error", detail)``
    marker and the batch continues — attribution and retry policy are
    the parent's job, and the parent can only decide per cell if it
    gets told per cell.
    """
    markers: list[tuple[str, object]] = []
    for cell in cells:
        try:
            markers.append(("ok", execute_cell(cell)))
        except Exception as error:  # noqa: BLE001 - marker boundary
            markers.append(("error", str(error)))
    return markers
