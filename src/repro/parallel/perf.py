"""Perf harness: wall-clock evidence for the optimisation work.

Writes ``BENCH_perf.json`` with these families of numbers:

* **grid** — wall-clock seconds of the Table I and Figure 2 evaluation
  grids, serial and parallel (persistent warmed pool, optional cell
  batching), next to the recorded pre-optimisation (seed) baselines
  measured on the same reference container. The parallel runs are
  always executed and compared byte-for-byte against serial; the
  *speedup* columns are only emitted on multi-CPU hosts, because a
  single-CPU container's process pool cannot beat serial and the ratio
  would be noise dressed up as a result;
* **single_run** — one DRAMDig run per panel machine with the
  vectorized measurement-campaign planner on (the default) and off
  (``batch_probes=False``), asserted bit-identical, next to the
  recorded seed panel baseline;
* **translation** — batched phys↔DRAM lookup throughput of the compiled
  GF(2) matrix pair on a million-address pool, checked bit-identical
  against the scalar decode path before any timing is believed;
* **micro** — decode/parity throughput of the current hot-path kernels
  next to both the retained reference implementations
  (``bank_of_array_popcount`` / ``row_of_array_shift``) and the recorded
  seed numbers;
* **tracing** — one DRAMDig run with and without an active tracer
  (the zero-cost-when-off claim, measured), plus the traced run's
  per-phase breakdown (simulated seconds, wall seconds and pair
  measurements per pipeline step) lifted from its spans;
* **obs** — the same A/B for the live telemetry bus: one DRAMDig run
  with the bus global left ``None`` (hot-path hooks reduce to one
  is-None test) vs streaming events to a scratch file, plus a Table I
  panel rendered both ways and compared byte for byte (telemetry is a
  side channel, never an input);
* **campaign** — the campaign fuzzer's aggressor-selection A/B:
  compiled batch planning vs per-victim scalar aiming, agreement
  checked lane for lane before any timing is believed, plus one timed
  campaign trial as the end-to-end cost anchor;
* **environment** — CPU count, worker count, pool mode and batch size,
  because a parallel speedup claim without the CPU count is
  meaningless.

Run with ``python -m repro.parallel.perf [--jobs N] [--batch-cells K]
[--pool-mode MODE] [--out PATH]``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.bits import parity_array
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.figure2 import run_figure2
from repro.evalsuite.table1 import render_table1, run_table1
from repro.ioutil import atomic_write
from repro.logutil import get_logger, setup_logging
from repro.obs import tracing as obs
from repro.parallel.grid import resolve_jobs

__all__ = ["SEED_BASELINES", "run_perf", "main"]

_LOG = get_logger("repro.perf")

# Pre-optimisation numbers, measured on the reference container at the
# commit each harness section was introduced (seed code, serial, same
# workloads as below). They anchor the speedup columns when the harness
# runs on the same class of hardware; rerun on different hardware,
# compare the "reference" micro columns instead — those are measured
# live. ``single_run_panel_seconds`` is the seed cost of one DRAMDig
# run on each of the four panel machines below (best-of-9).
SEED_BASELINES = {
    "table1_seconds": 41.0,
    "figure2_seconds": 13.1,
    "bank_of_array_us": 142.3,
    "row_of_array_us": 302.3,
    "parity_array_us": 37.9,
    "pool_size": 16384,
    "single_run_panel_seconds": 0.505,
}

_MICRO_POOL = 16384

# Smallest, mid and largest Algorithm-1 pools: the single-run panel
# spans the cost range without running all nine presets nine times.
_SINGLE_RUN_PANEL = ("No.1", "No.3", "No.6", "No.9")


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall-clock seconds (best, not mean: least noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_benches() -> dict:
    mapping = preset("No.1").mapping
    rng = np.random.default_rng(0)
    pool = rng.integers(0, 2**33, _MICRO_POOL, dtype=np.uint64)
    mask = (1 << 14) | (1 << 17)

    current = {
        "bank_of_array_us": _best_of(lambda: mapping.bank_of_array(pool)) * 1e6,
        "row_of_array_us": _best_of(lambda: mapping.row_of_array(pool)) * 1e6,
        "parity_array_us": _best_of(lambda: parity_array(pool, mask)) * 1e6,
    }
    reference = {
        "bank_of_array_us": _best_of(lambda: mapping.bank_of_array_popcount(pool)) * 1e6,
        "row_of_array_us": _best_of(lambda: mapping.row_of_array_shift(pool)) * 1e6,
    }
    return {
        "pool_size": _MICRO_POOL,
        "current": current,
        "reference_impls": reference,
        "speedup_vs_seed": {
            key: SEED_BASELINES[key] / current[key]
            for key in ("bank_of_array_us", "row_of_array_us", "parity_array_us")
        },
        "speedup_vs_reference": {
            key: reference[key] / current[key] for key in reference
        },
    }


def _tracing_benches(machine_name: str = "No.1", repeats: int = 3) -> dict:
    """Tracing overhead on one full DRAMDig run, plus the phase breakdown.

    Same (preset, seed) run measured best-of-N twice: once with the
    tracer globals left ``None`` (the production default — instrumented
    hot paths reduce to a single is-None test) and once under an active
    tracer. The last traced run's spans supply the per-phase table: a
    phase span sits at path depth 2 (``dramdig/attempt-N/<phase>``).
    """
    from repro.core.dramdig import DramDig
    from repro.machine.machine import SimulatedMachine

    def run_once():
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=1)
        DramDig().run(machine)

    untraced = _best_of(run_once, repeats=repeats)

    tracer = obs.Tracer()

    def run_traced():
        nonlocal tracer
        tracer = obs.Tracer()
        with obs.activate(tracer):
            run_once()

    traced = _best_of(run_traced, repeats=repeats)
    phases: dict[str, dict] = {}
    for span in tracer.spans:
        if span.path.count("/") != 2:
            continue
        entry = phases.setdefault(
            span.name, {"sim_seconds": 0.0, "wall_seconds": 0.0, "measurements": 0}
        )
        entry["sim_seconds"] += (span.sim_ns or 0.0) / 1e9
        entry["wall_seconds"] += span.wall_s or 0.0
        entry["measurements"] += int(span.attrs.get("measurements", 0))
    return {
        "machine": machine_name,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "overhead_ratio": traced / untraced if untraced else float("nan"),
        "phases": phases,
    }


def _obs_benches(machine_name: str = "No.1", repeats: int = 3) -> dict:
    """Telemetry overhead on one full DRAMDig run, plus artefact identity.

    Mirrors ``_tracing_benches``: the same (preset, seed) run measured
    best-of-N with the bus global left ``None`` (instrumented hot paths
    pay one global load and an is-None test) and with an active
    ``TelemetryBus`` streaming events to a scratch file. A small Table I
    panel is also rendered with and without a live bus and compared byte
    for byte — the stream is a side channel and must never alter an
    artefact, so a mismatch raises instead of reporting numbers built on
    different output.
    """
    import tempfile

    from repro.core.dramdig import DramDig
    from repro.machine.machine import SimulatedMachine
    from repro.obs import telemetry

    def run_once():
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=1)
        DramDig().run(machine)

    off = _best_of(run_once, repeats=repeats)

    with tempfile.TemporaryDirectory(prefix="dramdig-obs-perf-") as scratch:
        stream = Path(scratch) / "run.jsonl"

        def run_streamed():
            with telemetry.activate_bus(telemetry.TelemetryBus(stream)):
                run_once()

        on = _best_of(run_streamed, repeats=repeats)
        events_per_run = len(telemetry.load_events(stream)) // repeats

        plain = render_table1(run_table1(seed=1, machines=(machine_name,)))
        panel_stream = Path(scratch) / "table1.jsonl"
        with telemetry.activate_bus(telemetry.TelemetryBus(panel_stream)):
            streamed = render_table1(run_table1(seed=1, machines=(machine_name,)))
        if streamed != plain:
            raise RuntimeError(
                "telemetry changed the Table I artefact: the event stream "
                "must be a pure side channel"
            )
        panel_events = len(telemetry.load_events(panel_stream))

    return {
        "machine": machine_name,
        "telemetry_off_seconds": off,
        "telemetry_on_seconds": on,
        "overhead_ratio": on / off if off else float("nan"),
        "events_per_run": events_per_run,
        "panel_events": panel_events,
        "artefacts_identical": True,
    }


def _single_run_signature(result) -> tuple:
    """Everything observable about one run: mapping, accounting, clock."""
    return (
        tuple(sorted(result.mapping.bank_functions)),
        result.mapping.row_bits,
        result.mapping.column_bits,
        result.measurements,
        result.total_seconds,
    )


def _single_run_benches(
    machines: tuple[str, ...] = _SINGLE_RUN_PANEL, repeats: int = 3
) -> dict:
    """Campaign-planner A/B: batched probe sweeps vs step-by-step.

    The same panel runs with the vectorized measurement-campaign planner
    on (``batch_probes=True``, the default) and off; both configurations
    must produce identical mappings, measurement counts and simulated
    clocks — the planner changes how probes are *issued*, never what
    they measure. A mismatch is a correctness bug, so the bench raises
    instead of reporting a speedup built on different work.
    """
    import dataclasses

    from repro.core.dramdig import DramDig, DramDigConfig
    from repro.machine.machine import SimulatedMachine

    batched_config = DramDigConfig()
    stepwise_config = dataclasses.replace(
        batched_config,
        probe=dataclasses.replace(batched_config.probe, batch_probes=False),
    )

    def run_panel(config):
        signatures = []
        for name in machines:
            machine = SimulatedMachine.from_preset(preset(name), seed=1)
            signatures.append(_single_run_signature(DramDig(config).run(machine)))
        return signatures

    batched_signatures = run_panel(batched_config)
    stepwise_signatures = run_panel(stepwise_config)
    if batched_signatures != stepwise_signatures:
        raise RuntimeError(
            "campaign batching changed a result: batched and stepwise "
            "runs must be bit-identical"
        )

    batched = _best_of(lambda: run_panel(batched_config), repeats=repeats)
    stepwise = _best_of(lambda: run_panel(stepwise_config), repeats=repeats)
    return {
        "machines": list(machines),
        "batched_seconds": batched,
        "stepwise_seconds": stepwise,
        "batching_speedup": stepwise / batched,
        "speedup_vs_seed": SEED_BASELINES["single_run_panel_seconds"] / batched,
        "results_identical": True,
    }


_TRANSLATION_POOL = 1_000_000
_TRANSLATION_IDENTITY_SAMPLE = 4096


def _translation_benches(machine_name: str = "No.2") -> dict:
    """Compiled-translation throughput plus scalar bit-identity.

    One compiled mapping, a million-address pool, best-of timings for the
    batched phys→DRAM and DRAM→phys kernels. Before anything is timed, a
    sample of the pool goes through both the scalar ground truth
    (``AddressMapping.dram_address`` / ``encode``) and the batch kernels;
    any mismatch raises — a throughput number for a kernel that computes
    different bits would be worse than no number.
    """
    from repro.dram.compiled import CompiledMapping
    from repro.dram.mapping import DramAddress

    mapping = preset(machine_name).mapping
    compile_seconds = _best_of(
        lambda: CompiledMapping.from_mapping(mapping), repeats=3
    )
    compiled = mapping.compiled
    rng = np.random.default_rng(0)
    pool = rng.integers(
        0, 1 << mapping.geometry.address_bits, _TRANSLATION_POOL, dtype=np.uint64
    )

    sample = pool[:_TRANSLATION_IDENTITY_SAMPLE]
    banks, rows, columns = compiled.translate(sample)
    round_trip = compiled.encode(banks, rows, columns)
    identical = True
    for index in range(sample.size):
        scalar = mapping.dram_address(int(sample[index]))
        if (
            scalar.bank != int(banks[index])
            or scalar.row != int(rows[index])
            or scalar.column != int(columns[index])
            or mapping.encode(DramAddress(scalar.bank, scalar.row, scalar.column))
            != int(round_trip[index])
        ):
            identical = False
            break
    if not identical:
        raise RuntimeError(
            "compiled translation diverged from the scalar decode path: "
            "batch kernels must be bit-identical"
        )

    translate_seconds = _best_of(lambda: compiled.translate(pool))
    full_banks, full_rows, full_columns = compiled.translate(pool)
    encode_seconds = _best_of(
        lambda: compiled.encode(full_banks, full_rows, full_columns)
    )
    scalar_seconds = _best_of(
        lambda: [mapping.dram_address(int(addr)) for addr in sample], repeats=3
    )
    scalar_rate = sample.size / scalar_seconds
    translate_rate = _TRANSLATION_POOL / translate_seconds
    return {
        "machine": machine_name,
        "pool_size": _TRANSLATION_POOL,
        "identity_sample": _TRANSLATION_IDENTITY_SAMPLE,
        "compile_ms": compile_seconds * 1e3,
        "translate_lookups_per_s": translate_rate,
        "encode_lookups_per_s": _TRANSLATION_POOL / encode_seconds,
        "scalar_lookups_per_s": scalar_rate,
        "batch_speedup_vs_scalar": translate_rate / scalar_rate,
        "scalar_identity": True,
    }


def _grid_benches(
    jobs: int,
    machines: tuple[str, ...],
    batch_cells: int | None,
    pool_mode: str,
    single_cpu: bool,
) -> dict:
    def timed(callable_):
        start = time.perf_counter()
        value = callable_()
        return value, time.perf_counter() - start

    parallel_kwargs = dict(jobs=jobs, batch_cells=batch_cells, pool_mode=pool_mode)
    table1_serial_result, table1_serial = timed(
        lambda: run_table1(seed=1, machines=machines)
    )
    table1_parallel_result, table1_parallel = timed(
        lambda: run_table1(seed=1, machines=machines, **parallel_kwargs)
    )
    figure2_serial_result, figure2_serial = timed(
        lambda: run_figure2(seed=1, machines=machines)
    )
    figure2_parallel_result, figure2_parallel = timed(
        lambda: run_figure2(seed=1, machines=machines, **parallel_kwargs)
    )
    bit_identical = (
        render_table1(table1_parallel_result) == render_table1(table1_serial_result)
        and figure2_parallel_result == figure2_serial_result
    )
    if not bit_identical:
        raise RuntimeError(
            "parallel grid diverged from serial: artefacts must be "
            "byte-identical regardless of jobs/batch-cells/pool-mode"
        )
    record = {
        "machines": list(machines),
        "jobs": jobs,
        "batch_cells": batch_cells,
        "pool_mode": pool_mode,
        "table1_serial_seconds": table1_serial,
        "table1_parallel_seconds": table1_parallel,
        "figure2_serial_seconds": figure2_serial,
        "figure2_parallel_seconds": figure2_parallel,
        "table1_speedup_vs_seed": SEED_BASELINES["table1_seconds"] / table1_serial,
        "figure2_speedup_vs_seed": SEED_BASELINES["figure2_seconds"] / figure2_serial,
        "parallel_bit_identical": True,
    }
    if single_cpu:
        # A 1-CPU pool cannot beat serial; publishing the ratio anyway
        # would look like a regression (or, worse, an accidental win).
        record["parallel_speedup_skipped"] = (
            "single-CPU host: parallel runs kept for the bit-identity "
            "check only, speedup columns omitted"
        )
    else:
        record["table1_parallel_speedup"] = table1_serial / table1_parallel
        record["figure2_parallel_speedup"] = figure2_serial / figure2_parallel
    return record


def run_perf(
    jobs: int | None = None,
    machines: tuple[str, ...] = TABLE2_ORDER,
    out: str | Path | None = "BENCH_perf.json",
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> dict:
    """Measure micro, single-run and grid performance; write the record."""
    cpus = os.cpu_count() or 1
    single_cpu = cpus <= 1
    # Even on a single-CPU host the parallel leg runs with a real pool
    # (two workers) so the bit-identity check exercises cross-process
    # dispatch; resolve_jobs' floor of two permits exactly that.
    workers = resolve_jobs(jobs) if jobs is not None else max(cpus, 2)
    record = {
        "environment": {
            "cpu_count": cpus,
            "single_cpu": single_cpu,
            "jobs": workers,
            "pool_mode": pool_mode,
            "batch_cells": batch_cells,
            "note": (
                "parallel speedup requires cpu_count > 1; on a single-CPU "
                "container the vectorised kernels and the campaign planner "
                "carry the speedup and the parallel columns only "
                "demonstrate bit-identity, not speed"
            ),
        },
        "seed_baselines": SEED_BASELINES,
        "micro": _micro_benches(),
        "single_run": _single_run_benches(),
        "tracing": _tracing_benches(),
        "obs": _obs_benches(),
        "grid": _grid_benches(workers, machines, batch_cells, pool_mode, single_cpu),
    }
    # Measured last: the million-address pools would otherwise perturb
    # the cache/frequency state the earlier A/B sections were tuned on.
    record["translation"] = _translation_benches()
    # The campaign aggressor A/B shares the translation section's
    # batched-kernel regime, so it runs right after it.
    from repro.rowhammer.perf import campaign_benches

    record["campaign"] = campaign_benches()
    # Fleet economics are simulated-cost numbers (deterministic), so
    # ordering does not matter for them; they run after the wall-clock
    # sections anyway to keep those undisturbed.
    from repro.fleet.perf import fleet_benches

    record["fleet"] = fleet_benches()
    if out is not None:
        atomic_write(out, json.dumps(record, indent=2) + "\n")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.perf",
        description="measure serial/parallel grid wall-clock and decode throughput",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel grid runs "
        "(default: all CPUs, minimum 2 so the pool is exercised)",
    )
    parser.add_argument(
        "--batch-cells", type=int, default=None, metavar="K",
        help="bundle K consecutive grid cells per worker task in the "
        "parallel grid runs (default: one cell per task)",
    )
    parser.add_argument(
        "--pool-mode", choices=("persistent", "fresh"), default="persistent",
        help="worker pool lifecycle for the parallel grid runs "
        "(default persistent)",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json", metavar="PATH",
        help="output JSON path (default BENCH_perf.json)",
    )
    parser.add_argument(
        "--machines", nargs="*", default=list(TABLE2_ORDER), metavar="NAME",
        help="machine panel for the grid runs (default: all nine presets)",
    )
    args = parser.parse_args(argv)
    setup_logging("info")
    record = run_perf(
        jobs=args.jobs,
        machines=tuple(args.machines),
        out=args.out,
        batch_cells=args.batch_cells,
        pool_mode=args.pool_mode,
    )
    grid = record["grid"]
    micro = record["micro"]
    single = record["single_run"]
    tracing = record["tracing"]
    _LOG.info(
        "table1: serial %.1fs (seed %.1fs, %.1fx), parallel x%d %.1fs",
        grid["table1_serial_seconds"],
        SEED_BASELINES["table1_seconds"],
        grid["table1_speedup_vs_seed"],
        grid["jobs"],
        grid["table1_parallel_seconds"],
    )
    _LOG.info(
        "figure2: serial %.1fs (seed %.1fs, %.1fx), parallel x%d %.1fs",
        grid["figure2_serial_seconds"],
        SEED_BASELINES["figure2_seconds"],
        grid["figure2_speedup_vs_seed"],
        grid["jobs"],
        grid["figure2_parallel_seconds"],
    )
    if "parallel_speedup_skipped" in grid:
        _LOG.info("parallel speedup: %s", grid["parallel_speedup_skipped"])
    else:
        _LOG.info(
            "parallel speedup: table1 %.2fx, figure2 %.2fx (x%d workers)",
            grid["table1_parallel_speedup"],
            grid["figure2_parallel_speedup"],
            grid["jobs"],
        )
    _LOG.info(
        "single run (%s): batched %.2fs vs stepwise %.2fs (%.2fx), "
        "%.2fx vs seed panel, results identical",
        ",".join(single["machines"]),
        single["batched_seconds"],
        single["stepwise_seconds"],
        single["batching_speedup"],
        single["speedup_vs_seed"],
    )
    translation = record["translation"]
    _LOG.info(
        "translation (%s): %.1fM phys→DRAM/s, %.1fM DRAM→phys/s "
        "(%.0fx vs scalar, compile %.1fms, bit-identical)",
        translation["machine"],
        translation["translate_lookups_per_s"] / 1e6,
        translation["encode_lookups_per_s"] / 1e6,
        translation["batch_speedup_vs_scalar"],
        translation["compile_ms"],
    )
    campaign = record["campaign"]
    _LOG.info(
        "campaign (%s): planner %.1fM victims/s vs scalar %.1fk/s "
        "(%.0fx, aim-identical), trial of %d hammer trials in %.2fs",
        campaign["machine"],
        campaign["planner_victims_per_s"] / 1e6,
        campaign["scalar_victims_per_s"] / 1e3,
        campaign["planner_speedup_vs_scalar"],
        campaign["trial_hammer_trials"],
        campaign["trial_seconds"],
    )
    for key, speedup in micro["speedup_vs_seed"].items():
        _LOG.info(
            "%s: %.1fus (%.1fx vs seed)",
            key.removesuffix("_us"),
            micro["current"][key],
            speedup,
        )
    _LOG.info(
        "tracing overhead on %s: untraced %.2fs, traced %.2fs (%.1f%%)",
        tracing["machine"],
        tracing["untraced_seconds"],
        tracing["traced_seconds"],
        (tracing["overhead_ratio"] - 1.0) * 100.0,
    )
    obs_bench = record["obs"]
    _LOG.info(
        "telemetry overhead on %s: off %.2fs, on %.2fs (%.1f%%), "
        "%d events/run, artefacts identical: %s",
        obs_bench["machine"],
        obs_bench["telemetry_off_seconds"],
        obs_bench["telemetry_on_seconds"],
        (obs_bench["overhead_ratio"] - 1.0) * 100.0,
        obs_bench["events_per_run"],
        obs_bench["artefacts_identical"],
    )
    fleet = record["fleet"]
    _LOG.info(
        "fleet (%d machines, %d families): %.0f measurements/machine "
        "amortized vs %.0f cold (%.1fx), all correct: %s",
        fleet["fleet_size"],
        fleet["families"],
        fleet["amortized_measurements_per_machine"],
        fleet["cold_measurements_per_machine"],
        fleet["amortization_speedup"],
        fleet["all_correct"],
    )
    _LOG.info("written %s", args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
