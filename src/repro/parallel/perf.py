"""Perf harness: wall-clock evidence for the optimisation work.

Writes ``BENCH_perf.json`` with four families of numbers:

* **grid** — wall-clock seconds of the Table I and Figure 2 evaluation
  grids, serial and parallel, next to the recorded pre-optimisation
  (seed) baselines measured on the same reference container;
* **micro** — decode/parity throughput of the current hot-path kernels
  next to both the retained reference implementations
  (``bank_of_array_popcount`` / ``row_of_array_shift``) and the recorded
  seed numbers;
* **tracing** — one DRAMDig run with and without an active tracer
  (the zero-cost-when-off claim, measured), plus the traced run's
  per-phase breakdown (simulated seconds, wall seconds and pair
  measurements per pipeline step) lifted from its spans;
* **environment** — CPU count and worker count, because a parallel
  speedup claim without the CPU count is meaningless (on a single-CPU
  container the process pool cannot beat serial; the vectorised kernels
  carry the speedup there, and the JSON says so explicitly).

Run with ``python -m repro.parallel.perf [--jobs N] [--out PATH]``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.bits import parity_array
from repro.dram.presets import TABLE2_ORDER, preset
from repro.evalsuite.figure2 import run_figure2
from repro.evalsuite.table1 import run_table1
from repro.ioutil import atomic_write
from repro.logutil import get_logger, setup_logging
from repro.obs import tracing as obs
from repro.parallel.grid import resolve_jobs

__all__ = ["SEED_BASELINES", "run_perf", "main"]

_LOG = get_logger("repro.perf")

# Pre-optimisation numbers, measured on the reference container at the
# commit this harness was introduced (seed code, serial, same workloads
# as below). They anchor the speedup columns when the harness runs on
# the same class of hardware; rerun on different hardware, compare the
# "reference" micro columns instead — those are measured live.
SEED_BASELINES = {
    "table1_seconds": 41.0,
    "figure2_seconds": 13.1,
    "bank_of_array_us": 142.3,
    "row_of_array_us": 302.3,
    "parity_array_us": 37.9,
    "pool_size": 16384,
}

_MICRO_POOL = 16384


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall-clock seconds (best, not mean: least noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_benches() -> dict:
    mapping = preset("No.1").mapping
    rng = np.random.default_rng(0)
    pool = rng.integers(0, 2**33, _MICRO_POOL, dtype=np.uint64)
    mask = (1 << 14) | (1 << 17)

    current = {
        "bank_of_array_us": _best_of(lambda: mapping.bank_of_array(pool)) * 1e6,
        "row_of_array_us": _best_of(lambda: mapping.row_of_array(pool)) * 1e6,
        "parity_array_us": _best_of(lambda: parity_array(pool, mask)) * 1e6,
    }
    reference = {
        "bank_of_array_us": _best_of(lambda: mapping.bank_of_array_popcount(pool)) * 1e6,
        "row_of_array_us": _best_of(lambda: mapping.row_of_array_shift(pool)) * 1e6,
    }
    return {
        "pool_size": _MICRO_POOL,
        "current": current,
        "reference_impls": reference,
        "speedup_vs_seed": {
            key: SEED_BASELINES[key] / current[key]
            for key in ("bank_of_array_us", "row_of_array_us", "parity_array_us")
        },
        "speedup_vs_reference": {
            key: reference[key] / current[key] for key in reference
        },
    }


def _tracing_benches(machine_name: str = "No.1", repeats: int = 3) -> dict:
    """Tracing overhead on one full DRAMDig run, plus the phase breakdown.

    Same (preset, seed) run measured best-of-N twice: once with the
    tracer globals left ``None`` (the production default — instrumented
    hot paths reduce to a single is-None test) and once under an active
    tracer. The last traced run's spans supply the per-phase table: a
    phase span sits at path depth 2 (``dramdig/attempt-N/<phase>``).
    """
    from repro.core.dramdig import DramDig
    from repro.machine.machine import SimulatedMachine

    def run_once():
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=1)
        DramDig().run(machine)

    untraced = _best_of(run_once, repeats=repeats)

    tracer = obs.Tracer()

    def run_traced():
        nonlocal tracer
        tracer = obs.Tracer()
        with obs.activate(tracer):
            run_once()

    traced = _best_of(run_traced, repeats=repeats)
    phases: dict[str, dict] = {}
    for span in tracer.spans:
        if span.path.count("/") != 2:
            continue
        entry = phases.setdefault(
            span.name, {"sim_seconds": 0.0, "wall_seconds": 0.0, "measurements": 0}
        )
        entry["sim_seconds"] += (span.sim_ns or 0.0) / 1e9
        entry["wall_seconds"] += span.wall_s or 0.0
        entry["measurements"] += int(span.attrs.get("measurements", 0))
    return {
        "machine": machine_name,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "overhead_ratio": traced / untraced if untraced else float("nan"),
        "phases": phases,
    }


def _grid_benches(jobs: int, machines: tuple[str, ...]) -> dict:
    def timed(callable_) -> float:
        start = time.perf_counter()
        callable_()
        return time.perf_counter() - start

    table1_serial = timed(lambda: run_table1(seed=1, machines=machines))
    table1_parallel = timed(lambda: run_table1(seed=1, machines=machines, jobs=jobs))
    figure2_serial = timed(lambda: run_figure2(seed=1, machines=machines))
    figure2_parallel = timed(lambda: run_figure2(seed=1, machines=machines, jobs=jobs))
    return {
        "machines": list(machines),
        "jobs": jobs,
        "table1_serial_seconds": table1_serial,
        "table1_parallel_seconds": table1_parallel,
        "figure2_serial_seconds": figure2_serial,
        "figure2_parallel_seconds": figure2_parallel,
        "table1_speedup_vs_seed": SEED_BASELINES["table1_seconds"] / table1_serial,
        "figure2_speedup_vs_seed": SEED_BASELINES["figure2_seconds"] / figure2_serial,
        "table1_parallel_speedup": table1_serial / table1_parallel,
        "figure2_parallel_speedup": figure2_serial / figure2_parallel,
    }


def run_perf(
    jobs: int | None = None,
    machines: tuple[str, ...] = TABLE2_ORDER,
    out: str | Path | None = "BENCH_perf.json",
) -> dict:
    """Measure micro and grid performance; write and return the record."""
    workers = resolve_jobs(jobs if jobs is not None else -1)
    record = {
        "environment": {
            "cpu_count": os.cpu_count(),
            "note": (
                "parallel speedup requires cpu_count > 1; on a single-CPU "
                "container the vectorised kernels carry the speedup and the "
                "parallel columns only demonstrate bit-identity, not speed"
            ),
        },
        "seed_baselines": SEED_BASELINES,
        "micro": _micro_benches(),
        "tracing": _tracing_benches(),
        "grid": _grid_benches(workers, machines),
    }
    if out is not None:
        atomic_write(out, json.dumps(record, indent=2) + "\n")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.perf",
        description="measure serial/parallel grid wall-clock and decode throughput",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel grid runs (default: all CPUs)",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json", metavar="PATH",
        help="output JSON path (default BENCH_perf.json)",
    )
    parser.add_argument(
        "--machines", nargs="*", default=list(TABLE2_ORDER), metavar="NAME",
        help="machine panel for the grid runs (default: all nine presets)",
    )
    args = parser.parse_args(argv)
    setup_logging("info")
    record = run_perf(jobs=args.jobs, machines=tuple(args.machines), out=args.out)
    grid = record["grid"]
    micro = record["micro"]
    tracing = record["tracing"]
    _LOG.info(
        "table1: serial %.1fs (seed %.1fs, %.1fx), parallel x%d %.1fs",
        grid["table1_serial_seconds"],
        SEED_BASELINES["table1_seconds"],
        grid["table1_speedup_vs_seed"],
        grid["jobs"],
        grid["table1_parallel_seconds"],
    )
    _LOG.info(
        "figure2: serial %.1fs (seed %.1fs, %.1fx), parallel x%d %.1fs",
        grid["figure2_serial_seconds"],
        SEED_BASELINES["figure2_seconds"],
        grid["figure2_speedup_vs_seed"],
        grid["jobs"],
        grid["figure2_parallel_seconds"],
    )
    for key, speedup in micro["speedup_vs_seed"].items():
        _LOG.info(
            "%s: %.1fus (%.1fx vs seed)",
            key.removesuffix("_us"),
            micro["current"][key],
            speedup,
        )
    _LOG.info(
        "tracing overhead on %s: untraced %.2fs, traced %.2fs (%.1f%%)",
        tracing["machine"],
        tracing["untraced_seconds"],
        tracing["traced_seconds"],
        (tracing["overhead_ratio"] - 1.0) * 100.0,
    )
    _LOG.info("written %s", args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
