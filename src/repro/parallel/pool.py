"""Persistent warmed worker pools shared across grid dispatches.

Spawning a worker process costs a fresh interpreter plus the whole
``repro`` import chain — tens to hundreds of milliseconds — and the
historical runners paid it on *every* ``run_cells`` call: a CLI command
that renders three artefacts spawned (and discarded) three pools.  This
module makes that cost once-per-process:

* :class:`PoolManager` keeps one warmed :class:`ProcessPoolExecutor`
  per ``(start_method, workers)`` shape and leases it out to grid
  dispatches.  Releasing a leased pool parks it for the next dispatch
  instead of shutting it down; an interpreter-exit hook tears every
  parked pool down.
* Every worker runs :func:`warm_worker` at spawn, which pre-imports the
  heavy measurement modules so the first real cell pays no import tax —
  and per-cell timeouts measure the cell, not the spawn.
* :func:`worker_state` gives cell functions a per-worker memo for
  shared *read-only* state (decoded presets, domain-knowledge tables),
  keyed by a caller-chosen fingerprint, so consecutive cells on one
  worker stop rebuilding identical inputs.  The cache lives in a
  module global of the worker process; nothing about it is visible to,
  or shipped from, the parent.

Pools are an *isolation* resource as much as a speed one: the
supervisor must be able to kill a pool that holds a hung or crashed
worker.  A killed or broken pool is therefore **discarded**, never
parked — :meth:`PoolManager.discard` removes it from the registry so
the next lease builds a fresh one.

Determinism is unaffected by reuse.  Cells are pure functions of their
payloads (every seed ships in the payload), so whether two cells run in
one long-lived worker or two fresh ones cannot change a single byte of
any result; ``tests/evalsuite/test_pool.py`` pins this by running the
same cells through persistent and fresh pools.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

__all__ = [
    "POOL_MODES",
    "PoolManager",
    "get_pool_manager",
    "warm_worker",
    "worker_state",
]

POOL_MODES = ("persistent", "fresh")

# Modules pre-imported by every warmed worker. The list is the import
# closure the evaluation cells actually touch; importing it here moves
# the cost out of the first cell's (timed) execution window.
_WARM_IMPORTS = (
    "repro.core.dramdig",
    "repro.baselines.drama",
    "repro.baselines.xiao",
    "repro.dram.presets",
    "repro.machine.machine",
)

# Per-worker memo for shared read-only state; see :func:`worker_state`.
# Lives in the *worker* process — the parent's copy stays empty.
_WORKER_STATE: dict = {}


def warm_worker() -> None:
    """Pool initializer: pre-import the measurement stack.

    Runs once per worker process at spawn time.  Import errors are not
    swallowed — a worker that cannot import the package is useless, and
    failing loudly at spawn beats failing obscurely inside a cell.
    """
    from importlib import import_module

    for name in _WARM_IMPORTS:
        import_module(name)


def worker_state(key, builder):
    """Per-worker memo: build once, reuse for every later cell.

    ``key`` must capture *everything* the built value depends on (a
    preset name, a config fingerprint); ``builder`` is a zero-argument
    callable producing the value.  The value must be treated as
    read-only by every cell — mutating it would couple a cell's result
    to which cells ran before it on the same worker, breaking the
    bit-identical-to-serial guarantee the grid runners promise.

    Safe in the serial path too: it memoises in the calling process.
    """
    try:
        return _WORKER_STATE[key]
    except KeyError:
        value = _WORKER_STATE[key] = builder()
        return value


def clear_worker_state() -> None:
    """Drop every memoised value (test hook)."""
    _WORKER_STATE.clear()


class PoolManager:
    """Registry of warmed process pools, one per ``(start_method, workers)``.

    ``lease`` hands out a parked pool when one of the right shape exists
    and is healthy, else builds a fresh one; ``release`` parks it again.
    A pool leased in ``"fresh"`` mode is never parked — release shuts it
    down — which reproduces the historical spawn-per-dispatch behaviour
    for benchmarking and for callers that must not share workers.
    """

    def __init__(self) -> None:
        self._parked: dict[tuple[str, int], ProcessPoolExecutor] = {}
        self._modes: dict[int, str] = {}

    # ------------------------------------------------------------- lifecycle

    def lease(
        self,
        workers: int,
        start_method: str,
        mode: str = "persistent",
    ) -> ProcessPoolExecutor:
        """A warmed pool of exactly ``workers`` workers, ready to submit to."""
        if mode not in POOL_MODES:
            raise ValueError(f"pool mode must be one of {POOL_MODES}, got {mode!r}")
        key = (start_method, workers)
        pool = self._parked.pop(key, None) if mode == "persistent" else None
        if pool is not None and _pool_broken(pool):
            _shutdown_pool(pool)
            pool = None
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_context(start_method),
                initializer=warm_worker,
            )
        self._modes[id(pool)] = mode
        return pool

    def release(self, pool: ProcessPoolExecutor, start_method: str, workers: int) -> None:
        """Return a leased pool: park it (persistent) or shut it down (fresh).

        A broken pool must go through :meth:`discard` instead; release
        detects breakage defensively and discards rather than parking a
        corpse for the next caller to trip over.
        """
        mode = self._modes.pop(id(pool), "fresh")
        if mode != "persistent" or _pool_broken(pool):
            _shutdown_pool(pool)
            return
        previous = self._parked.get((start_method, workers))
        if previous is not None and previous is not pool:
            _shutdown_pool(previous)
        self._parked[(start_method, workers)] = pool

    def discard(self, pool: ProcessPoolExecutor) -> None:
        """Forget a leased pool without parking it (caller kills it)."""
        self._modes.pop(id(pool), None)

    def shutdown_all(self) -> None:
        """Shut down every parked pool (interpreter exit / test teardown)."""
        for pool in list(self._parked.values()):
            _shutdown_pool(pool)
        self._parked.clear()
        self._modes.clear()

    # ------------------------------------------------------------ inspection

    @property
    def parked_count(self) -> int:
        """Number of idle pools currently parked."""
        return len(self._parked)


def _pool_broken(pool: ProcessPoolExecutor) -> bool:
    """Whether the executor has flagged itself unusable."""
    return bool(getattr(pool, "_broken", False))


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - already-broken executors
        pass


_MANAGER: PoolManager | None = None


def get_pool_manager() -> PoolManager:
    """The process-wide pool manager (created on first use)."""
    global _MANAGER
    if _MANAGER is None:
        _MANAGER = PoolManager()
        atexit.register(_MANAGER.shutdown_all)
    return _MANAGER
