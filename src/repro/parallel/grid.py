"""Process-pool grid runner with deterministic, ordered reassembly.

Design constraints, in order of importance:

1. **Bit-identical to serial.** A cell is a pure function of its payload
   (every seed is computed by the parent and shipped in the payload, never
   derived from worker identity or scheduling order), and results are
   reassembled in submission order. Running with ``jobs=8`` must produce
   the same bytes as ``jobs=1``; ``tests/evalsuite/test_parallel.py``
   regresses this across processes.
2. **Spawn-safe.** Cells name their worker as a ``"module:function"``
   string resolved *inside* the worker after a fresh import, so nothing
   about the parent's state needs to survive pickling — the default start
   method is ``spawn`` (fork-safety of numpy's threadpools is not worth
   trusting), and payloads must contain only picklable values (ints,
   strings, tuples, frozen config dataclasses). Picklability is validated
   when the cell is *built*, in the parent, so a bad payload fails with
   the offending key named instead of an opaque traceback from inside the
   pool.
3. **Serial fallback.** ``jobs=None``/``0``/``1`` executes the cells in
   the calling process with no pool, no context, no pickling — the
   pre-existing behaviour and cost profile, byte for byte.

``run_cells`` here is the fail-fast path: the first cell error aborts the
run. The supervised, checkpointed runner that survives worker death and
resumes interrupted runs lives in :mod:`repro.parallel.supervisor`.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from collections.abc import Sequence
from dataclasses import dataclass, field, fields, is_dataclass
from importlib import import_module

__all__ = [
    "DEFAULT_START_METHOD",
    "CellExecutionError",
    "GridCell",
    "execute_cell",
    "fingerprint_cell",
    "fingerprint_payload",
    "resolve_jobs",
    "run_cells",
]

DEFAULT_START_METHOD = "spawn"

# Workers only ever resolve tasks inside the package itself: a cell that
# named an arbitrary module would turn pickled payloads into an import
# gadget, and there is no legitimate grid work outside the repro tree.
_ALLOWED_PREFIX = "repro."


class CellExecutionError(RuntimeError):
    """A grid cell's worker function raised.

    The message names the cell's task and content fingerprint so a
    failure deep inside a pooled run can be mapped back to the exact
    cell (and its checkpoint-journal entry) that produced it; the
    original exception rides along as ``__cause__``.
    """


@dataclass(frozen=True)
class GridCell:
    """One unit of grid work.

    Attributes:
        task: worker entry point as ``"module:function"``; the module must
            live inside the ``repro`` package.
        payload: keyword arguments for the entry point. Must be picklable
            and must carry every seed the cell needs — workers receive no
            other source of randomness.
    """

    task: str
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        module, _, function = self.task.partition(":")
        if not function or not module.startswith(_ALLOWED_PREFIX):
            raise ValueError(
                f"task must be 'repro.<module>:<function>', got {self.task!r}"
            )
        try:
            pickle.dumps(self.payload)
        except Exception:
            # Find and name the offending key: "payload isn't picklable"
            # without a key name still means a debugging session.
            for key, value in self.payload.items():
                try:
                    pickle.dumps(value)
                except Exception as error:
                    raise ValueError(
                        f"payload key {key!r} of cell {self.task} is not "
                        f"picklable ({type(value).__name__}): {error}"
                    ) from error
            raise ValueError(
                f"payload of cell {self.task} is not picklable"
            ) from None


def _canonical(value: object) -> str:
    """Deterministic, content-based rendering for fingerprinting.

    Dict entries are sorted so two payloads with the same items in
    different insertion order fingerprint identically; dataclasses render
    by qualified type name and field values, so frozen config objects
    participate by content.
    """
    if isinstance(value, dict):
        entries = sorted(
            (_canonical(key), _canonical(item)) for key, item in value.items()
        )
        return "{" + ",".join(f"{key}:{item}" for key, item in entries) + "}"
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        return open_ + ",".join(_canonical(item) for item in value) + close
    if is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            f"{spec.name}={_canonical(getattr(value, spec.name))}"
            for spec in fields(value)
        )
        return f"{type(value).__qualname__}({parts})"
    return repr(value)


def fingerprint_payload(task: str, payload: dict) -> str:
    """Content fingerprint of an arbitrary ``(task, payload)`` pair.

    The journal's fingerprint scheme, exposed for other content-addressed
    caches (the translation service keys compiled mappings with it):
    deterministic canonical rendering, harness keys (leading ``_``)
    excluded, SHA-256 hex digest.
    """
    digest = hashlib.sha256()
    digest.update(task.encode())
    digest.update(b"\x00")
    visible = {
        key: value
        for key, value in payload.items()
        if not (isinstance(key, str) and key.startswith("_"))
    }
    digest.update(_canonical(visible).encode())
    return digest.hexdigest()


def fingerprint_cell(cell: GridCell) -> str:
    """Content fingerprint of ``(task, payload)``.

    Two cells fingerprint identically exactly when they would compute the
    same result (cells are pure functions of their payloads), which is
    what lets the checkpoint journal key completed work by fingerprint
    and lets ``--resume`` skip finished cells across process lifetimes.

    Payload keys starting with ``_`` are *reserved for the harness*
    (per-cell trace destinations injected by
    :mod:`repro.obs.gridtrace`) and excluded: they never reach the
    worker function, so they cannot change the result — a traced run
    and an untraced run share journal entries.
    """
    return fingerprint_payload(cell.task, cell.payload)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value.

    ``None``/``0``/``1`` mean serial, ``-1`` means all CPUs, positive
    values pass through up to the host's capacity. Other negatives are
    rejected — the CLI layer already refuses them, and silently treating
    ``-8`` as "all CPUs" hid typos.

    Requests beyond ``cpu_count`` are clamped (with a logged warning)
    rather than honoured: every worker is CPU-bound for its whole cell,
    so oversubscribing spawn pools only adds context-switch thrash and
    per-worker spawn cost.  The clamp floor is 2, never 1 — on a
    single-CPU host an explicit multi-job request still gets a (small)
    pool, because under supervision the pool is an isolation boundary,
    not just a speedup (a cell that kills its process must not kill the
    run).  ``-1`` asks for "what the host has", so on one CPU it
    resolves to serial with no warning.
    """
    if jobs is None or jobs == 0:
        return 1
    cpus = max(os.cpu_count() or 1, 1)
    if jobs == -1:
        return cpus
    if jobs < 0:
        raise ValueError(
            f"jobs must be positive, -1 (all CPUs) or None/0 (serial); got {jobs}"
        )
    limit = max(2, cpus)
    if jobs > limit:
        logging.getLogger("repro.parallel").warning(
            "clamping --jobs %d to %d (host has %d CPU%s)",
            jobs,
            limit,
            cpus,
            "" if cpus == 1 else "s",
        )
        return limit
    return jobs


def execute_cell(cell: GridCell):
    """Run one cell in the current process (the worker entry point).

    Errors raised while *resolving* the task (bad module, missing
    function) propagate unchanged; errors raised by the worker function
    itself are wrapped in :class:`CellExecutionError` naming the cell's
    task and fingerprint, with the original exception as ``__cause__``.

    Reserved ``_``-prefixed payload keys are stripped before the worker
    function is called; when :mod:`repro.obs.gridtrace` injected a trace
    destination, the cell runs under its own tracer and writes a per-cell
    span file for the parent to stitch. When :mod:`repro.obs.telemetry`
    injected a stream path, the cell runs with a worker-side telemetry
    bus active, so per-phase and per-trial events emitted inside the
    cell land in the same live stream the parent appends to.
    """
    module_name, _, function_name = cell.task.partition(":")
    function = getattr(import_module(module_name), function_name)
    payload = cell.payload
    kwargs = payload
    reserved = None
    if any(isinstance(key, str) and key.startswith("_") for key in payload):
        kwargs, reserved = {}, {}
        for key, value in payload.items():
            (reserved if key.startswith("_") else kwargs)[key] = value

    def invoke():
        if reserved and "_trace_dir" in reserved:
            from repro.obs.gridtrace import run_cell_traced

            return run_cell_traced(function, kwargs, reserved)
        return function(**kwargs)

    try:
        if reserved and "_telemetry_path" in reserved:
            from repro.obs.telemetry import TelemetryBus, activate_bus

            with activate_bus(
                TelemetryBus(reserved["_telemetry_path"], source="worker")
            ):
                return invoke()
        return invoke()
    except Exception as error:
        raise CellExecutionError(
            f"grid cell {cell.task} (fingerprint {fingerprint_cell(cell)[:12]}) "
            f"failed: {type(error).__name__}: {error}"
        ) from error


def run_cells(
    cells: Sequence[GridCell],
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> list:
    """Execute ``cells`` and return their results in submission order.

    ``jobs`` <= 1 (the default) runs serially in-process. Larger values fan
    the cells out over a warmed worker pool leased from the process-wide
    :class:`~repro.parallel.pool.PoolManager`; ``Executor.map`` guarantees
    result order matches cell order regardless of completion order, which
    is what keeps rendered artefacts bit-identical to the serial path.
    ``pool_mode="persistent"`` (the default) parks the pool after the run
    for the next dispatch of the same shape; ``"fresh"`` reproduces the
    historical spawn-per-dispatch behaviour.

    ``batch_cells`` > 1 bundles that many consecutive cells into each
    submitted task (see :mod:`repro.parallel.batching`), trading per-cell
    dispatch overhead for coarser scheduling. Results are un-bundled back
    into per-cell order, so batching never changes a byte of output.

    This is the fail-fast runner: the first cell exception (in submission
    order) propagates and aborts the run. Use
    :func:`repro.parallel.run_cells_supervised` when a run must survive
    worker death, hangs, or interruption.
    """
    from repro.parallel.batching import (
        chunk_indices,
        execute_cell_batch,
        resolve_batch_cells,
    )
    from repro.parallel.pool import get_pool_manager

    cells = list(cells)
    workers = min(resolve_jobs(jobs), len(cells)) if cells else 1
    if workers <= 1:
        return [execute_cell(cell) for cell in cells]
    batch = resolve_batch_cells(batch_cells)
    manager = get_pool_manager()
    pool = manager.lease(workers, start_method, pool_mode)
    healthy = True
    try:
        if batch <= 1:
            return list(pool.map(execute_cell, cells))
        chunks = chunk_indices(range(len(cells)), batch)
        marker_lists = list(
            pool.map(
                execute_cell_batch,
                [[cells[i] for i in chunk] for chunk in chunks],
            )
        )
        results: list = [None] * len(cells)
        for chunk, markers in zip(chunks, marker_lists):
            for index, (status, value) in zip(chunk, markers):
                if status == "error":
                    raise CellExecutionError(str(value))
                results[index] = value
        return results
    except CellExecutionError:
        raise  # the worker raised cleanly; its pool is still usable
    except Exception:
        # Anything else (a broken pool above all) may have left workers
        # unusable; kill the pool rather than park a corpse.
        healthy = False
        raise
    finally:
        if healthy:
            manager.release(pool, start_method, workers)
        else:
            manager.discard(pool)
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken mid-shutdown
                pass
