"""Process-pool grid runner with deterministic, ordered reassembly.

Design constraints, in order of importance:

1. **Bit-identical to serial.** A cell is a pure function of its payload
   (every seed is computed by the parent and shipped in the payload, never
   derived from worker identity or scheduling order), and results are
   reassembled in submission order. Running with ``jobs=8`` must produce
   the same bytes as ``jobs=1``; ``tests/evalsuite/test_parallel.py``
   regresses this across processes.
2. **Spawn-safe.** Cells name their worker as a ``"module:function"``
   string resolved *inside* the worker after a fresh import, so nothing
   about the parent's state needs to survive pickling — the default start
   method is ``spawn`` (fork-safety of numpy's threadpools is not worth
   trusting), and payloads must contain only picklable values (ints,
   strings, tuples, frozen config dataclasses).
3. **Serial fallback.** ``jobs=None``/``0``/``1`` executes the cells in
   the calling process with no pool, no context, no pickling — the
   pre-existing behaviour and cost profile, byte for byte.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from multiprocessing import get_context

__all__ = [
    "DEFAULT_START_METHOD",
    "GridCell",
    "execute_cell",
    "resolve_jobs",
    "run_cells",
]

DEFAULT_START_METHOD = "spawn"

# Workers only ever resolve tasks inside the package itself: a cell that
# named an arbitrary module would turn pickled payloads into an import
# gadget, and there is no legitimate grid work outside the repro tree.
_ALLOWED_PREFIX = "repro."


@dataclass(frozen=True)
class GridCell:
    """One unit of grid work.

    Attributes:
        task: worker entry point as ``"module:function"``; the module must
            live inside the ``repro`` package.
        payload: keyword arguments for the entry point. Must be picklable
            and must carry every seed the cell needs — workers receive no
            other source of randomness.
    """

    task: str
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        module, _, function = self.task.partition(":")
        if not function or not module.startswith(_ALLOWED_PREFIX):
            raise ValueError(
                f"task must be 'repro.<module>:<function>', got {self.task!r}"
            )


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: None/0/1 = serial, negative = #CPUs."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def execute_cell(cell: GridCell):
    """Run one cell in the current process (the worker entry point)."""
    module_name, _, function_name = cell.task.partition(":")
    function = getattr(import_module(module_name), function_name)
    return function(**cell.payload)


def run_cells(
    cells: Sequence[GridCell],
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
) -> list:
    """Execute ``cells`` and return their results in submission order.

    ``jobs`` <= 1 (the default) runs serially in-process. Larger values fan
    the cells out over a :class:`ProcessPoolExecutor` using ``start_method``
    (``spawn`` by default); ``Executor.map`` guarantees result order matches
    cell order regardless of completion order, which is what keeps rendered
    artefacts bit-identical to the serial path.
    """
    cells = list(cells)
    workers = min(resolve_jobs(jobs), len(cells)) if cells else 1
    if workers <= 1:
        return [execute_cell(cell) for cell in cells]
    context = get_context(start_method)
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(execute_cell, cells))
