"""Supervised grid runner: worker death, hangs and interrupts degrade, not abort.

:func:`repro.parallel.grid.run_cells` is fail-fast by design — the first
cell error aborts the run and a dead worker raises
``BrokenProcessPool``, discarding every already-completed cell. This
module is the crash-safe alternative for long evaluation sweeps:

* **per-cell futures** instead of ``pool.map``, so one cell's fate never
  decides its neighbours';
* **worker-death detection** — a worker killed by the OS (OOM, segfault,
  ``kill -9``) breaks the pool; the supervisor harvests every result that
  completed before the death, respawns the pool, and resubmits the
  survivors. ``BrokenProcessPool`` never reaches the caller;
* **per-cell timeout and whole-run deadline** — a hung worker cannot be
  killed individually through ``ProcessPoolExecutor``, so a timeout
  tears the pool down, refunds the attempt of every *innocent* in-flight
  cell, and charges only the hung one;
* **per-cell retry with exponential backoff**, reusing the
  :class:`~repro.faults.recovery.DegradationEvent` vocabulary from the
  timing pipeline's recovery stack so a salvaged sweep documents its
  scars the same way a salvaged run does;
* **checkpoint journal** — every completed cell is recorded in an
  atomic JSONL journal (:class:`~repro.parallel.journal.CheckpointJournal`)
  keyed by content fingerprint; a later run over the same journal skips
  finished cells, which is what backs the CLI's ``--resume``.

The result is a :class:`GridOutcome` carrying results *and* failures:
partial success is a first-class outcome, and the evaluation renderers
print ``FAILED(reason)`` cells plus a failure manifest instead of
crashing. Determinism is preserved because cells are pure functions of
their payloads and results still reassemble in submission order — a
supervised run (cold or resumed) renders byte-identical artefacts to
the fail-fast serial run whenever every cell ultimately completes.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.recovery import DegradationEvent
from repro.obs import telemetry
from repro.obs import tracing as obs
from repro.parallel.batching import (
    chunk_indices,
    execute_cell_batch,
    resolve_batch_cells,
)
from repro.parallel.grid import (
    DEFAULT_START_METHOD,
    GridCell,
    execute_cell,
    fingerprint_cell,
    resolve_jobs,
)
from repro.parallel.journal import CheckpointJournal
from repro.parallel.pool import get_pool_manager

__all__ = [
    "CellFailure",
    "GridError",
    "GridOutcome",
    "GridPolicy",
    "run_cells_supervised",
]

# Supervisor poll interval: how often in-flight futures are checked for
# completion, start-of-execution, timeout and deadline expiry.
_TICK_SECONDS = 0.05

# Benign cell each fresh worker executes before real work is dispatched:
# it forces the worker to import the repro package, so per-cell timeouts
# measure cell execution rather than spawn + import cost.
_WARMUP_CELL = GridCell("repro.faults.gridfaults:echo_cell", {})
_WARMUP_TIMEOUT_SECONDS = 60.0


def _spawn_pool(workers: int, start_method: str, pool_mode: str) -> ProcessPoolExecutor:
    """Lease a pool and warm every worker (spawn + package import).

    Pools come from the process-wide
    :class:`~repro.parallel.pool.PoolManager`; in ``"persistent"`` mode a
    pool parked by an earlier dispatch is reused, its workers already
    spawned and imported, and the echo warmups below complete in
    microseconds.  Fresh workers pay the spawn here, once, so per-cell
    timeouts measure cell execution rather than spawn + import cost.
    """
    pool = get_pool_manager().lease(workers, start_method, pool_mode)
    warmups = [pool.submit(execute_cell, _WARMUP_CELL) for _ in range(workers)]
    for future in warmups:
        try:
            future.result(timeout=_WARMUP_TIMEOUT_SECONDS)
        except Exception:  # pragma: no cover - the real submit re-detects
            break
    return pool


class GridError(RuntimeError):
    """Raised by :meth:`GridOutcome.require` when any cell failed."""


@dataclass(frozen=True)
class GridPolicy:
    """Supervision knobs for one grid run.

    Attributes:
        cell_timeout_s: wall-clock seconds a cell may *execute* before it
            is declared hung and its pool is torn down (None = no limit).
            Enforced on pooled runs only — a serial run cannot pre-empt
            its own cell.
        run_deadline_s: wall-clock budget for the whole run; on expiry
            every unfinished cell fails with reason ``"run-deadline"``
            and whatever completed is returned as salvage.
        retries: extra attempts per cell after its first failure
            (error, worker death, or timeout).
        backoff_initial_s: real-time sleep before a cell's first retry.
        backoff_multiplier: backoff growth factor per further retry.
        backoff_max_s: backoff ceiling.
    """

    cell_timeout_s: float | None = None
    run_deadline_s: float | None = None
    retries: int = 0
    backoff_initial_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        if self.run_deadline_s is not None and self.run_deadline_s <= 0:
            raise ValueError("run_deadline_s must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_initial_s < 0:
            raise ValueError("backoff_initial_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")

    def backoff(self, failures: int) -> float:
        """Backoff before the retry that follows the ``failures``-th failure."""
        exponent = max(failures - 1, 0)
        return min(
            self.backoff_initial_s * self.backoff_multiplier**exponent,
            self.backoff_max_s,
        )


@dataclass(frozen=True)
class CellFailure:
    """One cell that exhausted its attempts (or its run's deadline).

    Attributes:
        index: the cell's position in the submitted sequence.
        cell: the cell itself (task + payload), for diagnosis and re-runs.
        fingerprint: content fingerprint (the checkpoint-journal key).
        reason: ``"error"``, ``"worker-death"``, ``"timeout"`` or
            ``"run-deadline"``.
        detail: stringified underlying error, when there was one.
        attempts: executions consumed before giving up.
    """

    index: int
    cell: GridCell
    fingerprint: str
    reason: str
    detail: str = ""
    attempts: int = 0

    @property
    def label(self) -> str:
        """Short display label: the payload's ``name`` when it has one."""
        name = self.cell.payload.get("name")
        return str(name) if name is not None else f"cell#{self.index}"

    def describe(self) -> str:
        """One-line rendering for failure manifests."""
        detail = f" — {self.detail}" if self.detail else ""
        return (
            f"{self.label}: {self.cell.task} FAILED({self.reason}) "
            f"after {self.attempts} attempt(s){detail}"
        )


@dataclass
class GridOutcome:
    """Everything a supervised grid run produced.

    Attributes:
        results: per-cell results in submission order; a failed cell's
            slot holds its :class:`CellFailure` instead of a result.
        failures: the failed cells, in submission order.
        events: recovery actions taken (retries, pool respawns,
            timeouts), in occurrence order.
        resumed: cells restored from the checkpoint journal instead of
            executed.
    """

    results: list
    failures: list[CellFailure] = field(default_factory=list)
    events: list[DegradationEvent] = field(default_factory=list)
    resumed: int = 0

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.failures

    @property
    def degraded(self) -> bool:
        """True when any recovery machinery fired (even if all cells won)."""
        return bool(self.events) or bool(self.failures)

    def require(self) -> list:
        """Return results, raising :class:`GridError` if any cell failed."""
        if self.failures:
            manifest = "; ".join(failure.describe() for failure in self.failures)
            raise GridError(
                f"{len(self.failures)} grid cell(s) failed: {manifest}"
            )
        return self.results


def run_cells_supervised(
    cells: Sequence[GridCell],
    jobs: int | None = None,
    start_method: str = DEFAULT_START_METHOD,
    policy: GridPolicy | None = None,
    journal: CheckpointJournal | str | Path | None = None,
    batch_cells: int | None = None,
    pool_mode: str = "persistent",
) -> GridOutcome:
    """Execute ``cells`` under supervision and return a :class:`GridOutcome`.

    Unlike :func:`repro.parallel.grid.run_cells`, this never raises for a
    cell failure, a dead worker, or an expired deadline — it returns
    whatever completed plus structured failure records. With a
    ``journal``, completed cells are checkpointed as they finish and
    cells already present in the journal are skipped, so an interrupted
    run resumed over the same journal re-executes only the missing cells
    and still produces byte-identical artefacts.

    ``batch_cells`` > 1 ships chunks of consecutive cells as single pool
    tasks (first-wave submissions only — every retry, quarantine and
    timeout re-run goes solo so per-cell attribution semantics are
    unchanged); batch results are un-bundled into the same per-cell
    journal entries and result slots the unbatched run writes.
    ``pool_mode`` selects persistent (reused, warmed) or fresh pools.
    """
    policy = policy if policy is not None else GridPolicy()
    if journal is not None and not isinstance(journal, CheckpointJournal):
        journal = CheckpointJournal(journal)
    cells = list(cells)
    fingerprints = [fingerprint_cell(cell) for cell in cells]
    results: list = [None] * len(cells)
    failures: dict[int, CellFailure] = {}
    events: list[DegradationEvent] = []
    resumed = 0

    pending: list[int] = []
    resumed_indices: list[int] = []
    for index, fingerprint in enumerate(fingerprints):
        if journal is not None:
            hit, value = journal.lookup(fingerprint)
            if hit:
                results[index] = value
                resumed += 1
                resumed_indices.append(index)
                continue
        pending.append(index)
    if resumed:
        obs.inc("grid.cells_resumed", resumed)

    # Live progress reporting. Everything below is guarded on the bus
    # being active: telemetry off costs one global load + is-None test
    # per settled cell, nothing else — the same discipline the tracing
    # hooks pin. The tallies feed the heartbeat stream only; they are
    # never consulted by the supervision logic itself.
    grid_started = time.monotonic()
    progress = {"done": 0, "failed": 0, "cached": 0}

    def report(index: int, status: str) -> None:
        if telemetry.current_bus() is None:
            return
        progress["done"] += 1
        if status == "failed":
            progress["failed"] += 1
        elif status == "cached":
            progress["cached"] += 1
        name = cells[index].payload.get("name")
        telemetry.emit(
            "cell",
            cell=str(name) if name is not None else f"cell#{index}",
            status=status,
            done=progress["done"],
            total=len(cells),
            failed=progress["failed"],
            cached=progress["cached"],
            eta_s=telemetry.estimate_eta_s(
                time.monotonic() - grid_started, progress["done"], len(cells)
            ),
        )

    if telemetry.current_bus() is not None:
        telemetry.emit("grid-start", total=len(cells), resumed=resumed)
        for index in resumed_indices:
            report(index, "cached")

    def checkpoint(index: int, value: object) -> None:
        results[index] = value
        if journal is not None:
            journal.record(fingerprints[index], cells[index].task, value)

    if pending:
        # jobs > 1 selects the pooled path even for a single pending cell:
        # under supervision the pool is not just a speedup but an isolation
        # boundary (a cell that kills its process must not kill the run).
        requested = resolve_jobs(jobs)
        workers = min(requested, len(pending))
        runner = _run_pooled if requested > 1 else _run_serial
        runner(
            cells,
            fingerprints,
            pending,
            workers,
            start_method,
            policy,
            checkpoint,
            failures,
            events,
            resolve_batch_cells(batch_cells),
            pool_mode,
            report,
        )

    ordered_failures = [failures[index] for index in sorted(failures)]
    for failure in ordered_failures:
        results[failure.index] = failure
    return GridOutcome(
        results=results,
        failures=ordered_failures,
        events=events,
        resumed=resumed,
    )


def _failure(
    cells, fingerprints, index, reason, detail, attempts
) -> CellFailure:
    return CellFailure(
        index=index,
        cell=cells[index],
        fingerprint=fingerprints[index],
        reason=reason,
        detail=detail,
        attempts=attempts,
    )


def _run_serial(
    cells, fingerprints, pending, workers, start_method, policy, checkpoint,
    failures, events, batch_cells=1, pool_mode="persistent", report=None,
) -> None:
    """In-process supervised execution (no pool, no pickling).

    Cell timeouts cannot be enforced here — a process cannot pre-empt
    its own synchronous call — but per-cell retry, backoff and the
    whole-run deadline all apply.
    """
    deadline = (
        time.monotonic() + policy.run_deadline_s
        if policy.run_deadline_s is not None
        else None
    )
    for index in pending:
        if deadline is not None and time.monotonic() > deadline:
            failures[index] = _failure(
                cells, fingerprints, index, "run-deadline",
                "run deadline expired before the cell started", 0,
            )
            if report is not None:
                report(index, "failed")
            continue
        attempts = 0
        while True:
            attempts += 1
            try:
                value = execute_cell(cells[index])
            except Exception as error:  # noqa: BLE001 - supervision boundary
                out_of_time = deadline is not None and time.monotonic() > deadline
                if attempts <= policy.retries and not out_of_time:
                    backoff = policy.backoff(attempts)
                    events.append(
                        obs.note_event(
                            DegradationEvent(
                                step="grid",
                                action="retry",
                                attempt=attempts,
                                detail=str(error),
                                backoff_s=backoff,
                                span=obs.current_path(),
                            )
                        )
                    )
                    time.sleep(backoff)
                    continue
                failures[index] = _failure(
                    cells, fingerprints, index, "error", str(error), attempts
                )
                if report is not None:
                    report(index, "failed")
                break
            checkpoint(index, value)
            obs.observe("grid.cell_attempts", attempts)
            if report is not None:
                report(index, "ok")
            break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard, including hung or wedged workers.

    ``shutdown`` alone never kills a worker stuck in a cell, so the
    worker processes are terminated directly first (via the executor's
    process table — a private attribute, accessed defensively).  The
    pool is dropped from the manager's lease table: a killed pool must
    never be parked for reuse.
    """
    get_pool_manager().discard(pool)
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken executors mid-shutdown
        pass


def _run_pooled(
    cells, fingerprints, pending, workers, start_method, policy, checkpoint,
    failures, events, batch_cells=1, pool_mode="persistent", report=None,
) -> None:
    """Pooled supervised execution with respawn-on-death and timeouts.

    Worker death is handled with **quarantine attribution**: the executor
    cannot say which in-flight cell crashed the dead worker, so nobody is
    charged at crash time — every in-flight cell becomes a *suspect* and
    is re-run solo (one cell in an otherwise empty pool). A solo crash is
    then a definitive attribution (charged against the cell's retry
    budget); a solo success clears the suspect. This costs a brief
    serialization after each crash but guarantees one poison cell cannot
    burn its innocent neighbours' retry budgets — with ``retries=0`` the
    poison cell alone fails and every other cell still completes.

    The in-flight unit is a *group* of cell indices. With
    ``batch_cells`` <= 1 every group holds one cell and the behaviour is
    exactly the historical per-cell protocol. Larger values chunk each
    submission wave into groups shipped as one pool task
    (:func:`~repro.parallel.batching.execute_cell_batch`), whose per-cell
    markers are un-bundled on harvest into the same checkpoint calls and
    retry decisions. Attribution stays per-cell: a crash quarantines every
    member of every in-flight group for solo re-runs (as it always did for
    single cells); a group that exceeds ``cell_timeout_s × len(group)``
    cannot reveal *which* member hung, so its members are refunded and
    quarantined too — the true hang then times out solo and is charged,
    innocents complete. Quarantine and retry submissions are always solo.
    """
    deadline = (
        time.monotonic() + policy.run_deadline_s
        if policy.run_deadline_s is not None
        else None
    )
    attempts: dict[int, int] = {index: 0 for index in pending}
    to_submit: list[int] = list(pending)
    waiting: dict[int, float] = {}  # index -> monotonic time it may resubmit
    quarantine: list[int] = []  # suspects re-run solo for crash attribution
    solo_index: int | None = None  # quarantined cell currently in flight
    inflight: dict = {}  # future -> list of indices (the submitted group)
    started: dict = {}  # future -> monotonic time first observed running
    abandoned = False  # a still-running future was walked away from
    pool = _spawn_pool(workers, start_method, pool_mode)

    def fail(index: int, reason: str, detail: str) -> None:
        failures[index] = _failure(
            cells, fingerprints, index, reason, detail, attempts[index]
        )
        if report is not None:
            report(index, "failed")

    def retry_or_fail(index: int, reason: str, detail: str) -> None:
        out_of_time = deadline is not None and time.monotonic() > deadline
        if attempts[index] <= policy.retries and not out_of_time:
            backoff = policy.backoff(attempts[index])
            events.append(
                obs.note_event(
                    DegradationEvent(
                        step="grid",
                        action="retry",
                        attempt=attempts[index],
                        detail=f"{reason}: {detail}" if detail else reason,
                        backoff_s=backoff,
                        span=obs.current_path(),
                    )
                )
            )
            waiting[index] = time.monotonic() + backoff
        else:
            fail(index, reason, detail)

    def respawn(cause: str) -> None:
        nonlocal pool
        _kill_pool(pool)
        pool = _spawn_pool(workers, start_method, pool_mode)
        events.append(
            obs.note_event(
                DegradationEvent(
                    step="grid",
                    action="respawn",
                    detail=cause,
                    span=obs.current_path(),
                )
            )
        )

    def settle(index: int, value: object) -> None:
        checkpoint(index, value)
        obs.observe("grid.cell_attempts", attempts[index])
        if report is not None:
            report(index, "ok")

    def harvest_or_crash(future, crashed: list[int]) -> None:
        """Resolve one finished future: results, cell errors, or casualties."""
        nonlocal solo_index
        group = inflight.pop(future)
        started.pop(future, None)
        if solo_index is not None and solo_index in group:
            solo_index = None
        try:
            value = future.result(timeout=0)
        except (BrokenProcessPool, CancelledError):
            crashed.extend(group)
        except Exception as error:  # noqa: BLE001 - supervision boundary
            # A group submission never raises per-cell errors (they come
            # back as markers), so this future carried a single cell.
            for index in group:
                retry_or_fail(index, "error", str(error))
        else:
            if len(group) == 1:
                settle(group[0], value)
            else:
                for index, (status, payload) in zip(group, value):
                    if status == "ok":
                        settle(index, payload)
                    else:
                        retry_or_fail(index, "error", str(payload))

    try:
        while to_submit or inflight or waiting or quarantine:
            now = time.monotonic()

            if deadline is not None and now > deadline:
                for index in to_submit + quarantine + list(waiting):
                    fail(index, "run-deadline", "run deadline expired")
                late_crashes: list[int] = []
                for future, group in list(inflight.items()):
                    if future.done():
                        harvest_or_crash(future, late_crashes)
                    else:
                        inflight.pop(future)
                        started.pop(future, None)
                        abandoned = True  # its worker is still running
                        for index in group:
                            fail(index, "run-deadline", "run deadline expired")
                for index in late_crashes:
                    fail(index, "run-deadline", "worker died at run deadline")
                to_submit.clear()
                waiting.clear()
                quarantine.clear()
                break

            for index, eligible_at in list(waiting.items()):
                if now >= eligible_at:
                    del waiting[index]
                    to_submit.append(index)

            def submit(group: list[int]) -> bool:
                """Submit one group; respawn and report False on a dead pool."""
                for index in group:
                    attempts[index] += 1
                try:
                    if len(group) == 1:
                        future = pool.submit(execute_cell, cells[group[0]])
                    else:
                        future = pool.submit(
                            execute_cell_batch, [cells[i] for i in group]
                        )
                    inflight[future] = group
                except BrokenProcessPool:
                    for index in group:
                        attempts[index] -= 1
                    respawn("pool broken at submission")
                    return False
                return True

            # Submission: quarantine runs solo (and blocks normal work so
            # a crash is attributable); otherwise chunk everything ready
            # into groups and fan out.
            if quarantine:
                if not inflight:
                    index = quarantine.pop(0)
                    if submit([index]):
                        solo_index = index
                    else:
                        quarantine.insert(0, index)
            elif to_submit:
                ready, to_submit = to_submit, []
                groups = chunk_indices(ready, batch_cells)
                for position, group in enumerate(groups):
                    if not submit(group):
                        for unsent in groups[position:]:
                            to_submit.extend(unsent)
                        break

            if not inflight:
                if waiting:
                    time.sleep(
                        min(
                            max(min(waiting.values()) - time.monotonic(), 0.0),
                            _TICK_SECONDS,
                        )
                    )
                continue

            done, _ = wait(
                set(inflight), timeout=_TICK_SECONDS, return_when=FIRST_COMPLETED
            )

            was_solo = solo_index
            crashed: list[int] = []
            for future in done:
                harvest_or_crash(future, crashed)

            if crashed:
                # A worker died. Give the executor a moment to settle the
                # remaining futures and harvest whatever completed before
                # the death; everything else is a casualty of the crash.
                if inflight:
                    wait(set(inflight), timeout=1.0)
                for future in list(inflight):
                    if future.done():
                        harvest_or_crash(future, crashed)
                    else:
                        group = inflight.pop(future)
                        started.pop(future, None)
                        if solo_index is not None and solo_index in group:
                            solo_index = None
                        crashed.extend(group)
                respawn("worker death (BrokenProcessPool)")
                if crashed == [was_solo]:
                    # The suspect crashed alone in the pool: definitive
                    # attribution, charged against its retry budget.
                    retry_or_fail(
                        was_solo, "worker-death", "worker process died mid-cell"
                    )
                else:
                    # Ambiguous: the dead worker was running *one* of these
                    # cells, but the executor cannot say which. Refund the
                    # attempt and quarantine them all for solo re-runs.
                    for index in crashed:
                        attempts[index] -= 1
                        quarantine.append(index)
                    quarantine.sort()
                continue

            # Track execution starts and enforce the per-cell timeout
            # (scaled by group size: a group of K cells legitimately runs
            # up to K cell-budgets). A hung worker can only be killed by
            # tearing the pool down, so on expiry the innocents in flight
            # are refunded their attempt and resubmitted. A hung *group*
            # cannot name its hung member: its members are refunded and
            # quarantined for solo re-runs, where a real hang times out
            # alone and is charged. A hung solo cell is charged directly.
            now = time.monotonic()
            for future in list(inflight):
                if future not in started and future.running():
                    started[future] = now
            if policy.cell_timeout_s is not None:
                hung = [
                    future
                    for future, began in started.items()
                    if future in inflight
                    and now - began > policy.cell_timeout_s * len(inflight[future])
                ]
                if hung:
                    hung_groups = [inflight[future] for future in hung]
                    for future in hung:
                        inflight.pop(future)
                        started.pop(future, None)
                    innocents: list[int] = []
                    for future, group in list(inflight.items()):
                        if future.done():
                            harvest_or_crash(future, crashed=[])
                        else:
                            inflight.pop(future)
                            started.pop(future, None)
                            for index in group:
                                attempts[index] -= 1  # refund: not their fault
                                innocents.append(index)
                    respawn(
                        "cell timeout: "
                        + ", ".join(
                            cells[i].task for group in hung_groups for i in group
                        )
                    )
                    for group in hung_groups:
                        if len(group) == 1:
                            index = group[0]
                            events.append(
                                obs.note_event(
                                    DegradationEvent(
                                        step="grid",
                                        action="timeout",
                                        attempt=attempts[index],
                                        detail=(
                                            f"{cells[index].task} exceeded "
                                            f"{policy.cell_timeout_s:g}s"
                                        ),
                                        span=obs.current_path(),
                                    )
                                )
                            )
                            retry_or_fail(
                                index,
                                "timeout",
                                "exceeded cell timeout of "
                                f"{policy.cell_timeout_s:g}s",
                            )
                        else:
                            events.append(
                                obs.note_event(
                                    DegradationEvent(
                                        step="grid",
                                        action="timeout",
                                        attempt=max(
                                            attempts[i] for i in group
                                        ),
                                        detail=(
                                            f"batch of {len(group)} cells "
                                            "exceeded "
                                            f"{policy.cell_timeout_s * len(group):g}s"
                                        ),
                                        span=obs.current_path(),
                                    )
                                )
                            )
                            for index in group:
                                attempts[index] -= 1  # ambiguity refund
                                quarantine.append(index)
                            quarantine.sort()
                    to_submit.extend(innocents)
    finally:
        # A pool is only parkable when it is provably idle and healthy:
        # the loop drained everything (no abandoned futures — the
        # deadline path walks away from still-running workers) and the
        # executor is not broken. Anything else is killed, not parked.
        if abandoned or inflight or getattr(pool, "_broken", False):
            _kill_pool(pool)
        else:
            get_pool_manager().release(pool, start_method, workers)
