"""Parallel evaluation engine.

The paper's evaluation grid — tools x machine presets x seeds — is
embarrassingly parallel: every cell builds its own
:class:`~repro.machine.machine.SimulatedMachine` from an explicit seed
and shares nothing with its neighbours. This package fans those cells
out to worker processes and reassembles the results in submission
order, so the parallel path is bit-identical to the serial one; the
``--jobs N`` flag of ``dramdig table1/figure2/table3/report`` is wired
through here.

Two runners share the cell model:

* :func:`run_cells` — fail-fast: the first cell error aborts the run
  (the seed behaviour, and still the default);
* :func:`run_cells_supervised` — crash-safe: per-cell retry with
  backoff, worker-death detection with pool respawn, per-cell timeouts,
  a whole-run deadline, and an atomic checkpoint journal that lets an
  interrupted run resume without re-executing finished cells
  (``--resume``/``--cell-timeout``/``--run-deadline``/``--grid-retries``
  on the CLI).
"""

from repro.parallel.batching import (
    chunk_indices,
    execute_cell_batch,
    resolve_batch_cells,
)
from repro.parallel.grid import (
    DEFAULT_START_METHOD,
    CellExecutionError,
    GridCell,
    execute_cell,
    fingerprint_cell,
    fingerprint_payload,
    resolve_jobs,
    run_cells,
)
from repro.parallel.journal import CheckpointJournal
from repro.parallel.pool import (
    POOL_MODES,
    PoolManager,
    get_pool_manager,
    worker_state,
)
from repro.parallel.supervisor import (
    CellFailure,
    GridError,
    GridOutcome,
    GridPolicy,
    run_cells_supervised,
)

__all__ = [
    "DEFAULT_START_METHOD",
    "POOL_MODES",
    "CellExecutionError",
    "CellFailure",
    "CheckpointJournal",
    "GridCell",
    "GridError",
    "GridOutcome",
    "GridPolicy",
    "PoolManager",
    "chunk_indices",
    "execute_cell",
    "execute_cell_batch",
    "fingerprint_cell",
    "fingerprint_payload",
    "get_pool_manager",
    "resolve_batch_cells",
    "resolve_jobs",
    "run_cells",
    "run_cells_supervised",
    "worker_state",
]
