"""Parallel evaluation engine.

The paper's evaluation grid — tools x machine presets x seeds — is
embarrassingly parallel: every cell builds its own
:class:`~repro.machine.machine.SimulatedMachine` from an explicit seed
and shares nothing with its neighbours. This package fans those cells
out to worker processes and reassembles the results in submission
order, so the parallel path is bit-identical to the serial one; the
``--jobs N`` flag of ``dramdig table1/figure2/table3/report`` is wired
through here.
"""

from repro.parallel.grid import (
    DEFAULT_START_METHOD,
    GridCell,
    execute_cell,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "DEFAULT_START_METHOD",
    "GridCell",
    "execute_cell",
    "resolve_jobs",
    "run_cells",
]
