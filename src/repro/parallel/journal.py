"""Checkpoint journal: crash-safe record of completed grid cells.

A journal is a JSONL file with one header line followed by one record
per completed cell, keyed by the cell's content fingerprint
(:func:`repro.parallel.grid.fingerprint_cell`). Results are pickled and
base64-encoded so arbitrary cell return values (dataclasses, tuples,
floats) round-trip *exactly* — the resume guarantee is byte-identical
artefacts, not approximately-equal ones.

Durability model: the journal is logically append-only (records are
never mutated or removed), but every flush rewrites the whole file
through :func:`repro.ioutil.atomic_write` (temp file + fsync +
``os.replace``). The file on disk is therefore always a *complete*
JSONL document: a run SIGKILLed mid-write leaves either the previous
journal or the new one, never a torn line. Journals are small — one
line per grid cell, and the paper's largest grid is a few dozen cells —
so the rewrite costs microseconds. Loading still tolerates corrupt
lines defensively (a journal hand-edited, copied mid-write over NFS, or
produced by a crashed pre-atomic writer): bad lines are skipped, not
fatal, because dropping a checkpoint only costs re-computing one cell.
Each skip is *loud* — logged as a warning and recorded as a
:class:`~repro.faults.recovery.DegradationEvent` in
:attr:`CheckpointJournal.load_events` — so a journal that silently
shrank is distinguishable from one that was simply never written.
"""

from __future__ import annotations

import base64
import json
import pickle
from pathlib import Path

from repro.faults.recovery import DegradationEvent
from repro.ioutil import atomic_write
from repro.logutil import get_logger

__all__ = ["CheckpointJournal", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

_LOG = get_logger("repro.parallel.journal")

JOURNAL_FORMAT = "dramdig-grid-journal"
JOURNAL_VERSION = 1


class CheckpointJournal:
    """Fingerprint-keyed store of completed cell results.

    Args:
        path: journal file location. A missing file is an empty journal;
            the file is created on the first recorded cell.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self.load_events: list[DegradationEvent] = []
        if self.path.exists():
            self._load()

    def _skip(self, detail: str) -> None:
        """Drop one unusable journal line, loudly: the cell re-computes,
        but the operator can see the journal was damaged."""
        event = DegradationEvent(
            step="journal", action="skipped-record", detail=detail
        )
        self.load_events.append(event)
        _LOG.warning("checkpoint journal %s: %s", self.path, event.describe())

    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError as error:
            self._skip(f"unreadable ({error}); starting empty")
            return
        # Undecodable byte sequences become replacement characters and
        # fail the per-line JSON check instead of aborting the load.
        text = raw.decode("utf-8", errors="replace")
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn/corrupt line (truncated tail of a non-atomic copy,
                # hand edit): skip it, re-compute that cell.
                self._skip(f"line {number}: not valid JSON (truncated?)")
                continue
            if not isinstance(record, dict):
                self._skip(f"line {number}: not an object")
                continue
            if record.get("format") == JOURNAL_FORMAT:
                continue  # header line
            fingerprint = record.get("fingerprint")
            if isinstance(fingerprint, str) and "result" in record:
                self._records[fingerprint] = record
            else:
                self._skip(f"line {number}: missing fingerprint/result")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def lookup(self, fingerprint: str) -> tuple[bool, object]:
        """Return ``(hit, result)`` for a fingerprint.

        A record whose payload fails to unpickle (e.g. the codebase
        changed the result dataclass between runs) counts as a miss —
        the cell simply re-runs.
        """
        record = self._records.get(fingerprint)
        if record is None:
            return False, None
        try:
            result = pickle.loads(base64.b64decode(record["result"]))
        except Exception:
            return False, None
        return True, result

    def record(self, fingerprint: str, task: str, result: object) -> None:
        """Checkpoint one completed cell and flush the journal to disk."""
        if fingerprint in self._records:
            return
        self._records[fingerprint] = {
            "fingerprint": fingerprint,
            "task": task,
            "result": base64.b64encode(pickle.dumps(result)).decode("ascii"),
        }
        self._flush()

    def _flush(self) -> None:
        header = json.dumps(
            {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}, sort_keys=True
        )
        lines = [header]
        lines += [
            json.dumps(record, sort_keys=True) for record in self._records.values()
        ]
        atomic_write(self.path, "\n".join(lines) + "\n")
