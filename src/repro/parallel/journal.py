"""Checkpoint journal: crash-safe record of completed grid cells.

A journal is a JSONL file with one header line followed by one record
per completed cell, keyed by the cell's content fingerprint
(:func:`repro.parallel.grid.fingerprint_cell`). Results are pickled and
base64-encoded so arbitrary cell return values (dataclasses, tuples,
floats) round-trip *exactly* — the resume guarantee is byte-identical
artefacts, not approximately-equal ones.

Durability model: the journal is logically append-only (records are
never mutated or removed), but every flush rewrites the whole file
through :func:`repro.ioutil.atomic_write` (temp file + fsync +
``os.replace``). The file on disk is therefore always a *complete*
JSONL document: a run SIGKILLed mid-write leaves either the previous
journal or the new one, never a torn line. Journals are small — one
line per grid cell, and the paper's largest grid is a few dozen cells —
so the rewrite costs microseconds. Loading still tolerates corrupt
lines defensively (a journal hand-edited or produced by a crashed
pre-atomic writer): bad lines are skipped, not fatal, because dropping
a checkpoint only costs re-computing one cell.
"""

from __future__ import annotations

import base64
import json
import pickle
from pathlib import Path

from repro.ioutil import atomic_write

__all__ = ["CheckpointJournal", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

JOURNAL_FORMAT = "dramdig-grid-journal"
JOURNAL_VERSION = 1


class CheckpointJournal:
    """Fingerprint-keyed store of completed cell results.

    Args:
        path: journal file location. A missing file is an empty journal;
            the file is created on the first recorded cell.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn/corrupt line: skip, re-compute that cell
            if not isinstance(record, dict):
                continue
            if record.get("format") == JOURNAL_FORMAT:
                continue  # header line
            fingerprint = record.get("fingerprint")
            if isinstance(fingerprint, str) and "result" in record:
                self._records[fingerprint] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def lookup(self, fingerprint: str) -> tuple[bool, object]:
        """Return ``(hit, result)`` for a fingerprint.

        A record whose payload fails to unpickle (e.g. the codebase
        changed the result dataclass between runs) counts as a miss —
        the cell simply re-runs.
        """
        record = self._records.get(fingerprint)
        if record is None:
            return False, None
        try:
            result = pickle.loads(base64.b64decode(record["result"]))
        except Exception:
            return False, None
        return True, result

    def record(self, fingerprint: str, task: str, result: object) -> None:
        """Checkpoint one completed cell and flush the journal to disk."""
        if fingerprint in self._records:
            return
        self._records[fingerprint] = {
            "fingerprint": fingerprint,
            "task": task,
            "result": base64.b64encode(pickle.dumps(result)).decode("ascii"),
        }
        self._flush()

    def _flush(self) -> None:
        header = json.dumps(
            {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}, sort_keys=True
        )
        lines = [header]
        lines += [
            json.dumps(record, sort_keys=True) for record in self._records.values()
        ]
        atomic_write(self.path, "\n".join(lines) + "\n")
