"""Machine-level DRAM geometry.

A geometry is the paper's "Config." quadruple — (channels, DIMMs per
channel, ranks per DIMM, banks per rank) — plus the total memory size and
the rank page size. From it every bit-count the tools need is derived:

* ``address_bits``     — log2(total bytes),
* ``num_bank_bits``    — log2(total banks) = number of bank address functions,
* ``num_column_bits``  — log2(rank page bytes) (13 for all standard ranks),
* ``num_row_bits``     — whatever remains.

These derived counts are exactly the "Specifications" + "System
Information" domain knowledge of paper Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.errors import GeometryError
from repro.dram.spec import DdrGeneration

__all__ = ["DramGeometry"]


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise GeometryError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DramGeometry:
    """Full DRAM organisation of one machine.

    Attributes:
        generation: DDR3 or DDR4.
        total_bytes: installed physical memory.
        channels: memory channels in use.
        dimms_per_channel: DIMMs on each channel.
        ranks_per_dimm: ranks per DIMM (1 = single-sided, 2 = double-sided).
        banks_per_rank: banks in each rank.
        row_bytes: rank page size (row size in bytes); 8 KiB standard.
        ecc: whether the DIMMs carry ECC (does not change addressing).
    """

    generation: DdrGeneration
    total_bytes: int
    channels: int
    dimms_per_channel: int
    ranks_per_dimm: int
    banks_per_rank: int
    row_bytes: int = 8192
    ecc: bool = False

    def __post_init__(self) -> None:
        _log2_exact(self.total_bytes, "total_bytes")
        _log2_exact(self.row_bytes, "row_bytes")
        for name in ("channels", "dimms_per_channel", "ranks_per_dimm", "banks_per_rank"):
            _log2_exact(getattr(self, name), name)
        if self.rows_per_bank < 1:
            raise GeometryError(
                f"geometry does not fit: {self.total_bytes} bytes across "
                f"{self.total_banks} banks of {self.row_bytes}-byte rows"
            )
        _log2_exact(self.rows_per_bank, "rows_per_bank")

    # ---------------------------------------------------------------- counts

    @property
    def total_banks(self) -> int:
        """Banks across the whole machine (channel and rank count as bank
        dimensions, as in the paper's 3-tuple DRAM address)."""
        return (
            self.channels * self.dimms_per_channel * self.ranks_per_dimm * self.banks_per_rank
        )

    @property
    def rows_per_bank(self) -> int:
        """Rows in each bank."""
        return self.total_bytes // (self.total_banks * self.row_bytes)

    @property
    def config_quadruple(self) -> tuple[int, int, int, int]:
        """The paper's Config. column: (channels, DIMMs, ranks, banks)."""
        return (
            self.channels,
            self.dimms_per_channel,
            self.ranks_per_dimm,
            self.banks_per_rank,
        )

    # ------------------------------------------------------------- bit maths

    @property
    def address_bits(self) -> int:
        """Physical address width: log2(total_bytes)."""
        return self.total_bytes.bit_length() - 1

    @property
    def num_bank_bits(self) -> int:
        """log2(total banks) — equals the number of bank address functions."""
        return self.total_banks.bit_length() - 1

    @property
    def num_column_bits(self) -> int:
        """Physical-address bits that select a byte within a row."""
        return self.row_bytes.bit_length() - 1

    @property
    def num_row_bits(self) -> int:
        """Physical-address bits that select a row within a bank."""
        return self.address_bits - self.num_bank_bits - self.num_column_bits

    def describe(self) -> str:
        """One-line human-readable summary."""
        gib = self.total_bytes / 2**30
        quad = ", ".join(str(n) for n in self.config_quadruple)
        return (
            f"{self.generation}, {gib:g}GiB, ({quad}): "
            f"{self.total_banks} banks x {self.rows_per_bank} rows x "
            f"{self.row_bytes} B"
        )
