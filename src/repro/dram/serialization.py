"""Save and load mappings as JSON.

The end product of a DRAMDig run is the mapping itself; real users persist
it and feed it to their rowhammer tooling later. The format is plain JSON
with bank functions written as bit-position lists (the paper's notation),
so files are diffable and hand-editable:

.. code-block:: json

    {
      "format": "dramdig-mapping-v1",
      "geometry": {"generation": "DDR3", "total_bytes": 8589934592, ...},
      "bank_functions": [[6], [14, 17], [15, 18], [16, 19]],
      "row_bits": [17, 18, ..., 32],
      "column_bits": [0, 1, ..., 5, 7, ..., 13]
    }

``AddressMapping`` round-trips through validation; ``BeliefMapping`` (no
geometry, no validation) uses the sibling v1-belief format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.bits import bits_of_mask, mask_of_bits
from repro.dram.belief import BeliefMapping
from repro.ioutil import atomic_write
from repro.dram.errors import MappingError
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrGeneration

__all__ = [
    "mapping_to_dict",
    "mapping_from_dict",
    "save_mapping",
    "load_mapping",
    "belief_to_dict",
    "belief_from_dict",
]

_MAPPING_FORMAT = "dramdig-mapping-v1"
_BELIEF_FORMAT = "dramdig-belief-v1"


def mapping_to_dict(mapping: AddressMapping) -> dict:
    """Serialise a validated mapping."""
    geometry = mapping.geometry
    return {
        "format": _MAPPING_FORMAT,
        "geometry": {
            "generation": str(geometry.generation),
            "total_bytes": geometry.total_bytes,
            "channels": geometry.channels,
            "dimms_per_channel": geometry.dimms_per_channel,
            "ranks_per_dimm": geometry.ranks_per_dimm,
            "banks_per_rank": geometry.banks_per_rank,
            "row_bytes": geometry.row_bytes,
            "ecc": geometry.ecc,
        },
        "bank_functions": [list(bits_of_mask(mask)) for mask in mapping.bank_functions],
        "row_bits": list(mapping.row_bits),
        "column_bits": list(mapping.column_bits),
    }


def mapping_from_dict(data: dict) -> AddressMapping:
    """Deserialise (and re-validate) a mapping.

    Raises:
        MappingError: on an unknown format marker or validation failure.
    """
    if data.get("format") != _MAPPING_FORMAT:
        raise MappingError(
            f"not a {_MAPPING_FORMAT} document (format={data.get('format')!r})"
        )
    geometry_data = data["geometry"]
    geometry = DramGeometry(
        generation=DdrGeneration(geometry_data["generation"]),
        total_bytes=geometry_data["total_bytes"],
        channels=geometry_data["channels"],
        dimms_per_channel=geometry_data["dimms_per_channel"],
        ranks_per_dimm=geometry_data["ranks_per_dimm"],
        banks_per_rank=geometry_data["banks_per_rank"],
        row_bytes=geometry_data.get("row_bytes", 8192),
        ecc=geometry_data.get("ecc", False),
    )
    return AddressMapping(
        geometry=geometry,
        bank_functions=tuple(
            mask_of_bits(bits) for bits in data["bank_functions"]
        ),
        row_bits=tuple(data["row_bits"]),
        column_bits=tuple(data["column_bits"]),
    )


def save_mapping(mapping: AddressMapping, path: str | Path) -> None:
    """Write a mapping to ``path`` as pretty-printed JSON (atomically:
    a crash mid-write leaves no truncated artefact)."""
    atomic_write(path, json.dumps(mapping_to_dict(mapping), indent=2) + "\n")


def load_mapping(path: str | Path) -> AddressMapping:
    """Read and validate a mapping from ``path``."""
    return mapping_from_dict(json.loads(Path(path).read_text()))


def belief_to_dict(belief: BeliefMapping) -> dict:
    """Serialise an unvalidated belief."""
    return {
        "format": _BELIEF_FORMAT,
        "address_bits": belief.address_bits,
        "bank_functions": [list(bits_of_mask(mask)) for mask in belief.bank_functions],
        "row_bits": list(belief.row_bits),
        "column_bits": list(belief.column_bits),
    }


def belief_from_dict(data: dict) -> BeliefMapping:
    """Deserialise a belief (no validation, by design)."""
    if data.get("format") != _BELIEF_FORMAT:
        raise MappingError(
            f"not a {_BELIEF_FORMAT} document (format={data.get('format')!r})"
        )
    return BeliefMapping(
        address_bits=data["address_bits"],
        bank_functions=tuple(mask_of_bits(bits) for bits in data["bank_functions"]),
        row_bits=tuple(data["row_bits"]),
        column_bits=tuple(data["column_bits"]),
    )
