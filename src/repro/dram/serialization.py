"""Save and load mappings as JSON.

The end product of a DRAMDig run is the mapping itself; real users persist
it and feed it to their rowhammer tooling later. The format is plain JSON
with bank functions written as bit-position lists (the paper's notation),
so files are diffable and hand-editable:

.. code-block:: json

    {
      "format": "dramdig-mapping-v1",
      "geometry": {"generation": "DDR3", "total_bytes": 8589934592, ...},
      "bank_functions": [[6], [14, 17], [15, 18], [16, 19]],
      "row_bits": [17, 18, ..., 32],
      "column_bits": [0, 1, ..., 5, 7, ..., 13]
    }

``AddressMapping`` round-trips through validation; ``BeliefMapping`` (no
geometry, no validation) uses the sibling v1-belief format.

:class:`~repro.dram.compiled.CompiledMapping` has its own
``dramdig-compiled-v1`` format so production consumers can ship the GF(2)
matrix pair without re-deriving it from a mapping. Matrix rows are
bit-position lists like bank functions. Loading *revalidates the inverse*:
a stored ``addr_mtx`` that does not actually invert ``dram_mtx`` (a
hand-edited or corrupted file) is rejected with ``MappingError`` rather
than silently producing wrong DRAM→phys translations.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.bits import bits_of_mask, mask_of_bits
from repro.dram.belief import BeliefMapping
from repro.ioutil import atomic_write
from repro.dram.errors import MappingError
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrGeneration

__all__ = [
    "mapping_to_dict",
    "mapping_from_dict",
    "save_mapping",
    "load_mapping",
    "belief_to_dict",
    "belief_from_dict",
    "compiled_to_dict",
    "compiled_from_dict",
    "save_compiled",
    "load_compiled",
]

_MAPPING_FORMAT = "dramdig-mapping-v1"
_BELIEF_FORMAT = "dramdig-belief-v1"
_COMPILED_FORMAT = "dramdig-compiled-v1"


def mapping_to_dict(mapping: AddressMapping) -> dict:
    """Serialise a validated mapping."""
    geometry = mapping.geometry
    return {
        "format": _MAPPING_FORMAT,
        "geometry": {
            "generation": str(geometry.generation),
            "total_bytes": geometry.total_bytes,
            "channels": geometry.channels,
            "dimms_per_channel": geometry.dimms_per_channel,
            "ranks_per_dimm": geometry.ranks_per_dimm,
            "banks_per_rank": geometry.banks_per_rank,
            "row_bytes": geometry.row_bytes,
            "ecc": geometry.ecc,
        },
        "bank_functions": [list(bits_of_mask(mask)) for mask in mapping.bank_functions],
        "row_bits": list(mapping.row_bits),
        "column_bits": list(mapping.column_bits),
    }


def mapping_from_dict(data: dict) -> AddressMapping:
    """Deserialise (and re-validate) a mapping.

    Raises:
        MappingError: on an unknown format marker or validation failure.
    """
    if data.get("format") != _MAPPING_FORMAT:
        raise MappingError(
            f"not a {_MAPPING_FORMAT} document (format={data.get('format')!r})"
        )
    geometry_data = data["geometry"]
    geometry = DramGeometry(
        generation=DdrGeneration(geometry_data["generation"]),
        total_bytes=geometry_data["total_bytes"],
        channels=geometry_data["channels"],
        dimms_per_channel=geometry_data["dimms_per_channel"],
        ranks_per_dimm=geometry_data["ranks_per_dimm"],
        banks_per_rank=geometry_data["banks_per_rank"],
        row_bytes=geometry_data.get("row_bytes", 8192),
        ecc=geometry_data.get("ecc", False),
    )
    return AddressMapping(
        geometry=geometry,
        bank_functions=tuple(
            mask_of_bits(bits) for bits in data["bank_functions"]
        ),
        row_bits=tuple(data["row_bits"]),
        column_bits=tuple(data["column_bits"]),
    )


def save_mapping(mapping: AddressMapping, path: str | Path) -> None:
    """Write a mapping to ``path`` as pretty-printed JSON (atomically:
    a crash mid-write leaves no truncated artefact)."""
    atomic_write(path, json.dumps(mapping_to_dict(mapping), indent=2) + "\n")


def load_mapping(path: str | Path) -> AddressMapping:
    """Read and validate a mapping from ``path``."""
    return mapping_from_dict(json.loads(Path(path).read_text()))


def compiled_to_dict(compiled) -> dict:
    """Serialise a compiled mapping's GF(2) matrix pair."""
    return {
        "format": _COMPILED_FORMAT,
        "address_bits": compiled.address_bits,
        "column_width": compiled.column_width,
        "row_width": compiled.row_width,
        "bank_width": compiled.bank_width,
        "dram_mtx": [list(bits_of_mask(mask)) for mask in compiled.dram_mtx],
        "addr_mtx": (
            None
            if compiled.addr_mtx is None
            else [list(bits_of_mask(mask)) for mask in compiled.addr_mtx]
        ),
    }


def compiled_from_dict(data: dict):
    """Deserialise (and revalidate) a compiled mapping.

    Raises:
        MappingError: on an unknown format marker, out-of-range matrix
            rows, inconsistent component widths, or a stored ``addr_mtx``
            that does not invert ``dram_mtx`` over GF(2).
    """
    from repro.analysis.bits import parity
    from repro.dram.compiled import CompiledMapping

    if data.get("format") != _COMPILED_FORMAT:
        raise MappingError(
            f"not a {_COMPILED_FORMAT} document (format={data.get('format')!r})"
        )
    address_bits = data["address_bits"]
    dram_mtx = tuple(mask_of_bits(bits) for bits in data["dram_mtx"])
    stored_inverse = data.get("addr_mtx")
    addr_mtx = (
        None
        if stored_inverse is None
        else tuple(mask_of_bits(bits) for bits in stored_inverse)
    )
    widths = (data["column_width"], data["row_width"], data["bank_width"])
    if any(width < 0 for width in widths) or sum(widths) != len(dram_mtx):
        raise MappingError(
            f"component widths {widths} do not partition the "
            f"{len(dram_mtx)}-row forward matrix"
        )
    limit = 1 << address_bits
    for name, matrix in (("dram_mtx", dram_mtx), ("addr_mtx", addr_mtx or ())):
        for mask in matrix:
            if mask >= limit:
                raise MappingError(
                    f"{name} row {mask:#x} exceeds the {address_bits}-bit "
                    "address space"
                )
    if addr_mtx is not None:
        # Revalidate the inverse: feed every input basis vector through
        # forward then inverse and demand the identity. O(bits²), cheap,
        # and the only defence against a hand-edited inverse silently
        # encoding addresses into the wrong rows.
        if len(addr_mtx) != address_bits or len(dram_mtx) != address_bits:
            raise MappingError(
                "stored inverse requires square matrices of address_bits rows"
            )
        for position in range(address_bits):
            basis = 1 << position
            linear = 0
            for out_bit, mask in enumerate(dram_mtx):
                linear |= parity(basis & mask) << out_bit
            back = 0
            for out_bit, mask in enumerate(addr_mtx):
                back |= parity(linear & mask) << out_bit
            if back != basis:
                raise MappingError(
                    f"stored addr_mtx does not invert dram_mtx "
                    f"(basis bit {position} round-trips to {back:#x})"
                )
    return CompiledMapping(
        address_bits=address_bits,
        dram_mtx=dram_mtx,
        addr_mtx=addr_mtx,
        column_width=data["column_width"],
        row_width=data["row_width"],
        bank_width=data["bank_width"],
    )


def save_compiled(compiled, path: str | Path) -> None:
    """Write a compiled mapping to ``path`` as pretty-printed JSON
    (atomically, like :func:`save_mapping`)."""
    atomic_write(path, json.dumps(compiled_to_dict(compiled), indent=2) + "\n")


def load_compiled(path: str | Path):
    """Read and revalidate a compiled mapping from ``path``."""
    return compiled_from_dict(json.loads(Path(path).read_text()))


def belief_to_dict(belief: BeliefMapping) -> dict:
    """Serialise an unvalidated belief."""
    return {
        "format": _BELIEF_FORMAT,
        "address_bits": belief.address_bits,
        "bank_functions": [list(bits_of_mask(mask)) for mask in belief.bank_functions],
        "row_bits": list(belief.row_bits),
        "column_bits": list(belief.column_bits),
    }


def belief_from_dict(data: dict) -> BeliefMapping:
    """Deserialise a belief (no validation, by design)."""
    if data.get("format") != _BELIEF_FORMAT:
        raise MappingError(
            f"not a {_BELIEF_FORMAT} document (format={data.get('format')!r})"
        )
    return BeliefMapping(
        address_bits=data["address_bits"],
        bank_functions=tuple(mask_of_bits(bits) for bits in data["bank_functions"]),
        row_bits=tuple(data["row_bits"]),
        column_bits=tuple(data["column_bits"]),
    )
