"""The nine machine settings of the paper's Table II, as ground-truth
mappings for the simulator.

Each preset packages a name, CPU/microarchitecture labels, the Config.
quadruple, and the reverse-engineered mapping the paper reports. These are
the *ground truths* our simulated machines implement and our tools must
re-discover.

One paper erratum is corrected here and recorded in EXPERIMENTS.md: Table II
lists machine No.5 (Haswell i7-4790, 16 GiB) with row bits 17~32, identical
to the 8 GiB machine No.2 — but a 16 GiB machine has 34 physical address
bits, so with 13 column bits and 5 bank functions the row range must be
18~33. We use the self-consistent 18~33 (the printed range is a copy of the
No.2 row and cannot address 16 GiB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import mask_of_bits
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrGeneration
from repro.memctrl.timing import NoiseParams

__all__ = ["MachinePreset", "PRESETS", "preset", "preset_names", "TABLE2_ORDER"]

GIB = 2**30


@dataclass(frozen=True)
class MachinePreset:
    """One evaluated machine setting.

    Attributes:
        name: the paper's label ("No.1" .. "No.9").
        microarchitecture: Intel microarchitecture name.
        cpu: CPU model.
        mapping: the ground-truth address mapping (Table II row).
        xiao_compatible: whether Xiao et al.'s tool can handle this setting
            (paper Section IV-A: it fails on No.2 and No.6-9).
        hammer_vulnerability: mean weak cells per row for the rowhammer
            fault model, calibrated so Table III totals land in the paper's
            ballpark (No.5's DIMMs are barely vulnerable).
        noise_profile: machine-specific timing-noise level. The paper's
            Figure 2 shows DRAMA never finishing on No.3 and No.7 while
            DRAMDig handles them; we model those two laptops as having a
            markedly noisier timing channel (thermal throttling, aggressive
            power management), which DRAMDig's repeated-minimum measurements
            and retries absorb and DRAMA's single-shot measurements do not.
    """

    name: str
    microarchitecture: str
    cpu: str
    mapping: AddressMapping
    xiao_compatible: bool
    hammer_vulnerability: float
    noise_profile: NoiseParams = NoiseParams()

    @property
    def geometry(self) -> DramGeometry:
        """The machine's DRAM geometry."""
        return self.mapping.geometry


def _ranges(*spans: tuple[int, int]) -> tuple[int, ...]:
    """Expand inclusive (low, high) spans into a flat bit-position tuple."""
    positions: list[int] = []
    for low, high in spans:
        positions.extend(range(low, high + 1))
    return tuple(positions)


def _preset(
    name: str,
    microarchitecture: str,
    cpu: str,
    generation: DdrGeneration,
    gib: int,
    quad: tuple[int, int, int, int],
    functions: list[tuple[int, ...]],
    row_spans: list[tuple[int, int]],
    column_spans: list[tuple[int, int]],
    xiao_compatible: bool,
    hammer_vulnerability: float,
    noise_profile: NoiseParams = NoiseParams(),
) -> MachinePreset:
    channels, dimms, ranks, banks = quad
    geometry = DramGeometry(
        generation=generation,
        total_bytes=gib * GIB,
        channels=channels,
        dimms_per_channel=dimms,
        ranks_per_dimm=ranks,
        banks_per_rank=banks,
    )
    mapping = AddressMapping(
        geometry=geometry,
        bank_functions=tuple(mask_of_bits(bits) for bits in functions),
        row_bits=_ranges(*row_spans),
        column_bits=_ranges(*column_spans),
    )
    return MachinePreset(
        name=name,
        microarchitecture=microarchitecture,
        cpu=cpu,
        mapping=mapping,
        xiao_compatible=xiao_compatible,
        hammer_vulnerability=hammer_vulnerability,
        noise_profile=noise_profile,
    )


# Timing noise of the two laptops DRAMA never finished on (see Figure 2):
# frequent refresh/power-management spikes contaminate single-shot
# measurements an order of magnitude more often than on the quiet machines.
_NOISY_LAPTOP = NoiseParams(
    jitter_sigma_ns=4.0, outlier_probability=0.25, outlier_extra_ns=500.0
)


PRESETS: dict[str, MachinePreset] = {
    machine.name: machine
    for machine in [
        _preset(
            "No.1",
            "Sandy Bridge",
            "i5-2400",
            DdrGeneration.DDR3,
            8,
            (2, 1, 1, 8),
            [(6,), (14, 17), (15, 18), (16, 19)],
            [(17, 32)],
            [(0, 5), (7, 13)],
            xiao_compatible=True,
            hammer_vulnerability=0.105,
        ),
        _preset(
            "No.2",
            "Ivy Bridge",
            "i5-3230M",
            DdrGeneration.DDR3,
            8,
            (2, 1, 2, 8),
            [(14, 18), (15, 19), (16, 20), (17, 21), (7, 8, 9, 12, 13, 18, 19)],
            [(18, 32)],
            [(0, 6), (8, 13)],
            xiao_compatible=False,
            hammer_vulnerability=0.285,
        ),
        _preset(
            "No.3",
            "Ivy Bridge",
            "i5-3230M",
            DdrGeneration.DDR3,
            4,
            (1, 1, 2, 8),
            [(13, 17), (14, 18), (15, 19), (16, 20)],
            [(17, 31)],
            [(0, 12)],
            xiao_compatible=True,
            hammer_vulnerability=0.07,
            noise_profile=_NOISY_LAPTOP,
        ),
        _preset(
            "No.4",
            "Haswell",
            "i5-4210U",
            DdrGeneration.DDR3,
            4,
            (1, 1, 1, 8),
            [(13, 16), (14, 17), (15, 18)],
            [(16, 31)],
            [(0, 12)],
            xiao_compatible=True,
            hammer_vulnerability=0.056,
        ),
        _preset(
            "No.5",
            "Haswell",
            "i7-4790",
            DdrGeneration.DDR3,
            16,
            (2, 1, 2, 8),
            [(14, 18), (15, 19), (16, 20), (17, 21), (7, 8, 9, 12, 13, 18, 19)],
            # Paper prints 18~32 (copy of No.2); 16 GiB needs 18~33.
            [(18, 33)],
            [(0, 6), (8, 13)],
            xiao_compatible=True,
            hammer_vulnerability=0.0033,
        ),
        _preset(
            "No.6",
            "Skylake",
            "i5-6600",
            DdrGeneration.DDR4,
            16,
            (2, 1, 2, 16),
            [(7, 14), (15, 19), (16, 20), (17, 21), (18, 22), (8, 9, 12, 13, 18, 19)],
            [(19, 33)],
            [(0, 7), (9, 13)],
            xiao_compatible=False,
            hammer_vulnerability=0.035,
        ),
        _preset(
            "No.7",
            "Skylake",
            "i5-6200U",
            DdrGeneration.DDR4,
            4,
            (1, 1, 1, 8),
            [(6, 13), (14, 16), (15, 17)],
            [(16, 31)],
            [(0, 12)],
            xiao_compatible=False,
            hammer_vulnerability=0.028,
            noise_profile=_NOISY_LAPTOP,
        ),
        _preset(
            "No.8",
            "Coffee Lake",
            "i5-9400",
            DdrGeneration.DDR4,
            8,
            (1, 1, 1, 16),
            [(6, 13), (14, 17), (15, 18), (16, 19)],
            [(17, 32)],
            [(0, 12)],
            xiao_compatible=False,
            hammer_vulnerability=0.021,
        ),
        _preset(
            "No.9",
            "Coffee Lake",
            "i5-9400",
            DdrGeneration.DDR4,
            16,
            (2, 1, 2, 16),
            [(7, 14), (15, 19), (16, 20), (17, 21), (18, 22), (8, 9, 12, 13, 18, 19)],
            [(19, 33)],
            [(0, 7), (9, 13)],
            xiao_compatible=False,
            hammer_vulnerability=0.035,
        ),
    ]
}

# The order Table II / Figure 2 / Table III iterate machines in.
TABLE2_ORDER: tuple[str, ...] = tuple(f"No.{i}" for i in range(1, 10))


def preset(name: str) -> MachinePreset:
    """Look up a preset by its paper label (e.g. ``"No.6"``).

    Raises:
        KeyError: with the list of valid names, for unknown labels.
    """
    if name not in PRESETS:
        raise KeyError(f"unknown machine preset {name!r}; valid: {sorted(PRESETS)}")
    return PRESETS[name]


def preset_names() -> tuple[str, ...]:
    """All preset labels in Table II order."""
    return TABLE2_ORDER
