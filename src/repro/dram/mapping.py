"""The physical-address -> DRAM-address mapping.

An :class:`AddressMapping` is what the whole paper is about: the function
the memory controller implements in wiring and the tools reverse-engineer.
It consists of

* ``bank_functions`` — XOR masks; bank bit *i* is the parity of the physical
  address ANDed with mask *i* (paper Section III-A, empirical observation 1),
* ``row_bits``       — the physical-address bit positions forming the row
  index (lowest position = row bit 0),
* ``column_bits``    — likewise for the column index.

The class provides scalar and vectorized decoding, validation (the mapping
must be a bijection onto (bank, row, column) space), and GF(2)-equivalence
comparison used to verify reverse-engineered results against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import NamedTuple

import numpy as np

from repro.analysis import bits as bitutil
from repro.analysis import gf2
from repro.dram.errors import MappingError
from repro.dram.geometry import DramGeometry

__all__ = ["DramAddress", "AddressMapping"]


class DramAddress(NamedTuple):
    """The paper's 3-tuple DRAM address (channel/DIMM/rank folded into bank)."""

    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMapping:
    """A complete DRAM address mapping for one machine.

    Attributes:
        geometry: the machine's DRAM organisation.
        bank_functions: XOR masks, one per bank bit (ordered; function *i*
            produces bank-index bit *i*).
        row_bits: physical-address bit positions of the row index, ascending.
        column_bits: physical-address bit positions of the column index,
            ascending.
    """

    geometry: DramGeometry
    bank_functions: tuple[int, ...]
    row_bits: tuple[int, ...]
    column_bits: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "bank_functions", tuple(self.bank_functions))
        object.__setattr__(self, "row_bits", tuple(sorted(self.row_bits)))
        object.__setattr__(self, "column_bits", tuple(sorted(self.column_bits)))
        self._validate()

    # ------------------------------------------------------------ validation

    def _validate(self) -> None:
        geometry = self.geometry
        if len(self.bank_functions) != geometry.num_bank_bits:
            raise MappingError(
                f"need {geometry.num_bank_bits} bank functions for "
                f"{geometry.total_banks} banks, got {len(self.bank_functions)}"
            )
        if len(self.row_bits) != geometry.num_row_bits:
            raise MappingError(
                f"need {geometry.num_row_bits} row bits, got {len(self.row_bits)}"
            )
        if len(self.column_bits) != geometry.num_column_bits:
            raise MappingError(
                f"need {geometry.num_column_bits} column bits, "
                f"got {len(self.column_bits)}"
            )
        top = geometry.address_bits
        all_positions = set(self.row_bits) | set(self.column_bits)
        for mask in self.bank_functions:
            if mask <= 0:
                raise MappingError("bank functions must be non-empty masks")
            all_positions.update(bitutil.bits_of_mask(mask))
        if set(self.row_bits) & set(self.column_bits):
            raise MappingError("row bits and column bits overlap")
        out_of_range = [p for p in all_positions if p >= top]
        if out_of_range:
            raise MappingError(
                f"bit positions {sorted(out_of_range)} exceed the "
                f"{top}-bit physical address space"
            )
        if all_positions != set(range(top)):
            missing = sorted(set(range(top)) - all_positions)
            raise MappingError(f"address bits {missing} map to nothing")
        if not gf2.is_independent(self.bank_functions):
            raise MappingError("bank functions are linearly dependent over GF(2)")
        # Bijectivity: the combined GF(2) output matrix (row-bit selectors,
        # column-bit selectors, bank functions) must have full rank.
        outputs = (
            [bitutil.bit(p) for p in self.row_bits]
            + [bitutil.bit(p) for p in self.column_bits]
            + list(self.bank_functions)
        )
        if gf2.rank(outputs) != top:
            raise MappingError(
                "mapping is not a bijection: combined output matrix is rank-"
                f"deficient ({gf2.rank(outputs)} < {top})"
            )

    # -------------------------------------------------------------- decoding

    def bank_of(self, phys_addr: int) -> int:
        """Bank index of a physical address (XOR-hash output)."""
        self._check_address(phys_addr)
        index = 0
        for position, mask in enumerate(self.bank_functions):
            index |= bitutil.parity(phys_addr & mask) << position
        return index

    def row_of(self, phys_addr: int) -> int:
        """Row index of a physical address."""
        self._check_address(phys_addr)
        return bitutil.extract_bits(phys_addr, self.row_bits)

    def column_of(self, phys_addr: int) -> int:
        """Column (byte-within-row) index of a physical address."""
        self._check_address(phys_addr)
        return bitutil.extract_bits(phys_addr, self.column_bits)

    def dram_address(self, phys_addr: int) -> DramAddress:
        """Full (bank, row, column) decode."""
        return DramAddress(
            bank=self.bank_of(phys_addr),
            row=self.row_of(phys_addr),
            column=self.column_of(phys_addr),
        )

    def encode(self, address: DramAddress) -> int:
        """Inverse decode: the unique physical address of a DRAM address.

        Solves the GF(2) system; the mapping is validated bijective so a
        solution always exists and is unique.
        """
        if not 0 <= address.bank < self.geometry.total_banks:
            raise MappingError(f"bank {address.bank} out of range")
        if not 0 <= address.row < self.geometry.rows_per_bank:
            raise MappingError(f"row {address.row} out of range")
        if not 0 <= address.column < self.geometry.row_bytes:
            raise MappingError(f"column {address.column} out of range")
        phys = bitutil.deposit_bits(address.row, self.row_bits)
        phys |= bitutil.deposit_bits(address.column, self.column_bits)
        # Solve for the bits appearing only in bank functions. Gaussian
        # elimination over the free bits (those not already fixed by row or
        # column positions).
        fixed = set(self.row_bits) | set(self.column_bits)
        free_bits = sorted(
            {
                position
                for mask in self.bank_functions
                for position in bitutil.bits_of_mask(mask)
                if position not in fixed
            }
        )
        # Residual parity each function must still produce from free bits.
        targets = []
        free_mask_rows = []
        for position, mask in enumerate(self.bank_functions):
            want = (address.bank >> position) & 1
            have = bitutil.parity(phys & mask)
            targets.append(want ^ have)
            free_mask_rows.append(
                bitutil.extract_bits(mask, free_bits)
            )  # mask restricted to free bits, compacted
        solution = _solve_gf2_system(free_mask_rows, targets, len(free_bits))
        if solution is None:  # pragma: no cover - impossible for valid mapping
            raise MappingError("internal error: bank system unsolvable")
        phys |= bitutil.deposit_bits(solution, free_bits)
        return phys

    # ------------------------------------------------------ vectorized forms
    #
    # The array decoders run on every timing measurement the simulator
    # performs, so they use per-mapping 16-bit-slice lookup tables (built
    # lazily, cached on the instance): one gather per touched address slice
    # evaluates *all* bank functions (or row/column selectors) at once,
    # instead of one popcount pass per function. The popcount forms are kept
    # as ``*_popcount`` references; a property test pins their equality.

    @cached_property
    def _bank_tables(self) -> tuple[tuple[np.uint64, np.ndarray], ...]:
        return bitutil.packed_parity_tables(self.bank_functions)

    @cached_property
    def _row_tables(self) -> tuple[tuple[np.uint64, np.ndarray], ...]:
        return bitutil.extract_tables(self.row_bits)

    @cached_property
    def _column_tables(self) -> tuple[tuple[np.uint64, np.ndarray], ...]:
        return bitutil.extract_tables(self.column_bits)

    def bank_of_array(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bank_of` over a uint64 array."""
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        packed = bitutil.gather_xor(addrs, self._bank_tables)
        if packed is None:
            return np.zeros(addrs.shape, dtype=np.uint32)
        return packed.astype(np.uint32)

    def row_of_array(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row_of` over a uint64 array."""
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        row = bitutil.gather_xor(addrs, self._row_tables)
        if row is None:
            return np.zeros(addrs.shape, dtype=np.uint64)
        return row

    def column_of_array(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`column_of` over a uint64 array."""
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        column = bitutil.gather_xor(addrs, self._column_tables)
        if column is None:
            return np.zeros(addrs.shape, dtype=np.uint64)
        return column

    # Popcount/shift reference decoders — the seed implementations, retained
    # as the ground truth the lookup-table decode is property-tested against
    # and as the perf harness's before/after comparison point.

    def bank_of_array_popcount(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Reference per-function popcount decode (pre-LUT implementation)."""
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        index = np.zeros(addrs.shape, dtype=np.uint32)
        for position, mask in enumerate(self.bank_functions):
            index |= bitutil.parity_array(addrs, mask).astype(np.uint32) << np.uint32(position)
        return index

    def row_of_array_shift(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Reference per-bit shift decode (pre-LUT implementation)."""
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        row = np.zeros(addrs.shape, dtype=np.uint64)
        for index, position in enumerate(self.row_bits):
            row |= ((addrs >> np.uint64(position)) & np.uint64(1)) << np.uint64(index)
        return row

    # ------------------------------------------------------- compiled form

    @cached_property
    def compiled(self):
        """The mapping compiled to a GF(2) matrix pair, built once.

        Returns a :class:`repro.dram.compiled.CompiledMapping` whose batch
        kernels are bit-identical to the scalar decode/encode here — the
        form every high-throughput consumer (translation service, verify,
        rowhammer campaigns) uses.
        """
        from repro.dram.compiled import CompiledMapping

        return CompiledMapping.from_mapping(self)

    # ------------------------------------------------------------ comparison

    def same_bank(self, addr_a: int, addr_b: int) -> bool:
        """True when two physical addresses land in the same bank."""
        return self.bank_of(addr_a) == self.bank_of(addr_b)

    def is_row_conflict(self, addr_a: int, addr_b: int) -> bool:
        """True for same-bank-different-row (SBDR) pairs — the pairs the
        timing channel flags as slow."""
        return self.same_bank(addr_a, addr_b) and self.row_of(addr_a) != self.row_of(addr_b)

    def equivalent_to(self, other: "AddressMapping") -> bool:
        """Mapping equivalence as the paper's Table II implies it.

        Bank functions are compared as GF(2) spans (any basis of the same
        hash subspace addresses banks identically, only the bank *numbering*
        differs); row and column bit sets are compared exactly.
        """
        return (
            gf2.span_equal(self.bank_functions, other.bank_functions)
            and self.row_bits == other.row_bits
            and self.column_bits == other.column_bits
        )

    def describe(self) -> str:
        """Render the mapping the way Table II prints a machine row."""
        functions = ", ".join(bitutil.format_mask(m) for m in self.bank_functions)
        return (
            f"bank functions: {functions}\n"
            f"row bits:    {_format_bit_ranges(self.row_bits)}\n"
            f"column bits: {_format_bit_ranges(self.column_bits)}"
        )

    def _check_address(self, phys_addr: int) -> None:
        if not 0 <= phys_addr < self.geometry.total_bytes:
            raise MappingError(
                f"physical address {phys_addr:#x} outside "
                f"{self.geometry.total_bytes:#x}-byte memory"
            )


def _solve_gf2_system(rows: list[int], targets: list[int], width: int) -> int | None:
    """Solve ``rows @ x = targets`` over GF(2); returns x as an int or None.

    ``rows`` are equation masks over ``width`` unknowns (bit i of a row =
    coefficient of unknown i).
    """
    # Augment each equation with its target bit at position `width`.
    equations = [row | (target << width) for row, target in zip(rows, targets)]
    basis: list[int] = []
    for equation in equations:
        reduced = equation
        for element in basis:
            low_self = reduced & ((1 << width) - 1)
            low_elem = element & ((1 << width) - 1)
            if low_self and low_elem and (low_self ^ low_elem) < low_self:
                reduced ^= element
        if reduced & ((1 << width) - 1):
            basis.append(reduced)
            basis.sort(key=lambda e: e & ((1 << width) - 1), reverse=True)
        elif reduced >> width:
            return None  # 0 = 1 -> inconsistent
    solution = 0
    # Back-substitute from the largest leading bit downwards.
    for element in sorted(basis, key=lambda e: e & ((1 << width) - 1)):
        coefficients = element & ((1 << width) - 1)
        lead = bitutil.highest_bit(coefficients)
        value = (element >> width) ^ bitutil.parity(coefficients & solution & ~bitutil.bit(lead))
        solution |= value << lead
    # Verify (free variables default to 0; the system may be underdetermined).
    for row, target in zip(rows, targets):
        if bitutil.parity(row & solution) != target:
            return None
    return solution


def _format_bit_ranges(positions: tuple[int, ...]) -> str:
    """Render sorted bit positions as the paper does: ``0~5, 7~13``."""
    if not positions:
        return "(none)"
    ranges: list[str] = []
    start = previous = positions[0]
    for position in positions[1:]:
        if position == previous + 1:
            previous = position
            continue
        ranges.append(f"{start}~{previous}" if previous > start else str(start))
        start = previous = position
    ranges.append(f"{start}~{previous}" if previous > start else str(start))
    return ", ".join(ranges)
