"""DDR3/DDR4 specification knowledge.

The paper's first domain-knowledge source: "We refer to DDR3 and DDR4
specifications to acquire physical-address bit numbers that index banks,
rows and columns on specific DRAM chips" (Section III-A, citing the Micron
MT41K/MT40A data sheets). This module encodes the relevant slice of those
data sheets: per-generation chip organisations (banks, page size per chip
width) and the standard speed-bin timings the memory-controller simulator
uses.

Key derived fact used by Step 3 (fine-grained detection): the number of
physical-address bits that select a *column* equals ``log2(rank page size)``
— for a standard non-ECC 64-bit rank this is 8 KiB (x8 chips: 1 KiB chip
page x 8 chips; x16 chips: 2 KiB chip page x 4 chips), i.e. 13 bits, which
matches every row of the paper's Table II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.errors import GeometryError

__all__ = [
    "DdrGeneration",
    "ChipSpec",
    "DdrTimings",
    "chip_spec",
    "default_timings",
    "rank_page_bytes",
    "speed_bin_names",
    "timings_for_bin",
    "RANK_DATA_WIDTH_BITS",
]

# JEDEC rank data width (non-ECC). ECC ranks carry 72 bits but the extra 8
# are not addressable, so address-mapping maths always uses 64.
RANK_DATA_WIDTH_BITS = 64


class DdrGeneration(enum.Enum):
    """DRAM generation; determines bank counts and default timings."""

    DDR3 = "DDR3"
    DDR4 = "DDR4"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ChipSpec:
    """Organisation of a single DRAM chip, as read off a data sheet.

    Attributes:
        generation: DDR3 or DDR4.
        width_bits: chip data width (x4 / x8 / x16).
        banks: banks per chip (DDR3: 8; DDR4: 16, except x16 parts: 8).
        page_bytes: chip page (row) size in bytes.
    """

    generation: DdrGeneration
    width_bits: int
    banks: int
    page_bytes: int

    @property
    def chips_per_rank(self) -> int:
        """Chips ganged to fill the 64-bit rank data bus."""
        return RANK_DATA_WIDTH_BITS // self.width_bits


# Data-sheet table: (generation, width) -> (banks per chip, chip page bytes).
# DDR3: Micron MT41K (8 banks; x4/x8 1KiB page, x16 2KiB page).
# DDR4: Micron MT40A (4 bank groups x 4 banks = 16 for x4/x8;
#        2 bank groups x 4 banks = 8 for x16; x4/x8 1KiB page, x16 2KiB).
_CHIP_TABLE: dict[tuple[DdrGeneration, int], tuple[int, int]] = {
    (DdrGeneration.DDR3, 4): (8, 1024),
    (DdrGeneration.DDR3, 8): (8, 1024),
    (DdrGeneration.DDR3, 16): (8, 2048),
    (DdrGeneration.DDR4, 4): (16, 1024),
    (DdrGeneration.DDR4, 8): (16, 1024),
    (DdrGeneration.DDR4, 16): (8, 2048),
}


def chip_spec(generation: DdrGeneration, width_bits: int) -> ChipSpec:
    """Look up a chip organisation in the data-sheet table.

    >>> chip_spec(DdrGeneration.DDR3, 8).banks
    8
    """
    key = (generation, width_bits)
    if key not in _CHIP_TABLE:
        raise GeometryError(
            f"no data-sheet entry for {generation} x{width_bits}; "
            f"supported widths are x4, x8, x16"
        )
    banks, page = _CHIP_TABLE[key]
    return ChipSpec(generation=generation, width_bits=width_bits, banks=banks, page_bytes=page)


def rank_page_bytes(spec: ChipSpec) -> int:
    """Row (page) size of a whole rank: chip page x chips per rank.

    8 KiB for every standard configuration, hence 13 column bits.
    """
    return spec.page_bytes * spec.chips_per_rank


@dataclass(frozen=True)
class DdrTimings:
    """JEDEC speed-bin timings (nanoseconds) used by the latency model.

    Attributes:
        trcd: RAS-to-CAS delay (activate a row before a column access).
        trp: row precharge time (close a row before opening another).
        tcas: CAS latency (column access on an open row).
        tras: minimum row-open time.
        trefi: average refresh command interval.
        trfc: refresh cycle time (bank unavailable during refresh).
    """

    trcd: float
    trp: float
    tcas: float
    tras: float
    trefi: float
    trfc: float

    def __post_init__(self) -> None:
        for field in ("trcd", "trp", "tcas", "tras", "trefi", "trfc"):
            if getattr(self, field) <= 0:
                raise GeometryError(f"timing parameter {field} must be positive")

    @property
    def row_hit_ns(self) -> float:
        """DRAM-side latency when the target row is already open."""
        return self.tcas

    @property
    def row_closed_ns(self) -> float:
        """DRAM-side latency when the bank is precharged (no open row)."""
        return self.trcd + self.tcas

    @property
    def row_conflict_ns(self) -> float:
        """DRAM-side latency when a different row is open (the timing channel
        exploited by every tool in the paper)."""
        return self.trp + self.trcd + self.tcas


# Representative speed bins: DDR3-1600 CL11 and DDR4-2400 CL17.
_DDR3_TIMINGS = DdrTimings(
    trcd=13.75, trp=13.75, tcas=13.75, tras=35.0, trefi=7800.0, trfc=260.0
)
_DDR4_TIMINGS = DdrTimings(
    trcd=14.16, trp=14.16, tcas=14.16, tras=32.0, trefi=7800.0, trfc=350.0
)


def default_timings(generation: DdrGeneration) -> DdrTimings:
    """Default JEDEC timings for a generation."""
    if generation is DdrGeneration.DDR3:
        return _DDR3_TIMINGS
    return _DDR4_TIMINGS


# JEDEC speed bins: name -> (tRCD, tRP, tCAS, tRAS) in nanoseconds.
# Absolute nanoseconds barely move across bins (the CL count scales with
# the clock); what changes is bandwidth, which the address-mapping maths
# never sees. tREFI/tRFC follow the generation defaults.
_SPEED_BINS: dict[str, tuple[float, float, float, float]] = {
    "DDR3-1066": (13.13, 13.13, 13.13, 37.5),
    "DDR3-1333": (13.50, 13.50, 13.50, 36.0),
    "DDR3-1600": (13.75, 13.75, 13.75, 35.0),
    "DDR3-1866": (13.91, 13.91, 13.91, 34.0),
    "DDR4-2133": (14.06, 14.06, 14.06, 33.0),
    "DDR4-2400": (14.16, 14.16, 14.16, 32.0),
    "DDR4-2666": (14.25, 14.25, 14.25, 32.0),
    "DDR4-3200": (13.75, 13.75, 13.75, 32.0),
}


def speed_bin_names() -> tuple[str, ...]:
    """All known speed-bin labels."""
    return tuple(_SPEED_BINS)


def timings_for_bin(name: str) -> DdrTimings:
    """Timings for a JEDEC speed bin, e.g. ``"DDR4-3200"``.

    Raises:
        GeometryError: for an unknown bin label.
    """
    if name not in _SPEED_BINS:
        raise GeometryError(
            f"unknown speed bin {name!r}; known: {', '.join(_SPEED_BINS)}"
        )
    trcd, trp, tcas, tras = _SPEED_BINS[name]
    generation = DdrGeneration.DDR3 if name.startswith("DDR3") else DdrGeneration.DDR4
    defaults = default_timings(generation)
    return DdrTimings(
        trcd=trcd, trp=trp, tcas=tcas, tras=tras,
        trefi=defaults.trefi, trfc=defaults.trfc,
    )
