"""Human-readable explanations of address mappings.

Renders the paper's Figure-1-style bit layout: for each physical address
bit, which role(s) it plays — row index, column index, and/or input to a
bank address function — with the shared bits (the whole point of the
paper's Step 3) called out explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import bits_of_mask, format_mask
from repro.dram.mapping import AddressMapping

__all__ = ["BitRole", "explain_bit", "layout_lines", "explain_mapping"]


@dataclass(frozen=True)
class BitRole:
    """The roles one physical address bit plays.

    Attributes:
        position: the physical address bit.
        row_index: index within the row field, or None.
        column_index: index within the column field, or None.
        functions: indices of the bank functions this bit feeds.
    """

    position: int
    row_index: int | None
    column_index: int | None
    functions: tuple[int, ...]

    @property
    def is_shared(self) -> bool:
        """True when the bit feeds a bank function *and* the row or column
        index — the bits Step 1 misses and Step 3 recovers."""
        return bool(self.functions) and (
            self.row_index is not None or self.column_index is not None
        )

    def describe(self) -> str:
        """Short role string, e.g. ``row[1] + bank2 (shared)``."""
        parts = []
        if self.row_index is not None:
            parts.append(f"row[{self.row_index}]")
        if self.column_index is not None:
            parts.append(f"col[{self.column_index}]")
        parts.extend(f"bank{index}" for index in self.functions)
        text = " + ".join(parts) if parts else "(unused)"
        if self.is_shared:
            text += "  (shared)"
        return text


def explain_bit(mapping: AddressMapping, position: int) -> BitRole:
    """The roles of one bit of ``mapping``."""
    if not 0 <= position < mapping.geometry.address_bits:
        raise ValueError(
            f"bit {position} outside the {mapping.geometry.address_bits}-bit space"
        )
    row_index = (
        mapping.row_bits.index(position) if position in mapping.row_bits else None
    )
    column_index = (
        mapping.column_bits.index(position)
        if position in mapping.column_bits
        else None
    )
    functions = tuple(
        index
        for index, mask in enumerate(mapping.bank_functions)
        if position in bits_of_mask(mask)
    )
    return BitRole(
        position=position,
        row_index=row_index,
        column_index=column_index,
        functions=functions,
    )


def layout_lines(mapping: AddressMapping) -> list[str]:
    """One line per address bit, MSB first."""
    lines = []
    for position in reversed(range(mapping.geometry.address_bits)):
        role = explain_bit(mapping, position)
        lines.append(f"{position:>3}  {role.describe()}")
    return lines


def explain_mapping(mapping: AddressMapping) -> str:
    """Full report: summary, functions, shared bits, bit layout."""
    shared = [
        explain_bit(mapping, position)
        for position in range(mapping.geometry.address_bits)
        if explain_bit(mapping, position).is_shared
    ]
    lines = [
        mapping.geometry.describe(),
        mapping.describe(),
        "",
        "bank address functions:",
    ]
    for index, mask in enumerate(mapping.bank_functions):
        lines.append(f"  bank{index} = XOR of bits {format_mask(mask)}")
    if shared:
        lines.append("")
        lines.append(
            "shared bits (invisible to coarse detection, recovered by Step 3):"
        )
        for role in shared:
            lines.append(f"  bit {role.position}: {role.describe()}")
    lines.append("")
    lines.append("bit  role")
    lines.extend(layout_lines(mapping))
    return "\n".join(lines)
