"""Exception hierarchy for the DRAM substrate and the reverse-engineering
pipeline.

Every failure mode a tool can hit — bad geometry, an invalid mapping, a
timing channel that cannot be calibrated, a partition that never converges,
a function search that cannot number the piles — gets its own exception so
callers (and the evaluation harness, which must *record* failures for
Table I) can tell them apart.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "MappingError",
    "SingularMappingError",
    "AllocationError",
    "CalibrationError",
    "SelectionError",
    "PartitionError",
    "FunctionSearchError",
    "FineDetectionError",
    "ToolStuckError",
    "ToolTimeoutError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GeometryError(ReproError):
    """A DRAM geometry is internally inconsistent (sizes, counts, powers)."""


class MappingError(ReproError):
    """An address mapping fails validation (dependent functions, bit overlap,
    non-bijective layout)."""


class SingularMappingError(MappingError):
    """A mapping's forward GF(2) matrix is not invertible, so no
    DRAM-to-physical translation exists (inconsistent/singular system).

    Raised when compiling the ``ADDR_MTX`` inverse of a non-bijective
    claim — typically an unvalidated :class:`~repro.dram.belief.BeliefMapping`
    with dependent or missing functions. A *validated*
    :class:`~repro.dram.mapping.AddressMapping` can never trigger this."""


class AllocationError(ReproError):
    """The simulated OS could not satisfy a physical-memory allocation."""


class CalibrationError(ReproError):
    """The latency probe could not separate fast from slow accesses."""


class SelectionError(ReproError):
    """Algorithm 1 could not find a page range covering the bank bits."""


class PartitionError(ReproError):
    """Algorithm 2 failed to split the address pool into #bank valid piles."""


class FunctionSearchError(ReproError):
    """Algorithm 3 found no function set that numbers the piles 0..#bank-1."""


class FineDetectionError(ReproError):
    """Step 3 could not account for all spec-mandated row/column bits."""


class ToolStuckError(ReproError):
    """A baseline tool reached a state it cannot progress from (the paper
    reports Xiao et al.'s tool getting stuck on settings No.2 and No.6-9)."""

    def __init__(self, message: str, partial_result: object = None):
        super().__init__(message)
        self.partial_result = partial_result


class ToolTimeoutError(ReproError):
    """A tool exceeded its (simulated) time budget (the paper kills DRAMA
    after roughly two hours on settings No.3 and No.7)."""

    def __init__(self, message: str, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
