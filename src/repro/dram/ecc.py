"""SECDED ECC: what the paper's "whether DRAM chips support ECC" knowledge
is about.

ECC DIMMs store 72 bits per 64-bit word — a Hamming(72, 64) SECDED code.
For address-mapping purposes ECC changes nothing (the extra chips are not
addressable), which is why :class:`~repro.dram.geometry.DramGeometry`
carries ECC as a flag only. For *rowhammer* it changes everything: a
single flipped bit per 64-bit word is corrected transparently, two flips
in one word are detected (machine check), and only three or more can
corrupt data silently. This module implements the actual code — encode,
syndrome decode, correct — and the word-level statistics used by the ECC
rowhammer extension bench.

Layout: the classic (72, 64) extended Hamming code. Check bits sit at
power-of-two positions of the 1-indexed 71-bit Hamming frame, plus an
overall parity bit for double-error detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["EccOutcome", "EccWord", "encode_word", "decode_word", "flips_outcome"]

_DATA_BITS = 64
_CHECK_BITS = 7  # Hamming(71, 64) ...
_TOTAL_BITS = 72  # ... plus overall parity.

# 1-indexed Hamming positions that hold check bits.
_CHECK_POSITIONS = tuple(1 << i for i in range(_CHECK_BITS))
_DATA_POSITIONS = tuple(
    position
    for position in range(1, _DATA_BITS + _CHECK_BITS + 1)
    if position not in _CHECK_POSITIONS
)


class EccOutcome(enum.Enum):
    """What the memory controller reports for one read."""

    CLEAN = "clean"
    CORRECTED = "corrected"  # single-bit error, fixed transparently
    DETECTED = "detected"  # double-bit error, machine-check raised
    SILENT = "silent"  # >= 3 flips may alias to clean/corrected: data loss


@dataclass(frozen=True)
class EccWord:
    """A 72-bit code word: 64 data bits + 7 Hamming checks + parity."""

    frame: int  # 71-bit Hamming frame (1-indexed positions 1..71)
    parity: int  # overall parity bit

    def with_flips(self, positions: tuple[int, ...]) -> "EccWord":
        """Flip code-word bit positions (0..71; 71 = the parity bit)."""
        frame = self.frame
        parity = self.parity
        for position in positions:
            if not 0 <= position < _TOTAL_BITS:
                raise ValueError(f"bit position {position} outside the 72-bit word")
            if position == _TOTAL_BITS - 1:
                parity ^= 1
            else:
                frame ^= 1 << position  # bit i of frame = Hamming position i+1
        return EccWord(frame=frame, parity=parity)


def encode_word(data: int) -> EccWord:
    """Encode 64 data bits into a (72, 64) SECDED word."""
    if not 0 <= data < (1 << _DATA_BITS):
        raise ValueError("data must fit in 64 bits")
    frame = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if data >> index & 1:
            frame |= 1 << (position - 1)
    syndrome = _syndrome(frame)
    for i in range(_CHECK_BITS):
        if syndrome >> i & 1:
            frame |= 1 << (_CHECK_POSITIONS[i] - 1)
    parity = bin(frame).count("1") & 1
    return EccWord(frame=frame, parity=parity)


def decode_word(word: EccWord) -> tuple[int, EccOutcome]:
    """Decode a possibly-corrupted word; returns (data, outcome).

    SECDED semantics: zero syndrome + even parity = clean; non-zero
    syndrome + odd parity = single error (corrected); non-zero syndrome +
    even parity = double error (detected, data unreliable); zero syndrome
    + odd parity = the parity bit itself flipped (corrected).
    """
    syndrome = _syndrome(word.frame)
    overall = (bin(word.frame).count("1") & 1) ^ word.parity
    frame = word.frame
    if syndrome == 0 and overall == 0:
        outcome = EccOutcome.CLEAN
    elif syndrome == 0 and overall == 1:
        outcome = EccOutcome.CORRECTED  # parity bit error only
    elif overall == 1:
        # Single-bit error at Hamming position `syndrome`.
        if syndrome <= _DATA_BITS + _CHECK_BITS:
            frame ^= 1 << (syndrome - 1)
        outcome = EccOutcome.CORRECTED
    else:
        outcome = EccOutcome.DETECTED
    data = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if frame >> (position - 1) & 1:
            data |= 1 << index
    return data, outcome


def _syndrome(frame: int) -> int:
    syndrome = 0
    for position in range(1, _DATA_BITS + _CHECK_BITS + 1):
        if frame >> (position - 1) & 1:
            syndrome ^= position
    return syndrome


def flips_outcome(
    flips_in_word: int, rng: np.random.Generator, data: int | None = None
) -> EccOutcome:
    """Outcome of ``flips_in_word`` random flips in one protected word.

    Runs the real code: encode, flip random positions, decode. For three
    or more flips the decode may mis-correct (SILENT) or detect; the
    distinction is exactly what the code yields for the drawn positions.
    """
    if flips_in_word < 0:
        raise ValueError("flip count must be non-negative")
    if flips_in_word == 0:
        return EccOutcome.CLEAN
    if data is None:
        data = int(rng.integers(0, 2**63, dtype=np.uint64))
    word = encode_word(data)
    positions = tuple(
        int(p) for p in rng.choice(_TOTAL_BITS, size=flips_in_word, replace=False)
    )
    corrupted = word.with_flips(positions)
    decoded, outcome = decode_word(corrupted)
    if flips_in_word >= 3 and outcome in (EccOutcome.CLEAN, EccOutcome.CORRECTED):
        # The code was fooled: data silently wrong (or "corrected" to junk).
        if decoded != data:
            return EccOutcome.SILENT
    return outcome
