"""AMD's *documented* DRAM address mapping.

The paper's introduction motivates DRAMDig with an asymmetry: "such
mapping is available in AMD's architectural manual but not published by
... Intel". This module encodes that documented mapping — the BKDG
(BIOS and Kernel Developer's Guide) for family 15h describes DRAM
controller bank interleaving with an optional *bank swizzle* that XORs
each bank-select bit with two row bits:

    bank[i] = A[low_i] XOR A[low_i + s1] XOR A[low_i + s2]

With swizzling off, bank bits are plain address bits (the naive layout);
with it on, each function is a 3-bit XOR. Either way the layout is public
knowledge on AMD — and, as the tests show, DRAMDig recovers both forms
without using that knowledge, because the algorithm never assumed Intel's
specific hash shapes.
"""

from __future__ import annotations

from repro.analysis.bits import mask_of_bits
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrGeneration

__all__ = ["amd_family15h_mapping", "amd_reference_geometry"]

GIB = 2**30

# BKDG family-15h bank swizzle: bank bit i mixes the two row bits s1 and
# s2 positions above it.
_SWIZZLE_OFFSETS = (4, 8)


def amd_reference_geometry(gib: int = 8) -> DramGeometry:
    """A single-channel DDR3 AMD desktop (family 15h era)."""
    return DramGeometry(
        generation=DdrGeneration.DDR3,
        total_bytes=gib * GIB,
        channels=1,
        dimms_per_channel=1,
        ranks_per_dimm=1,
        banks_per_rank=8,
    )


def amd_family15h_mapping(
    geometry: DramGeometry | None = None, swizzle: bool = True
) -> AddressMapping:
    """The documented family-15h mapping.

    Args:
        geometry: machine geometry (defaults to the 8 GiB reference).
        swizzle: BKDG bank-swizzle mode; when off, bank bits are plain
            address bits directly above the column field.
    """
    if geometry is None:
        geometry = amd_reference_geometry()
    num_columns = geometry.num_column_bits
    num_functions = geometry.num_bank_bits
    bank_low = num_columns  # bank selects sit directly above the columns
    row_low = bank_low + num_functions

    functions = []
    for index in range(num_functions):
        position = bank_low + index
        if swizzle:
            functions.append(
                mask_of_bits(
                    [position]
                    + [position + offset for offset in _SWIZZLE_OFFSETS]
                )
            )
        else:
            functions.append(1 << position)

    rows = tuple(range(row_low, geometry.address_bits))
    columns = tuple(range(0, num_columns))
    return AddressMapping(
        geometry=geometry,
        bank_functions=tuple(functions),
        row_bits=rows,
        column_bits=columns,
    )
