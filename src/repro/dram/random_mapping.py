"""Random Intel-plausible address mappings, for fuzzing the tools.

The paper evaluates on nine hand-picked machines; a reproduction can do
better and *fuzz*: generate random mappings with the structural properties
every observed Intel layout shares, hide each behind a simulated machine,
and check that DRAMDig recovers it. The generator produces:

* columns at the bottom (13 bits for the standard 8 KiB rank page),
* rows at the top,
* bank functions of three Intel-observed shapes —
  (a) a bare channel bit (Sandy Bridge style),
  (b) two-bit rank/bank XORs pairing a mid bit with a shared row bit,
  (c) optionally one wide channel hash mixing shared column bits with
  shared row bits (Ivy Bridge+ dual-channel style),
* and the whole thing validated as a bijection.

Every mapping this module can emit is a legal
:class:`~repro.dram.mapping.AddressMapping`; the nine paper presets are
all within the generator's distribution.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bits import mask_of_bits
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.spec import DdrGeneration

__all__ = ["random_geometry", "random_mapping", "naive_mapping"]

GIB = 2**30


def random_geometry(rng: np.random.Generator) -> DramGeometry:
    """A random consumer-machine geometry (4-32 GiB, 1-2 channels)."""
    generation = rng.choice([DdrGeneration.DDR3, DdrGeneration.DDR4])
    channels = int(rng.choice([1, 2]))
    ranks = int(rng.choice([1, 2]))
    banks = 8 if generation is DdrGeneration.DDR3 else int(rng.choice([8, 16]))
    # Keep total banks <= 64 and memory plausible for the bank count.
    total_banks = channels * ranks * banks
    min_gib = max(4, total_banks // 4)
    gib = int(rng.choice([g for g in (4, 8, 16, 32) if g >= min_gib]))
    return DramGeometry(
        generation=generation,
        total_bytes=gib * GIB,
        channels=channels,
        dimms_per_channel=1,
        ranks_per_dimm=ranks,
        banks_per_rank=banks,
    )


def random_mapping(
    rng: np.random.Generator, geometry: DramGeometry | None = None
) -> AddressMapping:
    """A random valid mapping with Intel-shaped bank functions.

    The construction mirrors the observed layouts: the lowest bank-hash
    position starts just above the columns' midpoint, two-bit functions
    pair consecutive mid bits with consecutive low row bits, and a
    dual-channel machine gets either a bare channel bit or a wide hash.
    """
    if geometry is None:
        geometry = random_geometry(rng)
    address_bits = geometry.address_bits
    num_columns = geometry.num_column_bits
    num_functions = geometry.num_bank_bits
    num_rows = geometry.num_row_bits

    row_low = address_bits - num_rows  # rows always occupy the top
    functions: list[int] = []

    # Channel function for dual-channel machines (consumes one function).
    pair_functions = num_functions
    wide_hash = False
    channel_mask = 0
    if geometry.channels == 2:
        pair_functions -= 1
        wide_hash = bool(rng.random() < 0.5)
        if not wide_hash:
            channel_mask = 1 << int(rng.choice([6, 7]))

    # Two-bit functions: mid bit b paired with shared row bit. The mid bits
    # sit directly under the row range; each function i pairs
    # (row_low - pair_functions + i) with (row_low + i).
    base = row_low - pair_functions
    shared_rows = []
    for index in range(pair_functions):
        low = base + index
        high = row_low + index
        functions.append(mask_of_bits([low, high]))
        shared_rows.append(high)

    if geometry.channels == 2:
        if wide_hash:
            # Wide hash: a few shared column bits + two shared row bits,
            # Ivy-Bridge style. Its lowest bit is never a column.
            low_bits = sorted(
                int(b) for b in rng.choice(range(7, 12), size=3, replace=False)
            )
            hash_bits = low_bits + [13] + shared_rows[:2]
            functions.append(mask_of_bits(hash_bits))
        else:
            functions.append(channel_mask)

    # Columns: the lowest positions not used by pure-bank or channel roles.
    pure_bank = {base + i for i in range(pair_functions)}
    blocked = set()
    if channel_mask:
        blocked.add(channel_mask.bit_length() - 1)
    if wide_hash:
        # The wide hash's lowest bit is a pure bank wire (observation 2).
        wide_bits = sorted(
            b
            for b in range(address_bits)
            if functions[-1] >> b & 1
        )
        blocked.add(wide_bits[0])
    columns = []
    for position in range(address_bits):
        if len(columns) == num_columns:
            break
        if position >= row_low:
            break
        if position in pure_bank or position in blocked:
            continue
        columns.append(position)
    if len(columns) < num_columns:
        # Rare layouts squeeze the columns; fall back to a simple layout.
        return _simple_mapping(geometry)

    rows = tuple(range(row_low, address_bits))
    try:
        return AddressMapping(
            geometry=geometry,
            bank_functions=tuple(functions),
            row_bits=rows,
            column_bits=tuple(columns),
        )
    except Exception:
        return _simple_mapping(geometry)


def _simple_mapping(geometry: DramGeometry) -> AddressMapping:
    """Deterministic fallback: columns low, banks mid (paired with rows),
    rows high — always valid."""
    address_bits = geometry.address_bits
    num_columns = geometry.num_column_bits
    num_functions = geometry.num_bank_bits
    row_low = address_bits - geometry.num_row_bits
    functions = [
        mask_of_bits([row_low - num_functions + i, row_low + i])
        for i in range(num_functions)
    ]
    columns = tuple(range(0, num_columns))
    rows = tuple(range(row_low, address_bits))
    return AddressMapping(
        geometry=geometry,
        bank_functions=tuple(functions),
        row_bits=rows,
        column_bits=columns,
    )


def naive_mapping(geometry: DramGeometry) -> AddressMapping:
    """A hash-free strawman: columns low, *plain* bank bits mid, rows high.

    Each bank function is a single physical bit — what a controller
    without XOR hashing would wire. Valid and bijective, but strided
    workloads serialise onto one bank; the trace tools quantify the damage
    and thereby the reason Intel hashes (see ``repro.memctrl.trace``).
    """
    num_columns = geometry.num_column_bits
    num_functions = geometry.num_bank_bits
    functions = [1 << (num_columns + index) for index in range(num_functions)]
    columns = tuple(range(0, num_columns))
    rows = tuple(range(num_columns + num_functions, geometry.address_bits))
    return AddressMapping(
        geometry=geometry,
        bank_functions=tuple(functions),
        row_bits=rows,
        column_bits=columns,
    )
