"""A *believed* DRAM address mapping — possibly wrong or incomplete.

:class:`~repro.dram.mapping.AddressMapping` validates itself into a
bijection; a reverse-engineering tool's output may not deserve that
honour. DRAMA in particular can emit function sets with missing or
spurious members and row ranges that miss shared bits — the paper's whole
Table III is about what happens when such a belief is used to aim a
double-sided rowhammer attack. :class:`BeliefMapping` holds any claim
without judgement and implements the operations an *attacker* performs
with it: decode bank/row, and construct aggressor addresses at row ± 1
("aiming"), repairing the believed bank functions with believed non-row
bits exactly the way a real attack tool computes its aggressors.

Whether the aimed aggressors actually land next to the victim is decided
by the machine's ground truth — a wrong belief mis-aims silently, which is
the failure mode the rowhammer evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bits import bits_of_mask, deposit_bits, extract_bits, parity
from repro.analysis.gf2 import solve_parity_system
from repro.dram.mapping import AddressMapping

__all__ = ["BeliefMapping"]


@dataclass(frozen=True)
class BeliefMapping:
    """A tool's claim about a machine's address mapping (unvalidated).

    Attributes:
        address_bits: physical address width the claim covers.
        bank_functions: claimed XOR masks (any number, any quality).
        row_bits: claimed row-index bit positions, ascending.
        column_bits: claimed column bit positions, ascending.
    """

    address_bits: int
    bank_functions: tuple[int, ...]
    row_bits: tuple[int, ...]
    column_bits: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "bank_functions", tuple(self.bank_functions))
        object.__setattr__(self, "row_bits", tuple(sorted(self.row_bits)))
        object.__setattr__(self, "column_bits", tuple(sorted(self.column_bits)))

    @classmethod
    def from_mapping(cls, mapping: AddressMapping) -> "BeliefMapping":
        """Wrap a validated mapping (a correct belief)."""
        return cls(
            address_bits=mapping.geometry.address_bits,
            bank_functions=mapping.bank_functions,
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )

    # ------------------------------------------------------------- decoding

    def bank_of(self, phys_addr: int) -> int:
        """Bank index under the believed functions."""
        index = 0
        for position, mask in enumerate(self.bank_functions):
            index |= parity(phys_addr & mask) << position
        return index

    def row_of(self, phys_addr: int) -> int:
        """Row index under the believed row bits."""
        return extract_bits(phys_addr, self.row_bits)

    @property
    def rows(self) -> int:
        """Row count implied by the believed row bits."""
        return 1 << len(self.row_bits)

    # --------------------------------------------------------------- aiming

    def aim_row_neighbor(self, phys_addr: int, row_delta: int) -> int | None:
        """Address the attacker *believes* lies ``row_delta`` rows away from
        ``phys_addr`` in the same bank.

        Replaces the believed row field, then repairs the believed bank
        functions by toggling believed non-row bits (pure bank bits
        preferred, then column bits — toggling a believed column cannot
        change the believed bank or row). Returns None when the believed row
        leaves the addressable range or no repair exists under the belief.
        """
        row = self.row_of(phys_addr)
        new_row = row + row_delta
        if not 0 <= new_row < self.rows:
            return None
        candidate = phys_addr & ~deposit_bits((1 << len(self.row_bits)) - 1, self.row_bits)
        candidate |= deposit_bits(new_row, self.row_bits)
        if candidate >= (1 << self.address_bits):
            return None
        if self.bank_of(candidate) == self.bank_of(phys_addr):
            return candidate
        repaired = self._repair_bank(phys_addr, candidate)
        return repaired

    def _repair_bank(self, original: int, candidate: int) -> int | None:
        """Toggle believed non-row bits on ``candidate`` until its believed
        bank matches ``original``'s."""
        row_set = set(self.row_bits)
        # Believed pure-bank bits first (bits in functions, not rows/cols),
        # then believed column bits that feed functions.
        function_bits = {
            position
            for mask in self.bank_functions
            for position in bits_of_mask(mask)
        }
        column_set = set(self.column_bits)
        preferred = sorted(function_bits - row_set - column_set)
        fallback = sorted(function_bits & column_set)
        toggles = preferred + fallback
        if not toggles:
            return None
        equations = []
        for mask in self.bank_functions:
            want = parity(original & mask)
            have = parity(candidate & mask)
            coefficients = 0
            for column, position in enumerate(toggles):
                coefficients |= parity(mask & (1 << position)) << column
            equations.append((coefficients, want ^ have))
        solution = solve_parity_system(equations, len(toggles))
        if solution is None:
            return None
        repaired = candidate
        for column, position in enumerate(toggles):
            if solution >> column & 1:
                repaired ^= 1 << position
        if repaired >= (1 << self.address_bits):
            return None
        return repaired

    # ----------------------------------------------------------- comparison

    def agrees_with(self, mapping: AddressMapping) -> bool:
        """True when the belief matches ground truth exactly (function span,
        row set, column set)."""
        from repro.analysis.gf2 import span_equal

        return (
            span_equal(self.bank_functions, mapping.bank_functions)
            and self.row_bits == mapping.row_bits
            and self.column_bits == mapping.column_bits
        )

    def hammer_equivalent(self, mapping: AddressMapping) -> bool:
        """True when the belief aims rowhammer correctly: the bank-function
        span and the row bits match ground truth (column beliefs are
        irrelevant to aggressor placement)."""
        from repro.analysis.gf2 import span_equal

        return (
            span_equal(self.bank_functions, mapping.bank_functions)
            and self.row_bits == mapping.row_bits
        )
