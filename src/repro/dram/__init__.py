"""DRAM substrate: spec knowledge, geometry, address mappings, presets."""

from repro.dram.errors import (
    AllocationError,
    CalibrationError,
    FineDetectionError,
    FunctionSearchError,
    GeometryError,
    MappingError,
    PartitionError,
    ReproError,
    SelectionError,
    SingularMappingError,
    ToolStuckError,
    ToolTimeoutError,
)
from repro.dram.amd import amd_family15h_mapping, amd_reference_geometry
from repro.dram.belief import BeliefMapping
from repro.dram.compiled import CompiledMapping, compile_mapping
from repro.dram.ecc import EccOutcome, decode_word, encode_word
from repro.dram.explain import BitRole, explain_bit, explain_mapping
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping, DramAddress
from repro.dram.presets import PRESETS, TABLE2_ORDER, MachinePreset, preset, preset_names
from repro.dram.random_mapping import naive_mapping, random_geometry, random_mapping
from repro.dram.serialization import (
    belief_from_dict,
    belief_to_dict,
    compiled_from_dict,
    compiled_to_dict,
    load_compiled,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_compiled,
    save_mapping,
)
from repro.dram.spec import (
    ChipSpec,
    DdrGeneration,
    DdrTimings,
    chip_spec,
    default_timings,
    rank_page_bytes,
)

__all__ = [
    "AllocationError",
    "CalibrationError",
    "FineDetectionError",
    "FunctionSearchError",
    "GeometryError",
    "MappingError",
    "PartitionError",
    "ReproError",
    "SelectionError",
    "SingularMappingError",
    "ToolStuckError",
    "ToolTimeoutError",
    "CompiledMapping",
    "compile_mapping",
    "amd_family15h_mapping",
    "amd_reference_geometry",
    "BeliefMapping",
    "EccOutcome",
    "decode_word",
    "encode_word",
    "BitRole",
    "explain_bit",
    "explain_mapping",
    "naive_mapping",
    "random_geometry",
    "random_mapping",
    "belief_from_dict",
    "belief_to_dict",
    "compiled_from_dict",
    "compiled_to_dict",
    "load_compiled",
    "load_mapping",
    "save_compiled",
    "mapping_from_dict",
    "mapping_to_dict",
    "save_mapping",
    "DramGeometry",
    "AddressMapping",
    "DramAddress",
    "PRESETS",
    "TABLE2_ORDER",
    "MachinePreset",
    "preset",
    "preset_names",
    "ChipSpec",
    "DdrGeneration",
    "DdrTimings",
    "chip_spec",
    "default_timings",
    "rank_page_bytes",
]
