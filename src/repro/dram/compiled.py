"""Compiled GF(2) translation: the blacksmith ``DRAM_MTX``/``ADDR_MTX`` pair.

An :class:`~repro.dram.mapping.AddressMapping` answers one address at a
time by re-running per-bit parity decode. That is fine while *recovering*
a mapping; it is far too slow for *consuming* one — fleet runs and
rowhammer campaigns need millions of phys↔DRAM translations per second.

:class:`CompiledMapping` compiles a mapping once into a pair of GF(2)
matrices, the shape blacksmith's ``DRAMAddr`` uses in production:

* ``dram_mtx`` — the forward matrix. Row *i* is an XOR mask over physical
  address bits; bit *i* of the *linearized* DRAM index is the parity of
  the physical address ANDed with that mask. The linear index packs the
  three components as ``bank << (C+R) | row << C | column`` where *C* and
  *R* are the column and row widths — every row of the matrix is therefore
  *component-labelled* (see :attr:`CompiledMapping.components`), which is
  what later channel/rank/bank-group decomposition work reuses.
* ``addr_mtx`` — the GF(2) inverse (:func:`repro.analysis.gf2.invert`),
  mapping a linearized DRAM index back to the unique physical address.

Batch translation in either direction is then a handful of 16-bit-slice
table gathers (:func:`repro.analysis.bits.packed_parity_tables`) over a
NumPy array — constant work per address regardless of how many functions
the mapping has. The scalar decode path in ``AddressMapping`` remains the
ground truth; the perf gate and the property tests in
``tests/dram/test_compiled.py`` pin bit-for-bit agreement.

Forward-only compilation (:meth:`CompiledMapping.from_belief`) accepts
unvalidated :class:`~repro.dram.belief.BeliefMapping` claims: prediction
(phys → DRAM) always works, while inversion raises the typed
:class:`~repro.dram.errors.SingularMappingError` when the claim is not a
bijection.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis import bits as bitutil
from repro.analysis import gf2
from repro.dram.errors import MappingError, SingularMappingError
from repro.dram.mapping import AddressMapping, DramAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (belief is runtime-light)
    from repro.dram.belief import BeliefMapping

__all__ = ["CompiledMapping", "compile_mapping"]


@dataclass(frozen=True)
class CompiledMapping:
    """A mapping compiled to a forward/inverse GF(2) matrix pair.

    Attributes:
        address_bits: physical-address width the matrices cover.
        dram_mtx: forward matrix rows, low output bit first (columns,
            then rows, then bank functions).
        addr_mtx: inverse matrix rows (``None`` for a forward-only
            compile of a non-invertible belief).
        column_width: output bits holding the column component.
        row_width: output bits holding the row component.
        bank_width: output bits holding the bank component.
    """

    address_bits: int
    dram_mtx: tuple[int, ...]
    addr_mtx: tuple[int, ...] | None
    column_width: int
    row_width: int
    bank_width: int

    # ------------------------------------------------------------ construction

    @classmethod
    def from_mapping(cls, mapping: AddressMapping) -> "CompiledMapping":
        """Compile a validated mapping (forward *and* inverse).

        A validated mapping is a bijection, so a failing inversion here is
        an internal inconsistency, reported as a plain
        :class:`~repro.dram.errors.MappingError`.
        """
        compiled = cls._assemble(
            address_bits=mapping.geometry.address_bits,
            bank_functions=mapping.bank_functions,
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
            invert=True,
        )
        if compiled.addr_mtx is None:  # pragma: no cover - validation forbids it
            raise MappingError(
                "internal error: validated mapping compiled to a singular matrix"
            )
        return compiled

    @classmethod
    def from_belief(
        cls, belief: "BeliefMapping", require_inverse: bool = False
    ) -> "CompiledMapping":
        """Compile an unvalidated belief.

        Forward translation always compiles. The inverse is attempted and
        kept when it exists; with ``require_inverse`` a singular claim
        raises :class:`~repro.dram.errors.SingularMappingError` instead of
        silently producing a forward-only compile.
        """
        compiled = cls._assemble(
            address_bits=belief.address_bits,
            bank_functions=belief.bank_functions,
            row_bits=belief.row_bits,
            column_bits=belief.column_bits,
            invert=True,
        )
        if require_inverse and compiled.addr_mtx is None:
            raise SingularMappingError(
                "belief is not a bijection: the forward GF(2) matrix is "
                "singular, no DRAM-to-physical translation exists"
            )
        return compiled

    @classmethod
    def _assemble(
        cls,
        address_bits: int,
        bank_functions: tuple[int, ...],
        row_bits: tuple[int, ...],
        column_bits: tuple[int, ...],
        invert: bool,
    ) -> "CompiledMapping":
        column_width = len(column_bits)
        row_width = len(row_bits)
        bank_width = len(bank_functions)
        output_bits = column_width + row_width + bank_width
        if output_bits != address_bits:
            # Incomplete claims (a belief missing bits) still compile
            # forward; inversion over a non-square system is meaningless.
            invert = False
        rows: list[int] = []
        rows.extend(bitutil.bit(position) for position in column_bits)
        rows.extend(bitutil.bit(position) for position in row_bits)
        rows.extend(bank_functions)
        limit = 1 << address_bits
        for mask in rows:
            if mask >= limit:
                raise MappingError(
                    f"matrix row {mask:#x} exceeds the {address_bits}-bit "
                    "physical address space"
                )
        addr_mtx = None
        if invert:
            # gf2.invert returns None on a singular/inconsistent system;
            # the callers above decide whether that is an internal error
            # (validated mapping), a typed SingularMappingError
            # (require_inverse) or an acceptable forward-only compile.
            inverse = gf2.invert(rows, address_bits)
            if inverse is not None:
                addr_mtx = tuple(inverse)
        return cls(
            address_bits=address_bits,
            dram_mtx=tuple(rows),
            addr_mtx=addr_mtx,
            column_width=column_width,
            row_width=row_width,
            bank_width=bank_width,
        )

    # ---------------------------------------------------------------- layout

    @property
    def invertible(self) -> bool:
        """True when DRAM→phys translation is available."""
        return self.addr_mtx is not None

    @property
    def column_shift(self) -> int:
        """Bit offset of the column component in a linear index (always 0)."""
        return 0

    @property
    def row_shift(self) -> int:
        """Bit offset of the row component in a linear index."""
        return self.column_width

    @property
    def bank_shift(self) -> int:
        """Bit offset of the bank component in a linear index."""
        return self.column_width + self.row_width

    @property
    def rows(self) -> int:
        """Row count addressable by the row component."""
        return 1 << self.row_width

    @property
    def columns(self) -> int:
        """Column count addressable by the column component."""
        return 1 << self.column_width

    @property
    def banks(self) -> int:
        """Bank count addressable by the bank component."""
        return 1 << self.bank_width

    @property
    def components(self) -> dict[str, tuple[int, int]]:
        """Component labels: ``{name: (first matrix row, width)}``.

        The forward matrix keeps its rows grouped by the DRAM component
        they produce, so decomposition work (Sudoku-style channel/rank/
        bank-group labelling) can slice the compiled form instead of
        re-deriving it.
        """
        return {
            "column": (0, self.column_width),
            "row": (self.column_width, self.row_width),
            "bank": (self.column_width + self.row_width, self.bank_width),
        }

    # ------------------------------------------------------------- batch kernels

    @cached_property
    def _forward_tables(self):
        return bitutil.packed_parity_tables(self.dram_mtx)

    @cached_property
    def _inverse_tables(self):
        if self.addr_mtx is None:
            raise SingularMappingError(
                "forward-only compile: the mapping has no GF(2) inverse"
            )
        return bitutil.packed_parity_tables(self.addr_mtx)

    def linearize(self, phys_addrs: np.ndarray) -> np.ndarray:
        """Batched phys → linearized DRAM index (uint64 in, uint64 out).

        One table gather per touched 16-bit address slice evaluates every
        matrix row at once — the hot kernel behind :meth:`translate`.
        """
        addrs = np.asarray(phys_addrs, dtype=np.uint64)
        packed = bitutil.gather_xor(addrs, self._forward_tables)
        if packed is None:
            return np.zeros(addrs.shape, dtype=np.uint64)
        return packed.astype(np.uint64)

    def translate(
        self, phys_addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched phys → (bank, row, column) arrays.

        Bit-identical to the scalar ``AddressMapping.dram_address`` on
        every input (property-tested and enforced by the perf gate).
        """
        linear = self.linearize(phys_addrs)
        column = linear & np.uint64(self.columns - 1)
        row = (linear >> np.uint64(self.row_shift)) & np.uint64(self.rows - 1)
        bank = linear >> np.uint64(self.bank_shift)
        return bank, row, column

    def encode(
        self,
        banks: np.ndarray,
        rows: np.ndarray,
        columns: np.ndarray,
    ) -> np.ndarray:
        """Batched (bank, row, column) → physical address array.

        Raises:
            SingularMappingError: on a forward-only compile.
        """
        linear = (
            (np.asarray(banks, dtype=np.uint64) << np.uint64(self.bank_shift))
            | (np.asarray(rows, dtype=np.uint64) << np.uint64(self.row_shift))
            | np.asarray(columns, dtype=np.uint64)
        )
        packed = bitutil.gather_xor(linear, self._inverse_tables)
        if packed is None:
            return np.zeros(linear.shape, dtype=np.uint64)
        return packed.astype(np.uint64)

    # ------------------------------------------------------------ scalar forms

    def translate_one(self, phys_addr: int) -> DramAddress:
        """Scalar phys → DRAM decode through the compiled matrix."""
        linear = 0
        for position, mask in enumerate(self.dram_mtx):
            linear |= bitutil.parity(phys_addr & mask) << position
        return DramAddress(
            bank=linear >> self.bank_shift,
            row=(linear >> self.row_shift) & (self.rows - 1),
            column=linear & (self.columns - 1),
        )

    def encode_one(self, address: DramAddress) -> int:
        """Scalar DRAM → phys through the compiled inverse.

        Raises:
            SingularMappingError: on a forward-only compile.
        """
        if self.addr_mtx is None:
            raise SingularMappingError(
                "forward-only compile: the mapping has no GF(2) inverse"
            )
        linear = (
            (address.bank << self.bank_shift)
            | (address.row << self.row_shift)
            | address.column
        )
        phys = 0
        for position, mask in enumerate(self.addr_mtx):
            phys |= bitutil.parity(linear & mask) << position
        return phys

    # -------------------------------------------------------- generator queries

    def same_bank_addresses(
        self, bank: int, count: int, column: int = 0
    ) -> np.ndarray:
        """``count`` distinct physical addresses all landing in ``bank``.

        Walks rows first (then columns) so the result spreads across as
        many rows as possible — the shape bank-conflict probing and
        eviction-set construction want.

        Raises:
            SingularMappingError: on a forward-only compile.
            MappingError: when the bank is out of range or the bank cannot
                hold ``count`` distinct addresses from column ``column`` up.
        """
        self._check_bank(bank)
        available = self.rows * (self.columns - column)
        if count < 0 or count > available:
            raise MappingError(
                f"bank {bank} holds only {available} addresses from "
                f"column {column} up, asked for {count}"
            )
        index = np.arange(count, dtype=np.uint64)
        rows = index % np.uint64(self.rows)
        columns = np.uint64(column) + index // np.uint64(self.rows)
        banks = np.full(count, bank, dtype=np.uint64)
        return self.encode(banks, rows, columns)

    def adjacent_row_sets(
        self,
        bank: int,
        count: int,
        column: int = 0,
        stride: int = 3,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``count`` double-sided aggressor sets in ``bank``.

        Returns ``(victims, above, below)`` physical-address arrays where
        ``above``/``below`` sit one row either side of each victim in the
        same bank — the layout a double-sided rowhammer campaign hammers.
        Victim rows step by ``stride`` (default 3 keeps the sets disjoint).

        Raises:
            SingularMappingError: on a forward-only compile.
            MappingError: when the bank cannot hold that many sets.
        """
        self._check_bank(bank)
        if stride < 1:
            raise MappingError(f"stride must be positive, got {stride}")
        if not 0 <= column < self.columns:
            raise MappingError(f"column {column} out of range")
        capacity = max(0, (self.rows - 2 + (stride - 1)) // stride)
        if count < 0 or count > capacity:
            raise MappingError(
                f"bank {bank} fits only {capacity} stride-{stride} "
                f"aggressor sets, asked for {count}"
            )
        victim_rows = np.uint64(1) + np.arange(count, dtype=np.uint64) * np.uint64(
            stride
        )
        banks = np.full(count, bank, dtype=np.uint64)
        columns = np.full(count, column, dtype=np.uint64)
        victims = self.encode(banks, victim_rows, columns)
        above = self.encode(banks, victim_rows - np.uint64(1), columns)
        below = self.encode(banks, victim_rows + np.uint64(1), columns)
        return victims, above, below

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks:
            raise MappingError(f"bank {bank} out of range (0..{self.banks - 1})")


def compile_mapping(mapping: AddressMapping) -> CompiledMapping:
    """Convenience alias for :meth:`CompiledMapping.from_mapping`."""
    return CompiledMapping.from_mapping(mapping)
