"""``python -m repro`` — dispatch to the dramdig CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
