#!/usr/bin/env python
"""CI smoke test: SIGKILL a grid run mid-flight, resume it, diff the output.

The deterministic regression for resume lives in
``tests/evalsuite/test_resume.py`` (it truncates a journal instead of
racing a kill). This script is the end-to-end variant with a real
``SIGKILL``:

1. render Table I once, uninterrupted, as the reference;
2. start the same run as a subprocess with ``--resume <journal>`` and
   kill -9 it as soon as the journal holds at least one checkpoint but
   before it can hold all of them;
3. re-run the same command to completion over the same journal, with
   ``--trace`` capturing the resumed run's merged span trace;
4. the resumed output must be byte-identical to the reference, the
   journal must show the resumed run started from the survivors, and
   ``dramdig trace summary`` must parse the trace and find it
   internally consistent (the CI gate for the trace format).

Exit code 0 on success. The kill is inherently racy — if the victim
finishes before the kill lands (tiny grids on a fast machine), the run
still validates byte-identity and reports that the kill was skipped.

``--artifacts DIR`` keeps the trace (and the rendered summary) in DIR
instead of the throwaway scratch directory, so CI can upload them as a
workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CMD = [sys.executable, "-m", "repro", "table1"]
POLL_SECONDS = 0.05
KILL_AFTER_RECORDS = 1
TIMEOUT_SECONDS = 600.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run_to_completion(journal: Path | None, trace: Path | None = None) -> str:
    cmd = list(CMD) + (["--resume", str(journal)] if journal is not None else [])
    if trace is not None:
        cmd += ["--trace", str(trace)]
    result = subprocess.run(
        cmd, cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=TIMEOUT_SECONDS, check=True,
    )
    return result.stdout


def _journal_records(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "fingerprint" in record:
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep the resumed run's trace and summary here (for CI upload)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="kill-resume-") as scratch:
        journal = Path(scratch) / "table1.journal"
        artifacts = Path(args.artifacts) if args.artifacts else Path(scratch)
        artifacts.mkdir(parents=True, exist_ok=True)
        trace_path = artifacts / "resumed-table1-trace.jsonl"

        print("== reference run (uninterrupted, no journal) ==", flush=True)
        reference = _run_to_completion(None)

        print("== victim run (will be SIGKILLed mid-flight) ==", flush=True)
        victim = subprocess.Popen(
            list(CMD) + ["--resume", str(journal)],
            cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + TIMEOUT_SECONDS
        killed = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if _journal_records(journal) >= KILL_AFTER_RECORDS:
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
            time.sleep(POLL_SECONDS)
        else:
            victim.kill()
            print("FAIL: victim neither checkpointed nor finished in time")
            return 1

        survivors = _journal_records(journal)
        if killed:
            print(f"killed victim with {survivors} checkpointed cell(s)")
            if survivors == 0:
                print("FAIL: kill landed before any checkpoint")
                return 1
        else:
            print("victim finished before the kill landed; "
                  "validating byte-identity only")

        print("== resumed run (traced) ==", flush=True)
        resumed = _run_to_completion(journal, trace=trace_path)

        if resumed != reference:
            print("FAIL: resumed output differs from the uninterrupted run")
            sys.stdout.write(resumed)
            return 1
        print(f"OK: resumed output is byte-identical "
              f"({survivors} cell(s) survived the kill)")

        print("== trace summary gate ==", flush=True)
        if not trace_path.exists():
            print("FAIL: resumed run wrote no trace file")
            return 1
        summary = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary", str(trace_path)],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        (artifacts / "resumed-table1-trace-summary.txt").write_text(
            summary.stdout
        )
        if summary.returncode != 0:
            print("FAIL: trace summary gate rejected the trace")
            sys.stdout.write(summary.stdout)
            sys.stderr.write(summary.stderr)
            return 1
        cached = summary.stdout.count("CACHED")
        print(f"OK: trace parsed and consistent "
              f"({cached} cell(s) reported as cached from the journal)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
