#!/usr/bin/env python
"""CI smoke test: SIGKILL a grid run mid-flight, resume it, diff the output.

The deterministic regression for resume lives in
``tests/evalsuite/test_resume.py`` (it truncates a journal instead of
racing a kill). This script is the end-to-end variant with a real
``SIGKILL``:

1. render Table I once, uninterrupted, as the reference — traced, and
   recording a ``--history`` entry;
2. start the same run as a subprocess with ``--resume <journal>`` and
   ``--telemetry <stream>``, tail the live stream while waiting, and
   kill -9 the victim as soon as the journal holds at least one
   checkpoint but before it can hold all of them;
3. re-run the same command to completion over the same journal and the
   same telemetry stream, with ``--trace`` capturing the resumed run's
   merged span trace and ``--history`` appending a second entry;
4. gates: the resumed output must be byte-identical to the reference;
   the journal must show the resumed run started from the survivors;
   the telemetry stream must show heartbeat continuity (events before
   the kill landed, every line but at most a torn final one parseable,
   a closing ``run-end`` from the resumed process); ``dramdig trace
   summary --strict`` must accept the completed resumed trace;
   ``dramdig obs diff`` over the reference/resumed trace pair must
   exit 0 (cached subtrees excluded, no phantom regression); and
   ``dramdig obs history --check`` must pass over the recorded entries.

Exit code 0 on success. The kill is inherently racy — if the victim
finishes before the kill lands (tiny grids on a fast machine), the run
still validates byte-identity and reports that the kill was skipped.

``--artifacts DIR`` keeps the traces, the telemetry stream,
``history.jsonl`` and the rendered summary/diff in DIR instead of the
throwaway scratch directory, so CI can upload them as a workflow
artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CMD = [sys.executable, "-m", "repro", "table1"]
POLL_SECONDS = 0.05
KILL_AFTER_RECORDS = 1
TIMEOUT_SECONDS = 600.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run_to_completion(
    journal: Path | None,
    trace: Path | None = None,
    telemetry: Path | None = None,
    history: Path | None = None,
) -> str:
    # Global flags (--telemetry/--history) go before the subcommand,
    # per-run flags (--resume/--trace) after it.
    prefix = []
    if telemetry is not None:
        prefix += ["--telemetry", str(telemetry)]
    if history is not None:
        prefix += ["--history", str(history)]
    cmd = CMD[:-1] + prefix + CMD[-1:]
    if journal is not None:
        cmd += ["--resume", str(journal)]
    if trace is not None:
        cmd += ["--trace", str(trace)]
    result = subprocess.run(
        cmd, cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=TIMEOUT_SECONDS, check=True,
    )
    return result.stdout


def _stream_lines(stream: Path) -> tuple[list[dict], int]:
    """Parsed telemetry events and the count of unparseable lines.

    Parsed inline (not via ``repro.obs.telemetry``) so the smoke script
    exercises the on-disk format the way an external consumer would.
    """
    if not stream.exists():
        return [], 0
    events, torn = [], 0
    for line in stream.read_text(encoding="utf-8").splitlines():
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if isinstance(event, dict) and "kind" in event:
            events.append(event)
        else:
            torn += 1
    return events, torn


def _journal_records(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "fingerprint" in record:
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep the resumed run's trace and summary here (for CI upload)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="kill-resume-") as scratch:
        journal = Path(scratch) / "table1.journal"
        artifacts = Path(args.artifacts) if args.artifacts else Path(scratch)
        artifacts.mkdir(parents=True, exist_ok=True)
        trace_path = artifacts / "resumed-table1-trace.jsonl"
        reference_trace = artifacts / "reference-table1-trace.jsonl"
        stream = artifacts / "table1-telemetry.jsonl"
        history = artifacts / "history.jsonl"

        print("== reference run (uninterrupted, no journal) ==", flush=True)
        reference = _run_to_completion(
            None, trace=reference_trace, history=history
        )

        print("== victim run (will be SIGKILLed mid-flight) ==", flush=True)
        victim = subprocess.Popen(
            CMD[:-1] + ["--telemetry", str(stream)] + CMD[-1:]
            + ["--resume", str(journal)],
            cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + TIMEOUT_SECONDS
        killed = False
        events_before_kill = 0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            events_before_kill = len(_stream_lines(stream)[0])
            if _journal_records(journal) >= KILL_AFTER_RECORDS:
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
            time.sleep(POLL_SECONDS)
        else:
            victim.kill()
            print("FAIL: victim neither checkpointed nor finished in time")
            return 1

        survivors = _journal_records(journal)
        if killed:
            print(f"killed victim with {survivors} checkpointed cell(s)")
            if survivors == 0:
                print("FAIL: kill landed before any checkpoint")
                return 1
            if events_before_kill == 0:
                print("FAIL: no telemetry heartbeat reached the stream "
                      "before the kill landed")
                return 1
            print(f"tailed {events_before_kill} live event(s) before the kill")
        else:
            print("victim finished before the kill landed; "
                  "validating byte-identity only")

        print("== resumed run (traced, streaming) ==", flush=True)
        resumed = _run_to_completion(
            journal, trace=trace_path, telemetry=stream, history=history
        )

        if resumed != reference:
            print("FAIL: resumed output differs from the uninterrupted run")
            sys.stdout.write(resumed)
            return 1
        print(f"OK: resumed output is byte-identical "
              f"({survivors} cell(s) survived the kill)")

        print("== heartbeat continuity gate ==", flush=True)
        events, torn = _stream_lines(stream)
        if not events:
            print("FAIL: telemetry stream is empty after the resumed run")
            return 1
        if torn > 1:
            print(f"FAIL: {torn} unparseable stream lines (at most one "
                  "torn final line from the kill is tolerated)")
            return 1
        if events[-1]["kind"] != "run-end" or events[-1].get("code") != 0:
            print("FAIL: stream does not close with a clean run-end event")
            return 1
        pids = {event["pid"] for event in events if "pid" in event}
        if killed and len(pids) < 2:
            print("FAIL: stream holds events from one process only — the "
                  "resumed run never picked the stream back up")
            return 1
        print(f"OK: {len(events)} event(s) across {len(pids)} process(es), "
              f"{torn} torn line(s), clean run-end")

        print("== trace summary gate (strict) ==", flush=True)
        if not trace_path.exists():
            print("FAIL: resumed run wrote no trace file")
            return 1
        summary = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary", "--strict",
             str(trace_path)],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        (artifacts / "resumed-table1-trace-summary.txt").write_text(
            summary.stdout
        )
        if summary.returncode != 0:
            print("FAIL: strict trace summary gate rejected the trace")
            sys.stdout.write(summary.stdout)
            sys.stderr.write(summary.stderr)
            return 1
        cached = summary.stdout.count("CACHED")
        print(f"OK: trace parsed and consistent "
              f"({cached} cell(s) reported as cached from the journal)")

        print("== obs diff gate (resumed vs reference) ==", flush=True)
        diff = subprocess.run(
            [sys.executable, "-m", "repro", "obs", "diff",
             str(reference_trace), str(trace_path)],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        (artifacts / "resumed-vs-reference-diff.txt").write_text(diff.stdout)
        if diff.returncode != 0:
            print("FAIL: obs diff reported a regression between the "
                  "reference and resumed traces")
            sys.stdout.write(diff.stdout)
            sys.stderr.write(diff.stderr)
            return 1
        print("OK: resumed trace diffs clean against the reference")

        print("== history gate ==", flush=True)
        check = subprocess.run(
            [sys.executable, "-m", "repro", "obs", "history", str(history),
             "--check"],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        if check.returncode != 0:
            print("FAIL: obs history --check flagged a regression between "
                  "the reference and resumed runs")
            sys.stdout.write(check.stdout)
            sys.stderr.write(check.stderr)
            return 1
        entries = sum(1 for _ in history.open()) if history.exists() else 0
        print(f"OK: {entries} history entries recorded, no regressions")
        return 0


if __name__ == "__main__":
    sys.exit(main())
