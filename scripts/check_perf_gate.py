#!/usr/bin/env python
"""CI perf regression gate over ``BENCH_perf.json``.

Runs (or reads) the perf harness record and fails the build when the
parallel grid stops paying for itself or stops being exact:

* serial and parallel grid artefacts must be byte-identical
  (``grid.parallel_bit_identical``) — the harness itself raises on
  divergence, so a record that reached disk without the flag is
  treated as a failure too;
* the campaign-planner A/B must report identical results
  (``single_run.results_identical``) and a batching speedup at or
  above the recorded floor;
* the compiled translation kernels must stay bit-identical to the
  scalar decode path (``translation.scalar_identity``) and sustain at
  least a million lookups per second in each direction;
* the campaign fuzzer's compiled aggressor planner must agree with the
  per-victim scalar aim path on every sampled lane
  (``campaign.aim_agreement``) and beat it by at least
  ``CAMPAIGN_PLANNER_SPEEDUP_FLOOR`` — below that the sweep scheduler
  would be no better than aiming victims one at a time;
* on multi-CPU hosts ``grid.table1_parallel_speedup`` must stay at or
  above the recorded floor. Single-CPU hosts skip this check — the
  harness omits the column there by design, and a gate that fails on
  hardware that cannot parallelise would only teach people to delete
  the gate;
* the telemetry bus must stay a pure side channel: the Table I panel
  rendered with and without a live bus must be byte-identical
  (``obs.artefacts_identical``), a run with the bus global left
  ``None`` must cost the same as the tracing section's untraced
  baseline (one is-None test is not allowed to grow into real work),
  and the streaming run must stay under a generous overhead ceiling;
* the fleet section must show the knowledge store paying for itself:
  every machine correct, the prefix-amortized scaling curve strictly
  decreasing in both measurements and simulated seconds, and the
  amortized per-machine probe cost at least ``FLEET_AMORTIZATION_FLOOR``
  times cheaper than a cold-start fleet. These are simulated costs —
  deterministic, so the floor can sit much closer to the measured value
  than the wall-clock floors do.

Usage: ``python scripts/check_perf_gate.py [--bench BENCH_perf.json]
[--run]``. With ``--run`` the harness is executed first (writing the
record to ``--bench``); without it an existing record is checked.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Conservative floors, not targets: far enough below the recorded
# numbers (batching 1.3x on the reference container, parallel speedup
# ~0.8x jobs on multi-core hosts) that noise cannot trip them, close
# enough that a real regression — a worker pool rebuilt per task, a
# campaign quietly falling back to scalar — still does.
BATCHING_SPEEDUP_FLOOR = 1.05
PARALLEL_SPEEDUP_FLOOR = 1.3
# The compiled GF(2) translation kernels sustain >20M lookups/s on the
# reference container; one million per second is the point below which
# campaign planning would be back to scalar-loop territory.
TRANSLATION_LOOKUPS_FLOOR = 1_000_000.0
# The compiled aggressor planner beats scalar aiming by hundreds of x
# on the reference container; 5x is the point below which the campaign
# sweep would schedule faster by skipping the batch path entirely.
CAMPAIGN_PLANNER_SPEEDUP_FLOOR = 5.0
# The bench fleet (16 machines, 2 families) amortizes to ~10x cheaper
# than cold-start per machine; the cost model is simulated and
# deterministic, so 2x is an unambiguous "the store stopped paying"
# signal, not a noise margin.
FLEET_AMORTIZATION_FLOOR = 2.0
# A DRAMDig run emits a handful of phase events, so streaming telemetry
# costs low single-digit percent on the reference container; 1.5x is a
# "something started doing per-measurement work on the hot path" alarm,
# not a noise margin.
TELEMETRY_OVERHEAD_CEILING = 1.5
# With the bus global left None the instrumented run and the tracing
# section's untraced baseline execute the same code plus one is-None
# test per hook; 1.3x apart means the off path stopped being free.
TELEMETRY_OFF_NOISE_CEILING = 1.3


def check_record(record: dict) -> list[str]:
    """Return the list of gate violations (empty = pass)."""
    problems = []
    grid = record.get("grid", {})
    single = record.get("single_run", {})
    environment = record.get("environment", {})

    if grid.get("parallel_bit_identical") is not True:
        problems.append(
            "grid.parallel_bit_identical is not true: serial and parallel "
            "artefacts diverged"
        )
    if single.get("results_identical") is not True:
        problems.append(
            "single_run.results_identical is not true: campaign batching "
            "changed a result"
        )

    batching = single.get("batching_speedup")
    if batching is None or batching < BATCHING_SPEEDUP_FLOOR:
        problems.append(
            f"single_run.batching_speedup {batching} below floor "
            f"{BATCHING_SPEEDUP_FLOOR}"
        )

    translation = record.get("translation", {})
    if translation.get("scalar_identity") is not True:
        problems.append(
            "translation.scalar_identity is not true: compiled batch "
            "kernels diverged from the scalar decode path"
        )
    for direction in ("translate_lookups_per_s", "encode_lookups_per_s"):
        rate = translation.get(direction)
        if rate is None or rate < TRANSLATION_LOOKUPS_FLOOR:
            problems.append(
                f"translation.{direction} {rate} below floor "
                f"{TRANSLATION_LOOKUPS_FLOOR:.0f}"
            )

    campaign = record.get("campaign", {})
    if campaign.get("aim_agreement") is not True:
        problems.append(
            "campaign.aim_agreement is not true: the compiled aggressor "
            "planner diverged from scalar aiming"
        )
    planner_speedup = campaign.get("planner_speedup_vs_scalar")
    if planner_speedup is None or planner_speedup < CAMPAIGN_PLANNER_SPEEDUP_FLOOR:
        problems.append(
            f"campaign.planner_speedup_vs_scalar {planner_speedup} below "
            f"floor {CAMPAIGN_PLANNER_SPEEDUP_FLOOR}"
        )

    obs = record.get("obs", {})
    if obs.get("artefacts_identical") is not True:
        problems.append(
            "obs.artefacts_identical is not true: a live telemetry bus "
            "changed an artefact (the stream must be a pure side channel)"
        )
    overhead = obs.get("overhead_ratio")
    if overhead is None or overhead > TELEMETRY_OVERHEAD_CEILING:
        problems.append(
            f"obs.overhead_ratio {overhead} above ceiling "
            f"{TELEMETRY_OVERHEAD_CEILING}"
        )
    telemetry_off = obs.get("telemetry_off_seconds")
    untraced = record.get("tracing", {}).get("untraced_seconds")
    if telemetry_off is None or untraced is None or untraced <= 0:
        problems.append(
            "obs.telemetry_off_seconds / tracing.untraced_seconds missing: "
            "cannot check the telemetry-off noise bound"
        )
    elif telemetry_off / untraced > TELEMETRY_OFF_NOISE_CEILING:
        problems.append(
            f"obs.telemetry_off_seconds {telemetry_off} is more than "
            f"{TELEMETRY_OFF_NOISE_CEILING}x the untraced baseline "
            f"{untraced}: the disabled bus is no longer free"
        )

    fleet = record.get("fleet", {})
    if fleet.get("all_correct") is not True:
        problems.append(
            "fleet.all_correct is not true: a fleet machine lost its "
            "mapping (confirm-or-fallback must never cost correctness)"
        )
    for key in (
        "strictly_decreasing_measurements",
        "strictly_decreasing_sim_seconds",
    ):
        if fleet.get(key) is not True:
            problems.append(
                f"fleet.{key} is not true: the amortized scaling curve "
                "stopped decreasing — the knowledge store is not paying"
            )
    amortization = fleet.get("amortization_speedup")
    if amortization is None or amortization < FLEET_AMORTIZATION_FLOOR:
        problems.append(
            f"fleet.amortization_speedup {amortization} below floor "
            f"{FLEET_AMORTIZATION_FLOOR}"
        )

    if environment.get("single_cpu"):
        print(
            "perf gate: single-CPU host, parallel-speedup floor skipped "
            "(bit-identity still enforced)"
        )
    else:
        speedup = grid.get("table1_parallel_speedup")
        if speedup is None or speedup < PARALLEL_SPEEDUP_FLOOR:
            problems.append(
                f"grid.table1_parallel_speedup {speedup} below floor "
                f"{PARALLEL_SPEEDUP_FLOOR}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", default="BENCH_perf.json", metavar="PATH",
        help="perf record to check (default BENCH_perf.json)",
    )
    parser.add_argument(
        "--run", action="store_true",
        help="run the perf harness first, writing the record to --bench",
    )
    args = parser.parse_args(argv)

    if args.run:
        from repro.parallel.perf import main as perf_main

        code = perf_main(["--out", args.bench])
        if code != 0:
            print(f"perf gate: harness exited {code}", file=sys.stderr)
            return code

    path = Path(args.bench)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(f"perf gate: cannot read {path}: {error}", file=sys.stderr)
        return 1

    problems = check_record(record)
    for problem in problems:
        print(f"perf gate: {problem}", file=sys.stderr)
    if not problems:
        grid = record.get("grid", {})
        single = record.get("single_run", {})
        translation = record.get("translation", {})
        campaign = record.get("campaign", {})
        fleet = record.get("fleet", {})
        print(
            "perf gate: ok "
            f"(batching {single.get('batching_speedup', float('nan')):.2f}x, "
            f"translation "
            f"{translation.get('translate_lookups_per_s', 0.0) / 1e6:.1f}M/s, "
            f"campaign planner "
            f"{campaign.get('planner_speedup_vs_scalar', float('nan')):.0f}x, "
            f"fleet amortization "
            f"{fleet.get('amortization_speedup', float('nan')):.1f}x, "
            f"telemetry overhead "
            f"{(record.get('obs', {}).get('overhead_ratio', float('nan')) - 1.0) * 100.0:+.1f}%, "
            f"parallel speedup "
            f"{grid.get('table1_parallel_speedup', 'skipped')})"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
