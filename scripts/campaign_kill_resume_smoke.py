#!/usr/bin/env python
"""CI smoke test: SIGKILL a campaign sweep mid-flight, resume, diff everything.

The deterministic resume regressions for the campaign live in
``tests/rowhammer/test_campaign.py``. This script is the end-to-end
variant with a real ``SIGKILL`` against the ``dramdig campaign run``
CLI:

1. run a small sweep (2 machines x 2 variants x 2 mitigations, one
   120-simulated-second test each) once, uninterrupted, as the
   reference — both its stdout (the leaderboard) and its ``--out``
   artifact JSON;
2. start the same sweep as a subprocess with ``--resume <journal>``
   and kill -9 it as soon as the journal holds at least one trial
   checkpoint;
3. re-run the same command to completion over the same journal with
   ``--trace``;
4. the resumed leaderboard AND the artifact file must be byte-identical
   to the reference, and the trace must show every surviving trial as
   CACHED — i.e. zero trials were re-hammered after the resume.

Exit code 0 on success. The kill is inherently racy — if the victim
finishes before the kill lands, the run still validates byte-identity
and reports that the kill was skipped.

``--artifacts DIR`` keeps the trace, summaries and artifacts in DIR
instead of the throwaway scratch directory, so CI can upload them.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SWEEP = [
    "--machines", "No.1", "No.2",
    "--variants", "double_sided", "many_sided_6",
    "--mitigations", "none", "trr",
    "--tests", "1",
    "--duration", "120",
]
POLL_SECONDS = 0.05
KILL_AFTER_RECORDS = 1
TIMEOUT_SECONDS = 600.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _cmd(out: Path, journal: Path | None, trace: Path | None = None) -> list:
    cmd = [sys.executable, "-m", "repro", "campaign", "run", *SWEEP]
    cmd += ["--out", str(out)]
    if journal is not None:
        cmd += ["--resume", str(journal)]
    if trace is not None:
        cmd += ["--trace", str(trace)]
    return cmd


def _journal_records(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "fingerprint" in record:
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep trace, summary and artifacts here (for CI upload)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="campaign-kill-") as scratch:
        journal = Path(scratch) / "campaign.journal"
        artifacts = Path(args.artifacts) if args.artifacts else Path(scratch)
        artifacts.mkdir(parents=True, exist_ok=True)
        reference_out = artifacts / "reference-campaign.json"
        resumed_out = artifacts / "resumed-campaign.json"
        trace_path = artifacts / "resumed-campaign-trace.jsonl"

        print("== reference sweep (uninterrupted, no journal) ==", flush=True)
        reference = subprocess.run(
            _cmd(reference_out, None), cwd=REPO, env=_env(),
            capture_output=True, text=True, timeout=TIMEOUT_SECONDS,
            check=True,
        ).stdout

        print("== victim sweep (will be SIGKILLed mid-flight) ==", flush=True)
        victim = subprocess.Popen(
            _cmd(resumed_out, journal), cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + TIMEOUT_SECONDS
        killed = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if _journal_records(journal) >= KILL_AFTER_RECORDS:
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
            time.sleep(POLL_SECONDS)
        else:
            victim.kill()
            print("FAIL: victim neither checkpointed nor finished in time")
            return 1

        survivors = _journal_records(journal)
        if killed:
            print(f"killed victim with {survivors} checkpointed trial(s)")
            if survivors == 0:
                print("FAIL: kill landed before any checkpoint")
                return 1
        else:
            print("victim finished before the kill landed; "
                  "validating byte-identity only")

        print("== resumed sweep (traced) ==", flush=True)
        resumed = subprocess.run(
            _cmd(resumed_out, journal, trace=trace_path), cwd=REPO,
            env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS, check=True,
        ).stdout

        if resumed != reference:
            print("FAIL: resumed leaderboard differs from the "
                  "uninterrupted run")
            sys.stdout.write(resumed)
            return 1
        if resumed_out.read_bytes() != reference_out.read_bytes():
            print("FAIL: resumed artifact differs from the reference "
                  "artifact")
            return 1
        print(f"OK: leaderboard and artifact byte-identical "
              f"({survivors} trial(s) survived the kill)")

        print("== zero-rehammer gate ==", flush=True)
        if not trace_path.exists():
            print("FAIL: resumed run wrote no trace file")
            return 1
        summary = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary",
             str(trace_path)],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        (artifacts / "resumed-campaign-trace-summary.txt").write_text(
            summary.stdout
        )
        if summary.returncode != 0:
            print("FAIL: trace summary gate rejected the trace")
            sys.stdout.write(summary.stdout)
            sys.stderr.write(summary.stderr)
            return 1
        cached = summary.stdout.count("CACHED")
        if cached != survivors:
            print(f"FAIL: {survivors} trial(s) survived the kill but the "
                  f"trace shows {cached} cached cell(s) — a survivor was "
                  "re-hammered")
            sys.stdout.write(summary.stdout)
            return 1
        print(f"OK: all {survivors} surviving trial(s) served from the "
              "journal, zero re-hammered")
        return 0


if __name__ == "__main__":
    sys.exit(main())
