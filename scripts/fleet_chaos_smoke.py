#!/usr/bin/env python
"""CI chaos smoke: SIGKILL a fleet run mid-flight, resume, demand identity.

The deterministic regressions for the fleet live in
``tests/fleet/test_orchestrator.py``; this script is the end-to-end
variant with a real ``SIGKILL`` against the CLI:

1. run an adversarial fleet once, uninterrupted, as the reference
   (stdout report + JSON artifact);
2. start the same fleet with ``--resume <journal>`` and a persistent
   ``--knowledge-store``, and kill -9 it once the journal holds at
   least one machine checkpoint beyond the store baseline;
3. resume over the same journal *and* the mutated store file the kill
   left behind — the report and artifact must be byte-identical to the
   reference (the journalled store baseline shields the resumed run
   from whatever the victim managed to persist);
4. run a third time over the completed journal with ``--trace``: every
   machine must come from the journal — the merged trace's metrics must
   show ``grid.cells_resumed`` equal to the fleet size and no
   ``fleet.machines`` counter at all (zero re-probing);
5. ``dramdig trace summary`` must accept the trace (the format gate).

Exit code 0 on success. The kill is inherently racy — if the victim
finishes before the kill lands (the simulated fleet is fast on a quick
machine), the run still validates byte-identity and the zero-re-probe
replay, and reports that the kill was skipped.

``--artifacts DIR`` keeps the artifacts and trace in DIR instead of the
throwaway scratch directory, so CI can upload them.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FLEET_SIZE = 9
CMD = [
    sys.executable, "-m", "repro", "fleet", "run",
    "--fleet-size", str(FLEET_SIZE), "--families", "3",
    "--profile", "adversarial", "--max-gib", "8", "--wave", "2",
]
POLL_SECONDS = 0.005
# The store baseline is journalled before any machine runs, so "one
# machine checkpointed" means two records.
KILL_AFTER_RECORDS = 2
TIMEOUT_SECONDS = 600.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run(extra: list[str]) -> str:
    result = subprocess.run(
        list(CMD) + extra, cwd=REPO, env=_env(), capture_output=True,
        text=True, timeout=TIMEOUT_SECONDS, check=True,
    )
    return result.stdout


def _journal_records(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "fingerprint" in record:
            count += 1
    return count


def _trace_counters(trace_path: Path) -> dict:
    for line in trace_path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "metrics":
            return record.get("counters", {})
    return {}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep artifacts and traces here (for CI upload)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="fleet-chaos-") as scratch:
        scratch = Path(scratch)
        artifacts = Path(args.artifacts) if args.artifacts else scratch
        artifacts.mkdir(parents=True, exist_ok=True)
        journal = scratch / "fleet.journal"
        store = scratch / "knowledge-store.jsonl"
        reference_json = artifacts / "fleet-reference.json"
        resumed_json = artifacts / "fleet-resumed.json"
        replayed_json = artifacts / "fleet-replayed.json"
        trace_path = artifacts / "fleet-replay-trace.jsonl"

        print("== reference run (uninterrupted, no journal) ==", flush=True)
        reference = _run(["--out", str(reference_json)])

        print("== victim run (will be SIGKILLed mid-flight) ==", flush=True)
        victim = subprocess.Popen(
            list(CMD) + ["--resume", str(journal), "--knowledge-store", str(store)],
            cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + TIMEOUT_SECONDS
        killed = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if _journal_records(journal) >= KILL_AFTER_RECORDS:
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
            time.sleep(POLL_SECONDS)
        else:
            victim.kill()
            print("FAIL: victim neither checkpointed nor finished in time")
            return 1

        survivors = _journal_records(journal)
        if killed:
            print(f"killed victim with {survivors} journal record(s)")
        else:
            print("victim finished before the kill landed; "
                  "validating byte-identity and replay only")

        print("== resumed run (journal + mutated store) ==", flush=True)
        resumed = _run([
            "--resume", str(journal), "--knowledge-store", str(store),
            "--out", str(resumed_json),
        ])
        if resumed != reference:
            print("FAIL: resumed report differs from the uninterrupted run")
            sys.stdout.write(resumed)
            return 1
        if resumed_json.read_bytes() != reference_json.read_bytes():
            print("FAIL: resumed artifact differs from the reference artifact")
            return 1
        print("OK: resumed report and artifact are byte-identical")

        print("== replay run (fully cached, traced) ==", flush=True)
        replayed = _run([
            "--resume", str(journal), "--knowledge-store", str(store),
            "--out", str(replayed_json), "--trace", str(trace_path),
        ])
        if replayed != reference:
            print("FAIL: replayed report differs from the reference")
            return 1
        if replayed_json.read_bytes() != reference_json.read_bytes():
            print("FAIL: replayed artifact differs from the reference")
            return 1
        counters = _trace_counters(trace_path)
        if counters.get("grid.cells_resumed") != FLEET_SIZE:
            print(f"FAIL: expected {FLEET_SIZE} cells resumed from the "
                  f"journal, trace says {counters.get('grid.cells_resumed')}")
            return 1
        if any(name.startswith("fleet.") for name in counters):
            probing = {k: v for k, v in counters.items() if k.startswith("fleet.")}
            print(f"FAIL: replay re-probed machines: {probing}")
            return 1
        print(f"OK: replay resumed all {FLEET_SIZE} machines from the "
              "journal with zero re-probing")

        print("== trace summary gate ==", flush=True)
        summary = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary", str(trace_path)],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=TIMEOUT_SECONDS,
        )
        (artifacts / "fleet-replay-trace-summary.txt").write_text(summary.stdout)
        if summary.returncode != 0:
            print("FAIL: trace summary gate rejected the trace")
            sys.stdout.write(summary.stdout)
            sys.stderr.write(summary.stderr)
            return 1
        print("OK: trace parsed and consistent")
        return 0


if __name__ == "__main__":
    sys.exit(main())
