"""Tests for the fault injector's determinism and fault families."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultProfile, get_profile

NO_CONFLICT = np.zeros(64, dtype=bool)
BASES = np.arange(64, dtype=np.uint64) * np.uint64(4096)
PARTNERS = BASES + np.uint64(64)
FLAT = np.full(64, 80.0)


def perturb(injector, now_s=0.0, latencies=FLAT, conflicts=NO_CONFLICT):
    return injector.perturb(latencies, conflicts, BASES, PARTNERS, now_s * 1e9)


class TestDeterminism:
    def test_same_seed_same_faults(self):
        profile = get_profile("hostile")
        a = FaultInjector(profile, seed=7)
        b = FaultInjector(profile, seed=7)
        for now_s in (0.0, 1.0, 2.5):
            np.testing.assert_array_equal(perturb(a, now_s), perturb(b, now_s))

    def test_reset_restores_initial_stream(self):
        injector = FaultInjector(get_profile("hostile"), seed=3)
        first = [perturb(injector, t) for t in (0.0, 1.0)]
        injector.reset()
        again = [perturb(injector, t) for t in (0.0, 1.0)]
        for before, after in zip(first, again):
            np.testing.assert_array_equal(before, after)

    def test_different_seeds_differ(self):
        profile = get_profile("hostile")
        a = perturb(FaultInjector(profile, seed=1), 1.0)
        b = perturb(FaultInjector(profile, seed=2), 1.0)
        assert not np.array_equal(a, b)

    def test_quiet_profile_is_bit_transparent(self):
        injector = FaultInjector(get_profile("quiet"), seed=1)
        np.testing.assert_array_equal(perturb(injector, 1.0), FLAT)

    def test_faults_only_add_latency(self):
        for name in ("spike-bursts", "drift", "boot-storm", "sticky-misreads", "hostile"):
            injector = FaultInjector(get_profile(name), seed=5)
            for now_s in (0.5, 4.0, 9.0):
                assert (perturb(injector, now_s) >= FLAT).all(), name


class TestDrift:
    def test_ramp_then_cap(self):
        profile = FaultProfile(
            name="d", drift_ns_per_s=10.0, drift_start_s=2.0, drift_cap_ns=25.0
        )
        injector = FaultInjector(profile, seed=0)
        assert injector._drift_ns(1.0) == 0.0  # before onset
        assert injector._drift_ns(3.0) == pytest.approx(10.0)
        assert injector._drift_ns(4.0) == pytest.approx(20.0)
        assert injector._drift_ns(100.0) == pytest.approx(25.0)  # capped

    def test_triangle_wave_is_bounded_and_periodic(self):
        profile = FaultProfile(name="d", drift_ns_per_s=4.0, drift_period_s=8.0)
        injector = FaultInjector(profile, seed=0)
        peak = 4.0 * 8.0 / 2.0
        assert injector._drift_ns(4.0) == pytest.approx(peak)
        assert injector._drift_ns(8.0) == pytest.approx(0.0)
        assert injector._drift_ns(2.0) == pytest.approx(injector._drift_ns(10.0))
        for t in np.linspace(0, 40, 161):
            assert 0.0 <= injector._drift_ns(float(t)) <= peak


class TestStickyMisreads:
    PROFILE = FaultProfile(
        name="m", misread_probability=0.25, misread_extra_ns=30.0, misread_window_s=1.0
    )

    def test_sticky_within_window_rerolled_across(self):
        injector = FaultInjector(self.PROFILE, seed=11)
        early = injector._misread_mask(NO_CONFLICT, BASES, PARTNERS, 0.1e9)
        late = injector._misread_mask(NO_CONFLICT, BASES, PARTNERS, 0.9e9)
        np.testing.assert_array_equal(early, late)  # same window: same lies
        next_window = injector._misread_mask(NO_CONFLICT, BASES, PARTNERS, 1.5e9)
        assert not np.array_equal(early, next_window)  # re-rolled

    def test_conflict_pairs_never_misread(self):
        injector = FaultInjector(self.PROFILE, seed=11)
        all_conflicts = np.ones(64, dtype=bool)
        mask = injector._misread_mask(all_conflicts, BASES, PARTNERS, 0.0)
        assert not mask.any()

    def test_symmetric_pair_key(self):
        injector = FaultInjector(self.PROFILE, seed=11)
        ab = injector._misread_mask(NO_CONFLICT, BASES, PARTNERS, 0.0)
        ba = injector._misread_mask(NO_CONFLICT, PARTNERS, BASES, 0.0)
        np.testing.assert_array_equal(ab, ba)

    def test_no_rng_consumed(self):
        injector = FaultInjector(self.PROFILE, seed=11)
        before = injector._rng.bit_generator.state
        injector._misread_mask(NO_CONFLICT, BASES, PARTNERS, 0.0)
        assert injector._rng.bit_generator.state == before


class TestBursts:
    def test_burst_carries_across_batches(self):
        profile = FaultProfile(
            name="b", burst_start_probability=1.0, burst_length=100, burst_extra_ns=50.0
        )
        injector = FaultInjector(profile, seed=0)
        first = injector._burst_mask(10)
        assert first.any()
        assert injector._burst_remaining > 0

    def test_no_bursts_when_disabled(self):
        injector = FaultInjector(FaultProfile(name="q"), seed=0)
        assert not injector._burst_mask(32).any()


class TestStorms:
    def test_single_storm_window(self):
        profile = FaultProfile(
            name="s",
            storm_outlier_probability=0.9,
            storm_extra_ns=400.0,
            storm_start_s=1.0,
            storm_duration_s=2.0,
        )
        injector = FaultInjector(profile, seed=0)
        assert not injector._storm_active(0.5)
        assert injector._storm_active(1.5)
        assert not injector._storm_active(3.5)

    def test_periodic_storms_recur(self):
        profile = FaultProfile(
            name="s",
            storm_outlier_probability=0.5,
            storm_extra_ns=100.0,
            storm_duration_s=1.0,
            storm_period_s=10.0,
        )
        injector = FaultInjector(profile, seed=0)
        assert injector._storm_active(0.5)
        assert not injector._storm_active(5.0)
        assert injector._storm_active(10.5)


class TestAllocPressure:
    def test_schedule_then_full_grants(self):
        profile = FaultProfile(name="a", alloc_grant_fractions=(0.25, 0.5))
        injector = FaultInjector(profile, seed=0)
        assert injector.on_allocate(1 << 20, 0) == (1 << 20) // 4
        assert injector.on_allocate(1 << 20, 1) == (1 << 20) // 2
        assert injector.on_allocate(1 << 20, 2) == 1 << 20  # past the schedule

    def test_grant_floor_is_one_page(self):
        profile = FaultProfile(name="a", alloc_grant_fractions=(0.001,))
        injector = FaultInjector(profile, seed=0)
        assert injector.on_allocate(8192, 0) == 4096
