"""Tests for the injector's integration with the simulated machine."""

import numpy as np

from repro.dram.presets import preset
from repro.faults import FaultInjector, get_profile
from repro.machine.machine import SimulatedMachine


def machine_with(profile_name, seed=1):
    faults = None
    if profile_name is not None:
        faults = FaultInjector(get_profile(profile_name), seed=seed)
    return SimulatedMachine.from_preset(preset("No.1"), seed=seed, faults=faults)


def sample_latencies(machine, count=128):
    pages = machine.allocate(1 << 22)
    addrs = pages.addresses()[:count]
    return machine.measure_latency_pairs(addrs, np.roll(addrs, 1), rounds=200)


class TestTransparency:
    def test_quiet_injector_matches_no_injector(self):
        bare = sample_latencies(machine_with(None))
        quiet = sample_latencies(machine_with("quiet"))
        np.testing.assert_array_equal(bare, quiet)

    def test_same_profile_same_seed_identical(self):
        a = sample_latencies(machine_with("hostile"))
        b = sample_latencies(machine_with("hostile"))
        np.testing.assert_array_equal(a, b)

    def test_profile_perturbs_measurements(self):
        bare = sample_latencies(machine_with(None))
        stormy = sample_latencies(machine_with("boot-storm"))
        assert (stormy >= bare).all()
        assert (stormy > bare).any()


class TestAllocPressure:
    def test_grants_shrink_then_recover(self):
        machine = machine_with("alloc-pressure")
        request = 1 << 24
        fractions = get_profile("alloc-pressure").alloc_grant_fractions
        for expected_fraction in fractions:
            pages = machine.allocate(request)
            assert pages.byte_count <= int(request * expected_fraction) + 4096
        # Past the schedule the full request is granted again.
        assert machine_with_full_grant(machine, request)


def machine_with_full_grant(machine, request):
    return machine.allocate(request).byte_count >= request - 4096
