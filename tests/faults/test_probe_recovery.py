"""Tests for the probe's bounded recalibration-on-drift recovery."""

import numpy as np
import pytest

from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.presets import preset
from repro.faults import FaultInjector, FaultProfile
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

# Baseline jumps 30 ns at t = 50 s (far past calibration), instantly at
# full magnitude thanks to the steep ramp — a worst-case thermal step.
STEP_DRIFT = FaultProfile(
    name="step", drift_ns_per_s=1000.0, drift_start_s=50.0, drift_cap_ns=30.0
)

FAST = ProbeConfig(rounds=100, calibration_pairs=512, reference_pairs=16)


def calibrated_probe(profile=None, *, seed=0, **config_overrides):
    faults = FaultInjector(profile, seed=seed) if profile is not None else None
    machine = SimulatedMachine.from_preset(
        preset("No.1"), seed=seed, noise=NoiseParams.noiseless(), faults=faults
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(
        machine,
        ProbeConfig(
            rounds=FAST.rounds,
            calibration_pairs=FAST.calibration_pairs,
            reference_pairs=FAST.reference_pairs,
            **config_overrides,
        ),
    )
    probe.calibrate(pages, np.random.default_rng(seed))
    return machine, pages, probe


def same_page_pair(pages):
    """A guaranteed conflict-free pair (same OS page, same row)."""
    base = int(pages.addresses()[0])
    return base, base ^ 0x80


def conflict_pair(pages, mapping):
    """A guaranteed same-bank different-row pair."""
    addrs = pages.addresses()[:4096]
    banks = mapping.bank_of_array(addrs)
    rows = mapping.row_of_array(addrs)
    for bank in np.unique(banks):
        candidates = addrs[banks == bank]
        candidate_rows = rows[banks == bank]
        distinct = np.unique(candidate_rows)
        if distinct.size >= 2:
            a = candidates[candidate_rows == distinct[0]][0]
            b = candidates[candidate_rows == distinct[1]][0]
            return int(a), int(b)
    raise AssertionError("no conflict pair found in sample")


class TestProbeConfigValidation:
    def test_too_few_reference_pairs_rejected(self):
        with pytest.raises(ValueError, match="reference pairs"):
            ProbeConfig(reference_pairs=4)

    def test_non_positive_min_separation_rejected(self):
        with pytest.raises(ValueError, match="min_separation"):
            ProbeConfig(min_separation=0.0)
        with pytest.raises(ValueError, match="min_separation"):
            ProbeConfig(min_separation=-0.5)

    def test_recovery_field_validation(self):
        with pytest.raises(ValueError, match="max_recalibrations"):
            ProbeConfig(max_recalibrations=-1)
        with pytest.raises(ValueError, match="drift_tolerance"):
            ProbeConfig(drift_tolerance=0.0)
        with pytest.raises(ValueError, match="drift_check_backoff"):
            ProbeConfig(drift_check_backoff=0.5)
        with pytest.raises(ValueError, match="drift_check_max_interval_s"):
            ProbeConfig(drift_check_interval_s=2.0, drift_check_max_interval_s=1.0)


class TestDriftRecovery:
    def test_stale_threshold_misclassifies_without_watch(self):
        machine, pages, probe = calibrated_probe(STEP_DRIFT)
        fast_a, fast_b = same_page_pair(pages)
        assert not probe.is_conflict(fast_a, fast_b)  # clean before onset
        machine.charge_analysis((60.0 - machine.clock.elapsed_ns / 1e9) * 1e9)
        # The seed probe (watch disarmed) misreads the drifted baseline.
        assert probe.is_conflict(fast_a, fast_b)
        assert probe.recalibrations == 0
        assert probe.events == []

    def test_reanchor_restores_classification(self):
        machine, pages, probe = calibrated_probe(STEP_DRIFT, max_recalibrations=8)
        before = probe.threshold
        fast_a, fast_b = same_page_pair(pages)
        slow_a, slow_b = conflict_pair(pages, preset("No.1").mapping)
        machine.charge_analysis((60.0 - machine.clock.elapsed_ns / 1e9) * 1e9)
        assert not probe.is_conflict(fast_a, fast_b)  # re-anchored mid-call
        assert probe.recalibrations == 1
        assert probe.events and probe.events[0].action == "recalibrated"
        # The threshold translated upward by about the injected 30 ns...
        assert probe.threshold.cutoff == pytest.approx(before.cutoff + 30.0, abs=2.0)
        # ...and still separates the two populations.
        assert probe.is_conflict(slow_a, slow_b)
        assert not probe.is_conflict(fast_a, fast_b)

    def test_budget_is_bounded(self):
        machine, pages, probe = calibrated_probe(STEP_DRIFT, max_recalibrations=1)
        fast_a, fast_b = same_page_pair(pages)
        machine.charge_analysis((60.0 - machine.clock.elapsed_ns / 1e9) * 1e9)
        probe.is_conflict(fast_a, fast_b)
        assert probe.recalibrations == 1
        # Budget exhausted: the watch disarms instead of looping forever.
        for _ in range(4):
            machine.charge_analysis(1e9)
            probe.is_conflict(fast_a, fast_b)
        assert probe.recalibrations == 1

    def test_heartbeat_backs_off_while_healthy(self):
        machine, pages, probe = calibrated_probe(max_recalibrations=8)
        fast_a, fast_b = same_page_pair(pages)
        initial_interval = probe._check_interval_ns
        for _ in range(6):
            machine.charge_analysis(probe._check_interval_ns + 1e6)
            probe.is_conflict(fast_a, fast_b)
        assert probe.drift_checks >= 2
        assert probe.recalibrations == 0  # no drift on a healthy machine
        assert probe._check_interval_ns > initial_interval
        assert probe._check_interval_ns <= probe.config.drift_check_max_interval_s * 1e9

    def test_reanchor_reuses_frozen_references(self):
        # Recovery never draws fresh addresses: the re-anchor re-measures
        # the exact reference bases retained at calibration time, so the
        # tool's RNG stream is untouched no matter how often it fires.
        machine, pages, probe = calibrated_probe(STEP_DRIFT, max_recalibrations=8)
        frozen = probe._reference_bases.copy()
        fast_a, fast_b = same_page_pair(pages)
        machine.charge_analysis((60.0 - machine.clock.elapsed_ns / 1e9) * 1e9)
        probe.is_conflict(fast_a, fast_b)
        assert probe.recalibrations == 1
        np.testing.assert_array_equal(probe._reference_bases, frozen)

    def test_defaults_match_seed_probe_exactly(self):
        _, _, watched = calibrated_probe(STEP_DRIFT, max_recalibrations=0)
        _, _, seed_probe = calibrated_probe(STEP_DRIFT)
        assert watched.threshold == seed_probe.threshold
        assert watched.events == [] and seed_probe.events == []
