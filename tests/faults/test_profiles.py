"""Tests for the declarative fault profiles and their registry."""

import dataclasses

import pytest

from repro.faults import FaultProfile, get_profile, profile_names
from repro.faults.profiles import PROFILES


class TestFaultProfileValidation:
    def test_defaults_are_quiet(self):
        assert FaultProfile().is_quiet

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="burst_start_probability"):
            FaultProfile(burst_start_probability=1.5, burst_length=4)
        with pytest.raises(ValueError, match="misread_probability"):
            FaultProfile(misread_probability=-0.1)

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ValueError, match="drift_ns_per_s"):
            FaultProfile(drift_ns_per_s=-1.0)
        with pytest.raises(ValueError, match="storm_extra_ns"):
            FaultProfile(storm_extra_ns=-5.0)

    def test_bursts_need_length(self):
        with pytest.raises(ValueError, match="burst_length"):
            FaultProfile(burst_start_probability=0.1, burst_length=0)

    def test_misreads_need_window(self):
        with pytest.raises(ValueError, match="misread_window_s"):
            FaultProfile(misread_probability=0.1, misread_window_s=0.0)

    def test_storm_period_must_cover_duration(self):
        with pytest.raises(ValueError, match="storm_period_s"):
            FaultProfile(storm_duration_s=2.0, storm_period_s=1.0)

    def test_alloc_fractions_in_unit_interval(self):
        with pytest.raises(ValueError, match="alloc_grant_fractions"):
            FaultProfile(alloc_grant_fractions=(0.5, 0.0))
        with pytest.raises(ValueError, match="alloc_grant_fractions"):
            FaultProfile(alloc_grant_fractions=(1.2,))

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_profile("quiet").drift_ns_per_s = 1.0


class TestCombine:
    def test_overlay_overrides_only_set_fields(self):
        base = get_profile("drift")
        overlay = FaultProfile(name="noise", misread_probability=0.02)
        combined = base.combine(overlay)
        assert combined.drift_ns_per_s == base.drift_ns_per_s
        assert combined.misread_probability == 0.02
        assert combined.name == "drift+noise"

    def test_quiet_overlay_changes_nothing_but_name(self):
        base = get_profile("hostile")
        combined = base.combine(FaultProfile(name="quiet"))
        assert dataclasses.replace(combined, name=base.name) == base


class TestRegistry:
    def test_known_names(self):
        for required in (
            "quiet",
            "spike-bursts",
            "drift",
            "boot-storm",
            "sticky-misreads",
            "alloc-pressure",
            "hostile",
        ):
            assert required in profile_names()

    def test_profiles_carry_their_registry_name(self):
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_lookup_roundtrip(self):
        for name in profile_names():
            assert get_profile(name) is PROFILES[name]

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown noise profile"):
            get_profile("does-not-exist")

    def test_only_quiet_is_quiet(self):
        assert get_profile("quiet").is_quiet
        for name in profile_names():
            if name != "quiet":
                assert not get_profile(name).is_quiet, name
