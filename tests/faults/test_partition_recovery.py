"""Tests for Algorithm 2's edge-case fixes and escalated recovery."""

import numpy as np
import pytest

from repro.core.partition import PartitionConfig, PartitionResult, partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.errors import PartitionError
from repro.dram.presets import preset
from repro.faults import FaultInjector, FaultProfile
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

FAST = ProbeConfig(rounds=100, calibration_pairs=512, reference_pairs=16)

# Aggressive stickiness: a third of conflict-free pairs lie for 0.3 s.
HEAVY_MISREADS = FaultProfile(
    name="heavy", misread_probability=0.3, misread_extra_ns=30.0, misread_window_s=0.3
)


def calibrated(profile=None, seed=0):
    faults = FaultInjector(profile, seed=seed) if profile is not None else None
    machine = SimulatedMachine.from_preset(
        preset("No.1"), seed=seed, noise=NoiseParams.noiseless(), faults=faults
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, FAST)
    probe.calibrate(pages, np.random.default_rng(seed))
    return machine, pages, probe


def pool_by_banks(pages, mapping, per_bank):
    """A pool with exactly ``per_bank[i]`` addresses of the i-th bank.

    Samples cache-line-grained addresses (page bases alone cannot vary
    in-page bank bits like bit 6) and keeps one address per (bank, row),
    so every same-pile pair is a genuine row conflict.
    """
    addrs = np.unique(pages.sample_addresses(65536, np.random.default_rng(99)))
    bank_ids = mapping.bank_of_array(addrs)
    rows = mapping.row_of_array(addrs)
    chunks = []
    for bank, count in zip(sorted(np.unique(bank_ids)), per_bank):
        candidates = addrs[bank_ids == bank]
        candidate_rows = rows[bank_ids == bank]
        _, first_of_row = np.unique(candidate_rows, return_index=True)
        chunks.append(candidates[first_of_row][:count])
        assert chunks[-1].size == count
    return np.concatenate(chunks)


class TestConfigValidation:
    def test_new_knob_validation(self):
        with pytest.raises(ValueError, match="max_verify_sweeps"):
            PartitionConfig(max_verify_sweeps=0)
        with pytest.raises(ValueError, match="verify_backoff_s"):
            PartitionConfig(verify_backoff_s=-1.0)
        with pytest.raises(ValueError, match="max_escalations"):
            PartitionConfig(max_escalations=-1)
        with pytest.raises(ValueError, match="escalation_backoff_s"):
            PartitionConfig(escalation_backoff_s=-0.5)

    def test_defaults_keep_seed_behaviour(self):
        config = PartitionConfig()
        assert config.max_verify_sweeps == 1
        assert config.max_escalations == 0
        assert config.blacklist_rejected is True


class TestStopReasons:
    def test_complete_partition_records_reason(self):
        _, pages, probe = calibrated()
        pool = pool_by_banks(pages, preset("No.1").mapping, [8] * 16)
        result = partition_pool(
            probe,
            pool,
            16,
            np.random.default_rng(0),
            PartitionConfig(per_threshold=1.0),
        )
        assert result.stop_reason == "complete"
        assert not result.ran_dry
        assert result.pile_count == 16

    def test_ran_dry_warns_and_records_reason(self):
        _, pages, probe = calibrated()
        # One bank has too few addresses to ever form a tolerable pile.
        per_bank = [8] * 15 + [3]
        pool = pool_by_banks(pages, preset("No.1").mapping, per_bank)
        with pytest.warns(RuntimeWarning, match="partition ran dry"):
            result = partition_pool(
                probe,
                pool,
                16,
                np.random.default_rng(0),
                PartitionConfig(per_threshold=1.0),
            )
        assert result.ran_dry
        assert result.stop_reason == "pool-exhausted"
        assert result.pile_count == 15


class TestPivotBlacklist:
    def test_rejected_pivots_not_redrawn(self):
        _, pages, probe = calibrated()
        # Four banks of 16 in a pool sized for 16 piles: every pile is 4x
        # too big, so every pivot is rejected; the blacklist must run
        # through all 64 candidates exactly once and then fail loudly
        # instead of redrawing bad pivots until the round budget burns out.
        pool = pool_by_banks(pages, preset("No.1").mapping, [16] * 4)
        with pytest.raises(PartitionError, match="remaining pivot candidates rejected"):
            partition_pool(probe, pool, 16, np.random.default_rng(0))

    def test_blacklist_disabled_burns_budget(self):
        _, pages, probe = calibrated()
        pool = pool_by_banks(pages, preset("No.1").mapping, [32] * 4)
        with pytest.raises(PartitionError, match="no convergence after 128 rounds"):
            partition_pool(
                probe,
                pool,
                16,
                np.random.default_rng(0),
                PartitionConfig(blacklist_rejected=False),
            )


class TestEscalation:
    def test_budget_escalation_extends_rounds(self):
        _, pages, probe = calibrated()
        pool = pool_by_banks(pages, preset("No.1").mapping, [32] * 4)
        config = PartitionConfig(blacklist_rejected=False, max_escalations=1)
        with pytest.raises(PartitionError, match="no convergence after 256 rounds"):
            partition_pool(probe, pool, 16, np.random.default_rng(0), config)

    def test_escalation_sleeps_between_budgets(self):
        machine, pages, probe = calibrated()
        pool = pool_by_banks(pages, preset("No.1").mapping, [32] * 4)
        config = PartitionConfig(
            blacklist_rejected=False, max_escalations=2, escalation_backoff_s=2.0
        )
        before = machine.clock.elapsed_ns
        with pytest.raises(PartitionError):
            partition_pool(probe, pool, 16, np.random.default_rng(0), config)
        # Backoffs double: 2 s + 4 s of simulated sleep at minimum.
        assert machine.clock.elapsed_ns - before >= 6.0 * 1e9


class TestEscalatedVerification:
    def test_seed_config_cannot_survive_sticky_misreads(self):
        _, pages, probe = calibrated(HEAVY_MISREADS)
        pool = pool_by_banks(pages, preset("No.1").mapping, [8] * 16)
        with pytest.raises(PartitionError):
            partition_pool(
                probe,
                pool,
                16,
                np.random.default_rng(0),
                PartitionConfig(per_threshold=1.0),
            )

    def test_backoff_ladder_outwaits_sticky_windows(self):
        _, pages, probe = calibrated(HEAVY_MISREADS)
        mapping = preset("No.1").mapping
        pool = pool_by_banks(pages, mapping, [8] * 16)
        result = partition_pool(
            probe,
            pool,
            16,
            np.random.default_rng(0),
            PartitionConfig(per_threshold=1.0, max_verify_sweeps=6, max_escalations=3),
        )
        assert result.pile_count == 16
        assert result.verify_resweeps > 0
        # Every accepted pile is pure: all members share the pivot's bank.
        for pivot, members in result.piles.items():
            assert (mapping.bank_of_array(members) == mapping.bank_of(pivot)).all()
