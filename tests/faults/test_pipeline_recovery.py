"""End-to-end acceptance: the seed pipeline aborts, the resilient one recovers.

For every noise profile below, the fail-fast seed configuration
(``max_retries=0``, recovery off) deterministically aborts, while
``DramDigConfig.resilient()`` completes and recovers the ground-truth
mapping — across five machine seeds, deterministically.
"""

import warnings

import pytest

from repro.core.dramdig import DramDig, DramDigConfig
from repro.dram.errors import (
    CalibrationError,
    FunctionSearchError,
    PartitionError,
    ReproError,
    SelectionError,
)
from repro.dram.presets import preset
from repro.faults import FaultInjector, get_profile
from repro.machine.machine import SimulatedMachine

SEED_CONFIG = DramDigConfig(max_retries=0)  # the fail-fast seed pipeline
RESILIENT_CONFIG = DramDigConfig.resilient(SEED_CONFIG)
SEEDS = (1, 2, 3, 4, 5)

# Per profile: the abort signature of the seed pipeline. Wrapped aborts
# surface as ReproError with the step error as __cause__.
ABORTS = {
    "boot-storm": (CalibrationError,),
    "drift": (PartitionError,),
    "sticky-misreads": (PartitionError, FunctionSearchError),
    "alloc-pressure": (SelectionError,),
}


def run(profile_name, seed, config):
    machine = SimulatedMachine.from_preset(
        preset("No.1"),
        seed=seed,
        faults=FaultInjector(get_profile(profile_name), seed=seed),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return DramDig(config).run(machine)


@pytest.mark.parametrize("profile_name", sorted(ABORTS))
@pytest.mark.parametrize("seed", SEEDS)
def test_seed_pipeline_aborts(profile_name, seed):
    with pytest.raises(ReproError) as exc_info:
        run(profile_name, seed, SEED_CONFIG)
    error = exc_info.value
    expected = ABORTS[profile_name]
    assert isinstance(error, expected) or isinstance(error.__cause__, expected)


@pytest.mark.parametrize("profile_name", sorted(ABORTS))
@pytest.mark.parametrize("seed", SEEDS)
def test_resilient_pipeline_recovers(profile_name, seed):
    result = run(profile_name, seed, RESILIENT_CONFIG)
    assert result.mapping.equivalent_to(preset("No.1").mapping)


def test_recovery_reports_degradation():
    result = run("drift", 1, RESILIENT_CONFIG)
    assert result.degraded
    assert any(event.action == "recalibrated" for event in result.degradation)
    assert "recovery actions" in result.summary()


def test_restart_recovery_reports_attempts():
    result = run("alloc-pressure", 1, RESILIENT_CONFIG)
    assert result.retries > 0
    assert any(event.action == "restart" for event in result.degradation)


def test_recovery_is_deterministic():
    first = run("sticky-misreads", 2, RESILIENT_CONFIG)
    second = run("sticky-misreads", 2, RESILIENT_CONFIG)
    assert first.mapping.bank_functions == second.mapping.bank_functions
    assert first.mapping.row_bits == second.mapping.row_bits
    assert first.mapping.column_bits == second.mapping.column_bits
    assert first.retries == second.retries
    assert len(first.degradation) == len(second.degradation)
    assert first.total_seconds == second.total_seconds
