"""Cross-module integration tests: the full stories the paper tells."""

import pytest

from repro import (
    BeliefMapping,
    DramaTool,
    DramDig,
    DramDigConfig,
    HammerConfig,
    SimulatedMachine,
    XiaoTool,
    assess_vulnerability,
    preset,
    preset_names,
)
from repro.baselines.drama import DramaConfig
from repro.core.probe import ProbeConfig
from repro.dram.errors import ReproError


def test_public_api_surface():
    """Everything the README shows must be importable from `repro`."""
    import repro

    for name in (
        "DramDig",
        "DramaTool",
        "XiaoTool",
        "SimulatedMachine",
        "preset",
        "BeliefMapping",
        "assess_vulnerability",
    ):
        assert hasattr(repro, name), name
    assert repro.__version__


def test_readme_quickstart_verbatim():
    machine = SimulatedMachine.from_preset(preset("No.1"))
    result = DramDig().run(machine)
    text = result.mapping.describe()
    assert "(14, 17)" in text
    assert "17~32" in text


def test_full_story_reverse_engineer_then_hammer():
    """Recover the mapping with DRAMDig, then use it to hammer: aim
    accuracy must be ~100% and the vulnerable machine must flip."""
    machine_preset = preset("No.2")
    machine = SimulatedMachine.from_preset(machine_preset, seed=5)
    result = DramDig(DramDigConfig(probe=ProbeConfig(rounds=200))).run(machine)
    report = assess_vulnerability(
        machine,
        BeliefMapping.from_mapping(result.mapping),
        vulnerability=machine_preset.hammer_vulnerability,
        tests=2,
        config=HammerConfig(duration_seconds=30.0),
    )
    assert all(test.aim_accuracy > 0.99 for test in report.tests)
    assert report.total_flips > 0


def test_drama_belief_hammers_worse_on_average():
    """Table III in miniature: across several DRAMA runs, its beliefs aim
    worse than DRAMDig's deterministic mapping."""
    machine_preset = preset("No.1")
    hammer = HammerConfig(duration_seconds=30.0, test_variability=0.0)

    machine = SimulatedMachine.from_preset(machine_preset, seed=5)
    dramdig = DramDig(DramDigConfig(probe=ProbeConfig(rounds=200))).run(machine)
    dramdig_report = assess_vulnerability(
        machine,
        BeliefMapping.from_mapping(dramdig.mapping),
        vulnerability=machine_preset.hammer_vulnerability,
        tests=3,
        config=hammer,
    )

    drama_flips = 0
    for seed in range(3):
        machine = SimulatedMachine.from_preset(machine_preset, seed=5)
        drama = DramaTool(
            DramaConfig(pool_size=2500, rounds=400, timeout_seconds=600.0),
            seed=seed,
        ).run(machine)
        if drama.belief is None:
            continue
        report = assess_vulnerability(
            machine,
            drama.belief,
            vulnerability=machine_preset.hammer_vulnerability,
            tests=1,
            config=hammer,
            seed=seed,
        )
        drama_flips += report.total_flips
    assert dramdig_report.total_flips >= drama_flips


def test_tools_share_one_machine_contract():
    """All tools run against the same facade; the clock accumulates across
    tools run on one machine instance."""
    machine = SimulatedMachine.from_preset(preset("No.4"), seed=1)
    DramDig(DramDigConfig(probe=ProbeConfig(rounds=200))).run(machine)
    after_dramdig = machine.elapsed_seconds
    XiaoTool().run(machine)
    assert machine.elapsed_seconds > after_dramdig


def test_every_preset_has_consistent_identity():
    for name in preset_names():
        machine_preset = preset(name)
        machine = SimulatedMachine.from_preset(machine_preset)
        assert machine.total_bytes == machine_preset.geometry.total_bytes
        assert machine.microarchitecture == machine_preset.microarchitecture
        assert machine.sysinfo().total_banks == machine_preset.geometry.total_banks


def test_failure_surfaces_as_repro_error():
    """A hopeless configuration (tiny buffer) fails with the library's own
    exception type, not a random internal error."""
    config = DramDigConfig(
        probe=ProbeConfig(rounds=200), alloc_fraction=0.01, max_retries=0
    )
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
    with pytest.raises(ReproError):
        DramDig(config).run(machine)
