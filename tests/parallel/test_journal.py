"""Tests for the checkpoint journal and cell fingerprinting."""

import json

import pytest

from repro.parallel import CheckpointJournal, GridCell, fingerprint_cell
from repro.parallel.journal import JOURNAL_FORMAT


class TestFingerprint:
    def test_stable_across_calls(self):
        cell = GridCell("repro.analysis.bits:parity", {"value": 6})
        assert fingerprint_cell(cell) == fingerprint_cell(cell)

    def test_insertion_order_of_payload_is_irrelevant(self):
        forward = GridCell(
            "repro.evalsuite.table1:xiao_machine_cell", {"name": "No.1", "seed": 1}
        )
        backward = GridCell(
            "repro.evalsuite.table1:xiao_machine_cell", {"seed": 1, "name": "No.1"}
        )
        assert fingerprint_cell(forward) == fingerprint_cell(backward)

    def test_payload_content_changes_fingerprint(self):
        base = GridCell("repro.analysis.bits:parity", {"value": 6})
        other = GridCell("repro.analysis.bits:parity", {"value": 7})
        assert fingerprint_cell(base) != fingerprint_cell(other)

    def test_task_changes_fingerprint(self):
        one = GridCell("repro.analysis.bits:parity", {"value": 6})
        two = GridCell("repro.faults.gridfaults:echo_cell", {"value": 6})
        assert fingerprint_cell(one) != fingerprint_cell(two)

    def test_dataclass_payloads_fingerprint_by_content(self):
        from repro.baselines.drama import DramaConfig

        one = GridCell(
            "repro.evalsuite.table1:drama_machine_cell",
            {"name": "No.1", "seed": 1, "determinism_runs": 2,
             "drama_config": DramaConfig()},
        )
        two = GridCell(
            "repro.evalsuite.table1:drama_machine_cell",
            {"name": "No.1", "seed": 1, "determinism_runs": 2,
             "drama_config": DramaConfig()},
        )
        assert fingerprint_cell(one) == fingerprint_cell(two)


class TestCheckpointJournal:
    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "never-written.jsonl")
        assert len(journal) == 0
        assert journal.lookup("deadbeef") == (False, None)

    def test_roundtrip_exact(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        value = {"solved": True, "time": 69.5, "points": (1, 2, 3)}
        journal.record("fp-1", "repro.x:y", value)
        hit, loaded = journal.lookup("fp-1")
        assert hit
        assert loaded == value
        assert isinstance(loaded["time"], float)

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("fp-1", "repro.x:y", [1.0, 2.0])
        reloaded = CheckpointJournal(path)
        assert "fp-1" in reloaded
        assert reloaded.lookup("fp-1") == (True, [1.0, 2.0])

    def test_file_always_has_header(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("fp-1", "repro.x:y", 1)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["format"] == JOURNAL_FORMAT

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("fp-good", "repro.x:y", "kept")
        with open(path, "a") as handle:
            handle.write('{"torn": \n')
            handle.write("not json at all\n")
        reloaded = CheckpointJournal(path)
        assert reloaded.lookup("fp-good") == (True, "kept")
        assert len(reloaded) == 1

    def test_unpicklable_record_counts_as_miss(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"format": JOURNAL_FORMAT, "version": 1})
            + "\n"
            + json.dumps(
                {"fingerprint": "fp-bad", "task": "repro.x:y", "result": "!!!"}
            )
            + "\n"
        )
        journal = CheckpointJournal(path)
        assert journal.lookup("fp-bad") == (False, None)

    def test_duplicate_record_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "journal.jsonl")
        journal.record("fp-1", "repro.x:y", "first")
        journal.record("fp-1", "repro.x:y", "second")
        assert journal.lookup("fp-1") == (True, "first")
        assert len(journal) == 1


class TestLoadRobustness:
    """A SIGKILL mid-append leaves a torn trailing line; loading must keep
    every intact record and surface the damage as degradation events."""

    def _chop(self, path, keep_fraction=0.5):
        raw = path.read_bytes()
        cut = raw.rfind(b"\n", 0, len(raw) - 1)  # start of last record
        torn = raw[: cut + 1 + int((len(raw) - cut) * keep_fraction)]
        assert torn != raw
        path.write_bytes(torn)

    def test_chopped_trailing_record_keeps_the_rest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CheckpointJournal(path)
        journal.record("fp-1", "repro.x:y", {"machine": 1})
        journal.record("fp-2", "repro.x:y", {"machine": 2})
        self._chop(path)

        reloaded = CheckpointJournal(path)
        assert reloaded.lookup("fp-1") == (True, {"machine": 1})
        assert reloaded.lookup("fp-2") == (False, None)
        assert len(reloaded.load_events) == 1
        event = reloaded.load_events[0]
        assert event.step == "journal"
        assert event.action == "skipped-record"
        assert "truncated" in event.detail

    def test_garbled_bytes_do_not_abort_the_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("fp-1", "repro.x:y", "kept")
        with open(path, "ab") as handle:
            handle.write(b"\xff\xfe\x00 not utf8 not json\n")
        reloaded = CheckpointJournal(path)
        assert reloaded.lookup("fp-1") == (True, "kept")
        assert len(reloaded.load_events) == 1

    def test_record_missing_fields_is_an_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("fp-1", "repro.x:y", 1)
        with open(path, "a") as handle:
            handle.write(json.dumps({"task": "repro.x:y"}) + "\n")
        reloaded = CheckpointJournal(path)
        assert len(reloaded) == 1
        assert any("fingerprint" in e.detail for e in reloaded.load_events)

    def test_clean_journal_has_no_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CheckpointJournal(path).record("fp-1", "repro.x:y", 1)
        assert CheckpointJournal(path).load_events == []
