"""Unit tests for the pool manager and the cell-batching helpers.

The pool tests exercise lease/park/discard bookkeeping only — a
:class:`~concurrent.futures.ProcessPoolExecutor` spawns no workers
until something is submitted, so these stay fast. The cross-process
bit-identity guarantees are pinned in ``tests/evalsuite/test_pool.py``.
"""

import pytest

from repro.parallel import (
    POOL_MODES,
    GridCell,
    PoolManager,
    chunk_indices,
    execute_cell_batch,
    get_pool_manager,
    resolve_batch_cells,
    worker_state,
)
from repro.parallel.grid import DEFAULT_START_METHOD
from repro.parallel.pool import clear_worker_state


@pytest.fixture
def manager():
    instance = PoolManager()
    yield instance
    instance.shutdown_all()


class TestPoolManager:
    def test_modes_constant(self):
        assert POOL_MODES == ("persistent", "fresh")

    def test_invalid_mode_rejected(self, manager):
        with pytest.raises(ValueError, match="pool mode"):
            manager.lease(2, DEFAULT_START_METHOD, mode="warm")

    def test_release_parks_and_lease_reuses(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD)
        assert manager.parked_count == 0
        manager.release(pool, DEFAULT_START_METHOD, 2)
        assert manager.parked_count == 1
        assert manager.lease(2, DEFAULT_START_METHOD) is pool
        manager.release(pool, DEFAULT_START_METHOD, 2)

    def test_fresh_mode_never_parks(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD, mode="fresh")
        manager.release(pool, DEFAULT_START_METHOD, 2)
        assert manager.parked_count == 0

    def test_fresh_lease_leaves_parked_pool_alone(self, manager):
        parked = manager.lease(2, DEFAULT_START_METHOD)
        manager.release(parked, DEFAULT_START_METHOD, 2)
        fresh = manager.lease(2, DEFAULT_START_METHOD, mode="fresh")
        assert fresh is not parked
        manager.release(fresh, DEFAULT_START_METHOD, 2)
        assert manager.parked_count == 1
        assert manager.lease(2, DEFAULT_START_METHOD) is parked
        manager.release(parked, DEFAULT_START_METHOD, 2)

    def test_shapes_do_not_collide(self, manager):
        two = manager.lease(2, DEFAULT_START_METHOD)
        manager.release(two, DEFAULT_START_METHOD, 2)
        three = manager.lease(3, DEFAULT_START_METHOD)
        assert three is not two
        manager.release(three, DEFAULT_START_METHOD, 3)
        assert manager.parked_count == 2

    def test_discarded_pool_is_never_parked(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD)
        manager.discard(pool)
        # a defensive release after discard must not park the corpse
        manager.release(pool, DEFAULT_START_METHOD, 2)
        assert manager.parked_count == 0

    def test_broken_pool_is_shut_down_on_release(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD)
        pool._broken = "worker died"
        manager.release(pool, DEFAULT_START_METHOD, 2)
        assert manager.parked_count == 0

    def test_broken_parked_pool_is_replaced_on_lease(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD)
        manager.release(pool, DEFAULT_START_METHOD, 2)
        pool._broken = "worker died while parked"
        replacement = manager.lease(2, DEFAULT_START_METHOD)
        assert replacement is not pool
        manager.release(replacement, DEFAULT_START_METHOD, 2)

    def test_shutdown_all_clears_parked(self, manager):
        pool = manager.lease(2, DEFAULT_START_METHOD)
        manager.release(pool, DEFAULT_START_METHOD, 2)
        manager.shutdown_all()
        assert manager.parked_count == 0

    def test_global_manager_is_a_singleton(self):
        assert get_pool_manager() is get_pool_manager()


class TestWorkerState:
    def setup_method(self):
        clear_worker_state()

    def teardown_method(self):
        clear_worker_state()

    def test_builds_once_per_key(self):
        calls = []

        def build():
            calls.append(1)
            return {"table": 42}

        first = worker_state("preset:No.1", build)
        second = worker_state("preset:No.1", build)
        assert first is second
        assert len(calls) == 1

    def test_distinct_keys_build_separately(self):
        assert worker_state("a", lambda: "A") == "A"
        assert worker_state("b", lambda: "B") == "B"

    def test_clear_resets(self):
        worker_state("k", lambda: 1)
        clear_worker_state()
        assert worker_state("k", lambda: 2) == 2


class TestResolveBatchCells:
    def test_none_and_zero_and_one_mean_no_batching(self):
        assert resolve_batch_cells(None) == 1
        assert resolve_batch_cells(0) == 1
        assert resolve_batch_cells(1) == 1

    def test_positive_passthrough(self):
        assert resolve_batch_cells(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="batch-cells must be positive"):
            resolve_batch_cells(-3)


class TestChunkIndices:
    def test_no_batching_is_singletons(self):
        assert chunk_indices([3, 1, 4], 1) == [[3], [1], [4]]

    def test_chunks_are_consecutive(self):
        assert chunk_indices(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_preserves_given_order(self):
        assert chunk_indices([5, 2, 9, 0], 2) == [[5, 2], [9, 0]]

    def test_empty(self):
        assert chunk_indices([], 4) == []


class TestExecuteCellBatch:
    def test_ok_markers_in_order(self):
        cells = [
            GridCell("repro.analysis.bits:parity", {"value": value})
            for value in (0b1, 0b11)
        ]
        assert execute_cell_batch(cells) == [("ok", 1), ("ok", 0)]

    def test_error_marker_does_not_poison_batchmates(self, tmp_path):
        bad = GridCell(
            "repro.faults.gridfaults:flaky_cell",
            {"scratch": str(tmp_path), "key": "boom", "fail_times": 99},
        )
        good = GridCell("repro.analysis.bits:parity", {"value": 0b1})
        markers = execute_cell_batch([bad, good])
        assert markers[0][0] == "error"
        assert bad.task in markers[0][1]
        assert markers[1] == ("ok", 1)
