"""Tests for the supervised grid runner (worker death, hangs, retries).

The pooled tests spawn real worker processes and inject real process
death (``os._exit``), so they are slower than the serial ones; they are
the regression for the load-bearing claim that ``BrokenProcessPool``
never reaches a caller of :func:`run_cells_supervised`.
"""

import pytest

from repro.faults.gridfaults import invocations
from repro.parallel import (
    GridCell,
    GridError,
    GridPolicy,
    run_cells,
    run_cells_supervised,
)


def _parity_cells(values):
    return [
        GridCell("repro.analysis.bits:parity", {"value": value}) for value in values
    ]


class TestGridPolicy:
    def test_defaults_are_valid(self):
        policy = GridPolicy()
        assert policy.retries == 0
        assert policy.cell_timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cell_timeout_s": 0},
            {"cell_timeout_s": -1.0},
            {"run_deadline_s": 0},
            {"retries": -1},
            {"backoff_initial_s": -0.1},
            {"backoff_multiplier": 0.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GridPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = GridPolicy(
            backoff_initial_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)


class TestSerialSupervised:
    def test_matches_fail_fast_results(self):
        cells = _parity_cells([0b0, 0b1, 0b11, 0b111])
        outcome = run_cells_supervised(cells)
        assert outcome.complete
        assert not outcome.degraded
        assert outcome.results == run_cells(cells)

    def test_empty_input(self):
        outcome = run_cells_supervised([])
        assert outcome.results == []
        assert outcome.complete

    def test_cell_error_degrades_not_raises(self, tmp_path):
        cells = _parity_cells([1]) + [
            GridCell(
                "repro.faults.gridfaults:flaky_cell",
                {"scratch": str(tmp_path), "key": "always", "fail_times": 99},
            )
        ] + _parity_cells([3])
        outcome = run_cells_supervised(cells)
        assert not outcome.complete
        assert [f.index for f in outcome.failures] == [1]
        assert outcome.failures[0].reason == "error"
        assert "scripted failure" in outcome.failures[0].detail
        # neighbours still computed, failure marker sits in the slot
        assert outcome.results[0] == 1
        assert outcome.results[1] is outcome.failures[0]
        assert outcome.results[2] == 0
        with pytest.raises(GridError, match="flaky_cell"):
            outcome.require()

    def test_retries_recover_flaky_cell(self, tmp_path):
        cell = GridCell(
            "repro.faults.gridfaults:flaky_cell",
            {"scratch": str(tmp_path), "key": "flaky", "fail_times": 2,
             "value": "won"},
        )
        policy = GridPolicy(retries=2, backoff_initial_s=0.01, backoff_max_s=0.02)
        outcome = run_cells_supervised([cell], policy=policy)
        assert outcome.complete
        assert outcome.results == ["won"]
        assert invocations(str(tmp_path), "flaky") == 3
        retries = [e for e in outcome.events if e.action == "retry"]
        assert len(retries) == 2
        assert all(e.step == "grid" for e in retries)

    def test_retry_budget_exhausts(self, tmp_path):
        cell = GridCell(
            "repro.faults.gridfaults:flaky_cell",
            {"scratch": str(tmp_path), "key": "stubborn", "fail_times": 99},
        )
        policy = GridPolicy(retries=1, backoff_initial_s=0.01)
        outcome = run_cells_supervised([cell], policy=policy)
        assert not outcome.complete
        assert outcome.failures[0].attempts == 2

    def test_run_deadline_salvages_finished_prefix(self, tmp_path):
        cells = [
            GridCell(
                "repro.faults.gridfaults:hang_cell",
                {"seconds": 0.4, "value": "slow-but-done"},
            ),
            _parity_cells([1])[0],
        ]
        policy = GridPolicy(run_deadline_s=0.1)
        outcome = run_cells_supervised(cells, policy=policy)
        # serial runs cannot pre-empt a cell, so the first finishes;
        # the second is refused because the deadline has passed
        assert outcome.results[0] == "slow-but-done"
        assert [f.index for f in outcome.failures] == [1]
        assert outcome.failures[0].reason == "run-deadline"


class TestJournalledRuns:
    def test_resume_skips_journalled_cells(self, tmp_path):
        cells = [
            GridCell(
                "repro.faults.gridfaults:counting_cell",
                {"scratch": str(tmp_path), "key": f"cell{i}", "value": i * 10},
            )
            for i in range(4)
        ]
        journal_path = tmp_path / "journal.jsonl"
        first = run_cells_supervised(cells, journal=journal_path)
        assert first.complete
        assert first.resumed == 0
        assert first.results == [0, 10, 20, 30]

        second = run_cells_supervised(cells, journal=journal_path)
        assert second.complete
        assert second.resumed == 4
        assert second.results == first.results
        # zero re-executions: every counter still reads exactly one
        for i in range(4):
            assert invocations(str(tmp_path), f"cell{i}") == 1

    def test_failed_cells_are_not_journalled(self, tmp_path):
        cells = [
            GridCell(
                "repro.faults.gridfaults:flaky_cell",
                {"scratch": str(tmp_path), "key": "retryable", "fail_times": 99},
            )
        ]
        journal_path = tmp_path / "journal.jsonl"
        outcome = run_cells_supervised(cells, journal=journal_path)
        assert not outcome.complete
        # a rerun executes the cell again (it was never checkpointed)
        rerun = run_cells_supervised(cells, journal=journal_path)
        assert rerun.resumed == 0
        assert not rerun.complete


class TestPooledSupervised:
    """Real worker processes, real process death. Slower by necessity."""

    def test_pooled_matches_fail_fast_results(self):
        cells = _parity_cells(list(range(8)))
        outcome = run_cells_supervised(cells, jobs=2)
        assert outcome.complete
        assert outcome.results == run_cells(cells)

    def test_worker_death_is_contained(self):
        """A cell that kills its worker fails alone; the run survives.

        This is the headline guarantee: ``BrokenProcessPool`` never
        escapes, and with ``retries=0`` the poison cell cannot burn its
        neighbours' budgets (quarantine attribution re-runs suspects
        solo before charging anyone).
        """
        cells = (
            _parity_cells([1, 2])
            + [GridCell("repro.faults.gridfaults:poison_cell", {})]
            + _parity_cells([4, 7])
        )
        outcome = run_cells_supervised(cells, jobs=2)
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "worker-death"
        expected = run_cells(_parity_cells([1, 2, 4, 7]))
        survivors = [r for i, r in enumerate(outcome.results) if i != 2]
        assert survivors == expected
        respawns = [e for e in outcome.events if e.action == "respawn"]
        assert respawns, "a dead worker must force a pool respawn"

    def test_transient_worker_death_recovers_with_retry(self, tmp_path):
        cells = _parity_cells([1]) + [
            GridCell(
                "repro.faults.gridfaults:poison_once_cell",
                {"scratch": str(tmp_path), "key": "once", "value": "second-try"},
            )
        ]
        policy = GridPolicy(retries=1, backoff_initial_s=0.01)
        outcome = run_cells_supervised(cells, jobs=2, policy=policy)
        assert outcome.complete
        assert outcome.results == [1, "second-try"]
        assert outcome.degraded  # the recovery is documented, not silent

    def test_hung_cell_times_out_and_innocents_survive(self):
        cells = _parity_cells([1, 2]) + [
            GridCell("repro.faults.gridfaults:hang_cell", {"seconds": 3600.0})
        ]
        policy = GridPolicy(cell_timeout_s=1.5)
        outcome = run_cells_supervised(cells, jobs=2, policy=policy)
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "timeout"
        assert outcome.results[:2] == run_cells(_parity_cells([1, 2]))
        assert any(e.action == "timeout" for e in outcome.events)
