"""Unit tests for the SimulatedMachine facade and clock accounting."""

import numpy as np
import pytest

from repro.dram.presets import preset
from repro.machine.clock import MeasurementCost, SimClock
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


def quiet_machine(name="No.1", seed=0):
    return SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=NoiseParams.noiseless()
    )


class TestClock:
    def test_charge_accumulates(self):
        clock = SimClock()
        clock.charge(5e9)
        clock.charge(1e9)
        assert clock.elapsed_seconds == pytest.approx(6.0)
        assert clock.elapsed_minutes == pytest.approx(0.1)
        assert clock.charges == 2

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1.0)

    def test_checkpoint_span(self):
        clock = SimClock()
        clock.charge(100.0)
        mark = clock.checkpoint()
        clock.charge(50.0)
        assert clock.since(mark) == pytest.approx(50.0)

    def test_measurement_cost_formula(self):
        cost = MeasurementCost(setup_ns=1000.0, per_round_ns=10.0)
        assert cost.measurement_ns(100, 200.0) == pytest.approx(1000 + 100 * 210.0)

    def test_measurement_cost_validation(self):
        with pytest.raises(ValueError):
            MeasurementCost().measurement_ns(0, 100.0)


class TestMeasurement:
    def test_conflict_pair_is_slow(self):
        machine = quiet_machine()
        mapping = machine.ground_truth
        base = 1 << 24
        conflict = mapping.encode(
            mapping.dram_address(base)._replace(row=mapping.row_of(base) ^ 1)
        )
        same_row = base + 64
        assert machine.measure_latency(base, conflict) > machine.measure_latency(
            base, same_row
        )

    def test_batch_matches_scalar_classification(self):
        machine = quiet_machine("No.4")
        rng = np.random.default_rng(0)
        others = rng.integers(0, machine.total_bytes, 256, dtype=np.uint64)
        base = int(others[0]) ^ (1 << 20)
        batch = machine.measure_latency_batch(base, others)
        for i in (0, 50, 128, 255):
            scalar = machine.measure_latency(base, int(others[i]))
            assert batch[i] == pytest.approx(scalar)

    def test_clock_charged_per_measurement(self):
        machine = quiet_machine()
        before = machine.clock.elapsed_ns
        machine.measure_latency(0, 1 << 20, rounds=100)
        elapsed = machine.clock.elapsed_ns - before
        # 100 rounds x 2 accesses x ~75-110ns each plus overheads.
        assert 10_000 < elapsed < 100_000

    def test_batch_charges_linear_in_size(self):
        machine = quiet_machine()
        rng = np.random.default_rng(1)
        others = rng.integers(0, machine.total_bytes, 1000, dtype=np.uint64)
        before = machine.clock.elapsed_ns
        machine.measure_latency_batch(0, others, rounds=100)
        small = machine.clock.elapsed_ns - before
        before = machine.clock.elapsed_ns
        machine.measure_latency_batch(0, np.tile(others, 2), rounds=100)
        large = machine.clock.elapsed_ns - before
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_stats_counters(self):
        machine = quiet_machine()
        machine.measure_latency(0, 4096, rounds=10)
        machine.measure_latency_batch(
            0, np.array([64, 128], dtype=np.uint64), rounds=10
        )
        assert machine.stats.measurements == 3
        assert machine.stats.accesses_timed == 2 * 10 * 3

    def test_invalid_rounds(self):
        machine = quiet_machine()
        with pytest.raises(ValueError):
            machine.measure_latency(0, 64, rounds=0)


class TestPairMeasurement:
    def test_pairs_bit_identical_to_scalar_loop(self):
        """measure_latency_pairs must reproduce a scalar measure_latency
        loop exactly — latencies, clock charge, and stats — on an
        identically-seeded machine (it replaced such loops in the
        baselines)."""
        rng = np.random.default_rng(3)
        bases = rng.integers(0, preset("No.1").mapping.geometry.total_bytes, 64, dtype=np.uint64)
        partners = rng.integers(0, preset("No.1").mapping.geometry.total_bytes, 64, dtype=np.uint64)

        noisy = SimulatedMachine.from_preset(preset("No.1"), seed=7)
        batch = noisy.measure_latency_pairs(bases, partners, rounds=50)

        reference = SimulatedMachine.from_preset(preset("No.1"), seed=7)
        scalar = np.array(
            [
                reference.measure_latency(int(a), int(b), rounds=50)
                for a, b in zip(bases, partners)
            ]
        )
        np.testing.assert_array_equal(batch, scalar)
        assert noisy.clock.elapsed_ns == reference.clock.elapsed_ns
        assert noisy.stats.measurements == reference.stats.measurements
        assert noisy.stats.accesses_timed == reference.stats.accesses_timed

    def test_shape_mismatch_rejected(self):
        machine = quiet_machine()
        with pytest.raises(ValueError, match="matching shapes"):
            machine.measure_latency_pairs(
                np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64)
            )


class TestSweepMeasurement:
    def test_sweeps_bit_identical_to_repeated_batches(self):
        """measure_latency_sweeps must reproduce N consecutive
        measure_latency_batch calls reduced with np.minimum exactly —
        latencies, clock charge and stats — on an identically-seeded
        machine (the probe's campaign path relies on it)."""
        rng = np.random.default_rng(5)
        total = preset("No.1").mapping.geometry.total_bytes
        others = rng.integers(0, total, 300, dtype=np.uint64)

        campaign = SimulatedMachine.from_preset(preset("No.1"), seed=9)
        swept = campaign.measure_latency_sweeps(0, others, rounds=50, sweeps=3)

        reference = SimulatedMachine.from_preset(preset("No.1"), seed=9)
        stepwise = reference.measure_latency_batch(0, others, rounds=50)
        for _ in range(2):
            stepwise = np.minimum(
                stepwise, reference.measure_latency_batch(0, others, rounds=50)
            )
        np.testing.assert_array_equal(swept, stepwise)
        assert campaign.clock.elapsed_ns == reference.clock.elapsed_ns
        assert campaign.stats.measurements == reference.stats.measurements
        assert campaign.stats.accesses_timed == reference.stats.accesses_timed

    def test_single_sweep_equals_batch(self):
        others = np.array([64, 4096, 8192], dtype=np.uint64)
        campaign = SimulatedMachine.from_preset(preset("No.1"), seed=9)
        reference = SimulatedMachine.from_preset(preset("No.1"), seed=9)
        np.testing.assert_array_equal(
            campaign.measure_latency_sweeps(0, others, rounds=25, sweeps=1),
            reference.measure_latency_batch(0, others, rounds=25),
        )

    def test_non_positive_sweeps_rejected(self):
        machine = quiet_machine()
        with pytest.raises(ValueError, match="sweeps must be positive"):
            machine.measure_latency_sweeps(
                0, np.array([64], dtype=np.uint64), rounds=10, sweeps=0
            )


class TestStatsAccounting:
    """Pin the counter semantics for every measurement path (the audit of
    the suspected ``measurements`` double-increment): ``measurements``
    counts pair measurements, ``accesses_timed`` counts individual timed
    accesses (2 per round per pair) — two counters, two units, each
    incremented exactly once per charge."""

    def test_scalar_path(self):
        machine = quiet_machine()
        machine.measure_latency(0, 4096, rounds=25)
        assert machine.stats.measurements == 1
        assert machine.stats.accesses_timed == 2 * 25

    def test_batch_path(self):
        machine = quiet_machine()
        machine.measure_latency_batch(
            0, np.array([64, 128, 192], dtype=np.uint64), rounds=25
        )
        assert machine.stats.measurements == 3
        assert machine.stats.accesses_timed == 2 * 25 * 3

    def test_pairs_path(self):
        machine = quiet_machine()
        machine.measure_latency_pairs(
            np.array([0, 64], dtype=np.uint64),
            np.array([4096, 8192], dtype=np.uint64),
            rounds=25,
        )
        assert machine.stats.measurements == 2
        assert machine.stats.accesses_timed == 2 * 25 * 2

    def test_paths_compose_without_double_counting(self):
        machine = quiet_machine()
        machine.measure_latency(0, 4096, rounds=10)  # 1 pair
        machine.measure_latency_batch(0, np.array([64], dtype=np.uint64), rounds=10)
        machine.measure_latency_pairs(
            np.array([0], dtype=np.uint64), np.array([128], dtype=np.uint64), rounds=10
        )
        assert machine.stats.measurements == 3
        assert machine.stats.accesses_timed == 2 * 10 * 3

    def test_scalar_and_batch_charge_identically(self):
        scalar_machine = quiet_machine(seed=1)
        batch_machine = quiet_machine(seed=1)
        scalar_machine.measure_latency(0, 4096, rounds=40)
        batch_machine.measure_latency_batch(
            0, np.array([4096], dtype=np.uint64), rounds=40
        )
        assert scalar_machine.clock.elapsed_ns == batch_machine.clock.elapsed_ns


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        machine_a = SimulatedMachine.from_preset(preset("No.1"), seed=42)
        machine_b = SimulatedMachine.from_preset(preset("No.1"), seed=42)
        rng = np.random.default_rng(2)
        others = rng.integers(0, machine_a.total_bytes, 64, dtype=np.uint64)
        np.testing.assert_array_equal(
            machine_a.measure_latency_batch(0, others),
            machine_b.measure_latency_batch(0, others),
        )

    def test_different_seed_different_noise(self):
        machine_a = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        machine_b = SimulatedMachine.from_preset(preset("No.1"), seed=2)
        rng = np.random.default_rng(3)
        others = rng.integers(0, machine_a.total_bytes, 64, dtype=np.uint64)
        assert not np.array_equal(
            machine_a.measure_latency_batch(0, others),
            machine_b.measure_latency_batch(0, others),
        )


class TestFacade:
    def test_sysinfo_matches_geometry(self):
        machine = quiet_machine("No.6")
        info = machine.sysinfo()
        assert info.total_banks == 64
        assert info.total_bytes == machine.total_bytes

    def test_dmidecode_text_parses(self):
        from repro.machine.sysinfo import parse_dmidecode

        machine = quiet_machine("No.9")
        assert parse_dmidecode(machine.dmidecode_text()) == machine.sysinfo()

    def test_allocation_strategies(self):
        machine = quiet_machine()
        for strategy in ("contiguous", "fragmented", "sparse", "hugepages"):
            pages = machine.allocate(1 << 22, strategy)
            assert pages.byte_count >= 1 << 22
        assert machine.stats.allocations == 4

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown"):
            quiet_machine().allocate(4096, "magic")

    def test_charge_analysis(self):
        machine = quiet_machine()
        machine.charge_analysis(2e9)
        assert machine.elapsed_seconds == pytest.approx(2.0)
