"""Unit tests for the simulated dmidecode pipeline."""

import pytest

from repro.dram.presets import PRESETS
from repro.dram.spec import DdrGeneration
from repro.machine.sysinfo import SystemInfo, parse_dmidecode, render_dmidecode


class TestSystemInfo:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_from_geometry_matches_preset(self, name):
        geometry = PRESETS[name].geometry
        info = SystemInfo.from_geometry(geometry)
        assert info.total_banks == geometry.total_banks
        assert info.total_bytes == geometry.total_bytes
        assert info.generation == geometry.generation

    def test_total_banks_formula(self):
        info = SystemInfo(
            generation=DdrGeneration.DDR4,
            total_bytes=2**34,
            channels=2,
            dimms_per_channel=1,
            ranks_per_dimm=2,
            banks_per_rank=16,
        )
        assert info.total_banks == 64


class TestRenderParseRoundtrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_roundtrip(self, name):
        geometry = PRESETS[name].geometry
        text = render_dmidecode(geometry)
        info = parse_dmidecode(text)
        assert info == SystemInfo.from_geometry(geometry)

    def test_rendered_text_has_expected_fields(self):
        text = render_dmidecode(PRESETS["No.1"].geometry)
        assert "Memory Device" in text
        assert "Type: DDR3" in text
        assert "Rank: 1" in text

    def test_dimm_count_matches_channels(self):
        text = render_dmidecode(PRESETS["No.1"].geometry)  # 2 channels x 1 DIMM
        assert text.count("Memory Device") == 2


class TestParseErrors:
    def test_empty_text(self):
        with pytest.raises(ValueError, match="no populated"):
            parse_dmidecode("nothing here")

    def test_disagreeing_dimms(self):
        text = render_dmidecode(PRESETS["No.1"].geometry)
        broken = text.replace("Rank: 1", "Rank: 2", 1)
        with pytest.raises(ValueError, match="disagree"):
            parse_dmidecode(broken)

    def test_unpopulated_slots_skipped(self):
        text = render_dmidecode(PRESETS["No.1"].geometry)
        text += (
            "\nHandle 0x0040, DMI type 17, 40 bytes\n"
            "Memory Device\n\tSize: No Module Installed\n"
        )
        info = parse_dmidecode(text)
        assert info == SystemInfo.from_geometry(PRESETS["No.1"].geometry)


class TestDecodeDimms:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_render_parse_roundtrip(self, name):
        from repro.machine.sysinfo import parse_decode_dimms, render_decode_dimms

        geometry = PRESETS[name].geometry
        spd = parse_decode_dimms(render_decode_dimms(geometry))
        assert spd["generation"] == geometry.generation
        assert spd["banks_per_rank"] == geometry.banks_per_rank
        assert spd["ranks_per_dimm"] == geometry.ranks_per_dimm
        assert (
            spd["dimm_bytes"] * spd["dimm_count"] == geometry.total_bytes
        )

    def test_empty_rejected(self):
        from repro.machine.sysinfo import parse_decode_dimms

        with pytest.raises(ValueError, match="no SPD"):
            parse_decode_dimms("garbage")


class TestGatherSystemInfo:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_cross_validation_passes(self, name):
        from repro.machine.sysinfo import (
            gather_system_info,
            render_decode_dimms,
            render_dmidecode,
        )

        geometry = PRESETS[name].geometry
        info = gather_system_info(
            render_dmidecode(geometry), render_decode_dimms(geometry)
        )
        assert info == SystemInfo.from_geometry(geometry)

    def test_mismatch_detected(self):
        from repro.machine.sysinfo import (
            gather_system_info,
            render_decode_dimms,
            render_dmidecode,
        )

        no1 = PRESETS["No.1"].geometry
        no6 = PRESETS["No.6"].geometry
        with pytest.raises(ValueError, match="disagree on"):
            gather_system_info(render_dmidecode(no1), render_decode_dimms(no6))
