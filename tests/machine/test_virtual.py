"""Tests for the virtual-memory layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.errors import AllocationError
from repro.machine.allocator import PAGE_SIZE, PhysPages
from repro.machine.machine import SimulatedMachine
from repro.machine.virtual import PAGEMAP_ENTRY_NS, VirtualBuffer
from repro.dram.presets import preset

GIB = 2**30


@pytest.fixture
def buffer_and_pages():
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=0)
    pages = machine.allocate(1 << 24, "fragmented")
    buffer = VirtualBuffer.from_phys_pages(pages, np.random.default_rng(0))
    return machine, pages, buffer


class TestConstruction:
    def test_from_phys_pages_covers_all(self, buffer_and_pages):
        _, pages, buffer = buffer_and_pages
        assert buffer.size_bytes == pages.byte_count
        assert set(int(f) for f in buffer.frames) == set(
            int(f) for f in pages.page_numbers
        )

    def test_shuffled_relative_to_physical(self, buffer_and_pages):
        _, pages, buffer = buffer_and_pages
        assert not np.array_equal(buffer.frames, pages.page_numbers)

    def test_unaligned_base_rejected(self):
        with pytest.raises(AllocationError):
            VirtualBuffer(va_base=100, frames=np.array([1], dtype=np.uint64),
                          total_bytes=GIB)

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            VirtualBuffer(va_base=0, frames=np.array([], dtype=np.uint64),
                          total_bytes=GIB)


class TestTranslation:
    def test_offset_preserved(self, buffer_and_pages):
        _, _, buffer = buffer_and_pages
        virtual = buffer.va_base + 5 * PAGE_SIZE + 123
        physical = buffer.translate(virtual)
        assert physical & (PAGE_SIZE - 1) == 123
        assert physical >> 12 == int(buffer.frames[5])

    def test_out_of_range(self, buffer_and_pages):
        _, _, buffer = buffer_and_pages
        with pytest.raises(AllocationError):
            buffer.translate(buffer.va_end)
        with pytest.raises(AllocationError):
            buffer.translate(buffer.va_base - 1)

    def test_batch_matches_scalar(self, buffer_and_pages):
        _, _, buffer = buffer_and_pages
        rng = np.random.default_rng(1)
        virtuals = buffer.va_base + rng.integers(0, buffer.size_bytes, 200)
        batch = buffer.translate_batch(virtuals.astype(np.uint64))
        for i in (0, 57, 199):
            assert int(batch[i]) == buffer.translate(int(virtuals[i]))

    def test_reverse_translate_roundtrip(self, buffer_and_pages):
        _, _, buffer = buffer_and_pages
        virtual = buffer.va_base + 7 * PAGE_SIZE + 42
        physical = buffer.translate(virtual)
        assert buffer.reverse_translate(physical) == virtual

    def test_reverse_translate_unmapped(self, buffer_and_pages):
        _, pages, buffer = buffer_and_pages
        unmapped_frame = int(pages.page_numbers[-1]) + 10_000
        assert buffer.reverse_translate(unmapped_frame << 12) is None

    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=30, deadline=None)
    def test_translate_is_injective(self, offset):
        frames = np.arange(100, 356, dtype=np.uint64)
        buffer = VirtualBuffer(va_base=0x10000000, frames=frames, total_bytes=GIB)
        offset %= buffer.size_bytes
        physical = buffer.translate(buffer.va_base + offset)
        assert buffer.reverse_translate(physical) == buffer.va_base + offset


class TestPagemap:
    def test_scan_charges_clock(self, buffer_and_pages):
        machine, _, buffer = buffer_and_pages
        before = machine.clock.elapsed_ns
        frames = buffer.read_pagemap(machine)
        assert frames.size == buffer.frames.size
        assert machine.clock.elapsed_ns - before == pytest.approx(
            buffer.frames.size * PAGEMAP_ENTRY_NS
        )

    def test_phys_pages_view_usable_by_pipeline(self, buffer_and_pages):
        _, pages, buffer = buffer_and_pages
        view = buffer.phys_pages()
        assert isinstance(view, PhysPages)
        np.testing.assert_array_equal(view.page_numbers, pages.page_numbers)
