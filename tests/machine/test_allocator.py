"""Unit and property tests for the simulated page allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.errors import AllocationError
from repro.machine.allocator import PAGE_SIZE, PageAllocator, PhysPages

MIB = 2**20
GIB = 2**30


@pytest.fixture
def allocator():
    return PageAllocator(total_bytes=1 * GIB)


class TestPhysPages:
    def test_dedup_and_sort(self):
        pages = PhysPages(page_numbers=np.array([5, 3, 5], dtype=np.uint64), total_bytes=GIB)
        np.testing.assert_array_equal(pages.page_numbers, [3, 5])
        assert len(pages) == 2
        assert pages.byte_count == 2 * PAGE_SIZE

    def test_has_page(self):
        pages = PhysPages(page_numbers=np.array([3], dtype=np.uint64), total_bytes=GIB)
        assert pages.has_page(3 * PAGE_SIZE)
        assert pages.has_page(3 * PAGE_SIZE + 100)
        assert not pages.has_page(4 * PAGE_SIZE)

    def test_has_pages_vectorized(self):
        pages = PhysPages(page_numbers=np.array([3, 7], dtype=np.uint64), total_bytes=GIB)
        addrs = np.array([3 * PAGE_SIZE, 5 * PAGE_SIZE, 7 * PAGE_SIZE + 64], dtype=np.uint64)
        np.testing.assert_array_equal(pages.has_pages(addrs), [True, False, True])

    def test_has_range_contiguous(self):
        pages = PhysPages(
            page_numbers=np.arange(10, 20, dtype=np.uint64), total_bytes=GIB
        )
        assert pages.has_range(10 * PAGE_SIZE, 20 * PAGE_SIZE)
        assert pages.has_range(12 * PAGE_SIZE, 13 * PAGE_SIZE)
        assert not pages.has_range(9 * PAGE_SIZE, 11 * PAGE_SIZE)
        assert not pages.has_range(19 * PAGE_SIZE, 21 * PAGE_SIZE)

    def test_has_range_with_hole(self):
        frames = np.array([10, 11, 13, 14], dtype=np.uint64)  # 12 missing
        pages = PhysPages(page_numbers=frames, total_bytes=GIB)
        assert not pages.has_range(10 * PAGE_SIZE, 15 * PAGE_SIZE)
        assert pages.has_range(13 * PAGE_SIZE, 15 * PAGE_SIZE)

    def test_sample_addresses_inside_pages(self):
        pages = PhysPages(
            page_numbers=np.arange(100, 164, dtype=np.uint64), total_bytes=GIB
        )
        rng = np.random.default_rng(0)
        addrs = pages.sample_addresses(500, rng)
        assert pages.has_pages(addrs).all()
        assert (addrs % 64 == 0).all(), "samples must be cache-line aligned"

    def test_sample_count_validation(self):
        pages = PhysPages(page_numbers=np.array([1], dtype=np.uint64), total_bytes=GIB)
        with pytest.raises(AllocationError):
            pages.sample_addresses(0, np.random.default_rng(0))


class TestContiguous:
    def test_exact_frames(self, allocator):
        pages = allocator.allocate_contiguous(16 * MIB, np.random.default_rng(1))
        assert len(pages) == 16 * MIB // PAGE_SIZE
        frames = pages.page_numbers
        assert (np.diff(frames) == 1).all()

    def test_range_is_fully_allocated(self, allocator):
        pages = allocator.allocate_contiguous(MIB, np.random.default_rng(2))
        start = int(pages.page_numbers[0]) * PAGE_SIZE
        assert pages.has_range(start, start + MIB)

    def test_avoids_reserved_low_memory(self, allocator):
        for seed in range(5):
            pages = allocator.allocate_contiguous(MIB, np.random.default_rng(seed))
            assert int(pages.page_numbers[0]) * PAGE_SIZE >= allocator.reserved_low_bytes

    def test_rejects_oversized(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate_contiguous(2 * GIB, np.random.default_rng(0))

    def test_rejects_zero(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate_contiguous(0, np.random.default_rng(0))


class TestFragmented:
    def test_requested_amount_collected(self, allocator):
        request = 32 * MIB
        pages = allocator.allocate_fragmented(request, np.random.default_rng(3))
        assert pages.byte_count >= request

    def test_has_holes(self, allocator):
        pages = allocator.allocate_fragmented(
            64 * MIB, np.random.default_rng(4), hole_fraction=0.05
        )
        frames = pages.page_numbers
        assert (np.diff(frames) > 1).any(), "fragmented allocation should have gaps"

    def test_zero_hole_fraction_gives_whole_blocks(self, allocator):
        pages = allocator.allocate_fragmented(
            8 * MIB, np.random.default_rng(5), hole_fraction=0.0
        )
        assert pages.byte_count >= 8 * MIB


class TestSparse:
    def test_scattered(self, allocator):
        pages = allocator.allocate_sparse(4 * MIB, np.random.default_rng(6))
        frames = pages.page_numbers
        assert (np.diff(frames) > 1).mean() > 0.9

    def test_unique(self, allocator):
        pages = allocator.allocate_sparse(4 * MIB, np.random.default_rng(7))
        assert len(np.unique(pages.page_numbers)) == len(pages)


class TestHugepages:
    def test_aligned_blocks(self, allocator):
        huge_frames = (2 * MIB) // PAGE_SIZE
        pages = allocator.allocate_hugepages(8 * MIB, np.random.default_rng(8))
        starts = pages.page_numbers[:: huge_frames]
        assert (starts % huge_frames == 0).all()

    def test_each_block_contiguous(self, allocator):
        pages = allocator.allocate_hugepages(4 * MIB, np.random.default_rng(9))
        frames = pages.page_numbers
        huge_frames = (2 * MIB) // PAGE_SIZE
        for i in range(0, len(frames), huge_frames):
            block = frames[i : i + huge_frames]
            assert (np.diff(block) == 1).all()


class TestValidation:
    def test_bad_total(self):
        with pytest.raises(AllocationError):
            PageAllocator(total_bytes=1000)

    def test_bad_reserved(self):
        with pytest.raises(AllocationError):
            PageAllocator(total_bytes=GIB, reserved_low_bytes=2 * GIB)


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=20, deadline=None)
def test_contiguous_property(mib, seed):
    allocator = PageAllocator(total_bytes=GIB)
    pages = allocator.allocate_contiguous(mib * MIB, np.random.default_rng(seed))
    frames = pages.page_numbers
    assert len(frames) == mib * MIB // PAGE_SIZE
    assert (np.diff(frames) == 1).all()
    assert int(frames[-1]) < GIB // PAGE_SIZE
