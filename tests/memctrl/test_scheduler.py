"""Tests for the command-level scheduler, including the cross-validation
against the closed-form latency classes."""

import pytest

from repro.dram.presets import preset
from repro.memctrl.scheduler import (
    TFAW_ACTIVATIONS,
    TFAW_NS,
    CommandScheduler,
    DramCommand,
)
from repro.memctrl.timing import AccessClass, LatencyModel
from repro.memctrl.timing import NoiseParams


MAPPING = preset("No.1").mapping


def conflict_pair():
    base = 1 << 25
    other = MAPPING.encode(
        MAPPING.dram_address(base)._replace(row=MAPPING.row_of(base) + 1)
    )
    return base, other


def hit_pair():
    base = 1 << 25
    return base, base + 128


class TestCommandSequences:
    def test_cold_access_issues_act_then_rd(self):
        scheduler = CommandScheduler(MAPPING)
        scheduler.access(1 << 25)
        commands = [event.command for event in scheduler.events]
        assert commands == [DramCommand.ACT, DramCommand.RD]

    def test_row_hit_issues_rd_only(self):
        scheduler = CommandScheduler(MAPPING)
        base, same_row = hit_pair()
        scheduler.access(base)
        before = len(scheduler.events)
        scheduler.access(same_row)
        new_commands = [event.command for event in scheduler.events[before:]]
        assert new_commands == [DramCommand.RD]

    def test_conflict_issues_pre_act_rd(self):
        scheduler = CommandScheduler(MAPPING)
        base, other = conflict_pair()
        scheduler.access(base)
        before = len(scheduler.events)
        scheduler.access(other)
        new_commands = [event.command for event in scheduler.events[before:]]
        assert new_commands == [DramCommand.PRE, DramCommand.ACT, DramCommand.RD]

    def test_timing_constraints_hold(self):
        """Every same-bank ACT->ACT gap respects tRC; every PRE->ACT gap
        respects tRP; every ACT->RD gap respects tRCD."""
        scheduler = CommandScheduler(MAPPING)
        base, other = conflict_pair()
        for _ in range(20):
            scheduler.access(base)
            scheduler.access(other)
        timings = scheduler.timings
        per_bank: dict[int, list] = {}
        for event in scheduler.events:
            per_bank.setdefault(event.bank, []).append(event)
        for events in per_bank.values():
            last_act = last_pre = None
            for event in events:
                if event.command is DramCommand.ACT:
                    if last_act is not None:
                        assert event.time_ns - last_act >= timings.tras + timings.trp - 1e-9
                    if last_pre is not None:
                        assert event.time_ns - last_pre >= timings.trp - 1e-9
                    last_act = event.time_ns
                elif event.command is DramCommand.PRE:
                    assert event.time_ns - last_act >= timings.tras - 1e-9
                    last_pre = event.time_ns
                elif event.command is DramCommand.RD:
                    assert event.time_ns - last_act >= timings.trcd - 1e-9


class TestCrossValidation:
    def test_conflict_latency_matches_closed_form(self):
        """Steady-state alternating conflict pair: the command-level
        per-access cost equals the closed-form ROW_CONFLICT DRAM latency
        to within the tRAS stall the closed form folds away."""
        scheduler = CommandScheduler(MAPPING)
        base, other = conflict_pair()
        results = []
        for _ in range(30):
            results.append(scheduler.access(base))
            results.append(scheduler.access(other))
        steady = results[10:]
        gaps = [
            later.data_ns - earlier.data_ns
            for earlier, later in zip(steady, steady[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        model = LatencyModel.for_generation(
            MAPPING.geometry.generation, NoiseParams.noiseless()
        )
        closed_form = model.ideal_ns(AccessClass.ROW_CONFLICT) - model.base_overhead_ns
        # The command-level pipeline adds the tRAS residency the closed
        # form approximates away; they agree within that term.
        assert closed_form - 1.0 <= mean_gap <= closed_form + scheduler.timings.tras

    def test_hit_stream_runs_at_bus_rate(self):
        scheduler = CommandScheduler(MAPPING)
        base, same_row = hit_pair()
        scheduler.access(base)
        results = [scheduler.access(same_row + 64 * i) for i in range(20)]
        steady = results[2:]  # skip the ACT-pipeline warm-up
        gaps = [
            later.data_ns - earlier.data_ns
            for earlier, later in zip(steady, steady[1:])
        ]
        assert max(gaps) <= 5.0 + 1e-9  # tCCD-bound


class TestActivationRate:
    def test_tfaw_limits_activation_bursts(self):
        """Spraying ACTs across many banks is capped by the four-activation
        window."""
        scheduler = CommandScheduler(MAPPING)
        addresses = [
            MAPPING.encode(MAPPING.dram_address(0)._replace(bank=bank, row=7))
            for bank in range(16)
        ]
        for address in addresses:
            scheduler.access(address)
        acts = [e.time_ns for e in scheduler.events if e.command is DramCommand.ACT]
        for index in range(TFAW_ACTIVATIONS, len(acts)):
            assert acts[index] - acts[index - TFAW_ACTIVATIONS] >= TFAW_NS - 1e-9

    def test_hammer_rate_bound(self):
        """The analytic activation cap: an alternating pair is tRC-bound,
        which is what makes a rowhammer threshold reachable within one
        refresh window."""
        scheduler = CommandScheduler(MAPPING)
        rate = scheduler.max_activation_rate_per_pair()
        window_activations = rate * 0.064  # per aggressor in 64 ms
        assert 500_000 < window_activations < 3_000_000


class TestQueueing:
    def test_arrival_time_respected(self):
        scheduler = CommandScheduler(MAPPING)
        result = scheduler.schedule([(1 << 25, 1000.0)])[0]
        assert result.arrival_ns == 1000.0
        assert result.data_ns > 1000.0

    def test_latency_positive(self):
        scheduler = CommandScheduler(MAPPING)
        results = scheduler.schedule([(1 << 25, 0.0), ((1 << 25) + 64, 0.0)])
        assert all(result.latency_ns > 0 for result in results)


class TestPropertyConstraints:
    """Hypothesis: no request sequence can violate JEDEC timing."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**33 - 1), min_size=2, max_size=40
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_sequences_respect_timing(self, addresses):
        scheduler = CommandScheduler(MAPPING)
        for address in addresses:
            scheduler.access(address)
        timings = scheduler.timings
        per_bank: dict[int, list] = {}
        rd_times = []
        for event in scheduler.events:
            per_bank.setdefault(event.bank, []).append(event)
            if event.command is DramCommand.RD:
                rd_times.append(event.time_ns)
        # Per-bank: tRC, tRP, tRCD, tRAS.
        for events in per_bank.values():
            last_act = last_pre = None
            for event in events:
                if event.command is DramCommand.ACT:
                    if last_act is not None:
                        assert event.time_ns - last_act >= (
                            timings.tras + timings.trp - 1e-9
                        )
                    if last_pre is not None:
                        assert event.time_ns - last_pre >= timings.trp - 1e-9
                    last_act = event.time_ns
                elif event.command is DramCommand.PRE:
                    assert event.time_ns - last_act >= timings.tras - 1e-9
                    last_pre = event.time_ns
                else:
                    assert event.time_ns - last_act >= timings.trcd - 1e-9
        # Global: data bus tCCD between column commands.
        for earlier, later in zip(rd_times, rd_times[1:]):
            assert later - earlier >= 5.0 - 1e-9

    @given(st.integers(min_value=0, max_value=2**33 - 65))
    @settings(max_examples=30, deadline=None)
    def test_latency_never_negative(self, address):
        scheduler = CommandScheduler(MAPPING)
        result = scheduler.access(address)
        assert result.latency_ns > 0
